//! Serving-layer benchmark — mixed-tenant query traffic + fan-out soak.
//!
//! Drives the full HTTP serving stack ([`oda_serve::server::Server`] over a
//! [`SimNet`]) with the three canonical traffic classes from the paper's
//! visualization/exploration pillar:
//!
//! * **dashboard** — a small pool of identical aggregate queries repeated
//!   forever (cache-friendly; generous quota),
//! * **alerts** — a pool of tail-quantile queries (cache-friendly),
//! * **adhoc** — a unique time-range per request (cache-hostile) under a
//!   deliberately tight quota, so admission control sheds a measurable
//!   fraction with `429`s.
//!
//! Periodic telemetry writes interleave with the queries, so the result
//! cache is exercised through invalidation, not just repetition. Every
//! sampled cache *hit* is immediately re-executed uncached through the
//! query engine and compared **byte for byte** (and digest for digest) —
//! `cache_equal` in the report is the conjunction, and the binary exits
//! non-zero if it ever fails.
//!
//! A second phase attaches a large subscriber fleet to `/api/v1/subscribe`
//! and publishes bursts wider than the per-client buffer, proving the
//! fan-out hub sheds oldest-first per client without stalling the bus.
//!
//! Counts (hits, sheds, frames) are deterministic; only wall-clock figures
//! (throughput, latency percentiles) vary run to run. CI pins the binary's
//! JSON as `BENCH_serving.json` and gates it with `ci/check_bench.py`.

use oda_serve::config::{ServingConfig, TenantQuota};
use oda_serve::net::SimNet;
use oda_serve::server::Server;
use oda_telemetry::bus::TelemetryBus;
use oda_telemetry::metrics::MetricsRegistry;
use oda_telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};
use oda_telemetry::reading::{Reading, ReadingBatch, Timestamp};
use oda_telemetry::sensor::{SensorId, SensorKind, SensorRegistry, Unit};
use oda_telemetry::store::TimeSeriesStore;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Serving benchmark parameters.
#[derive(Debug, Clone)]
pub struct ServingBenchConfig {
    /// Synthetic sensors (spread over `racks` rack domains).
    pub sensors: usize,
    /// Rack domains the sensor names are spread over.
    pub racks: usize,
    /// Readings pre-filled per sensor before the query phase.
    pub prefill: usize,
    /// Query requests in the mixed-traffic phase.
    pub requests: usize,
    /// Logical nanoseconds the clock advances between requests.
    pub request_gap_ns: u64,
    /// A fresh batch is published every this many requests (invalidation).
    pub publish_every: usize,
    /// Streaming subscribers attached in the fan-out phase.
    pub subscribers: usize,
    /// Publish bursts in the fan-out phase.
    pub fanout_rounds: usize,
    /// Batches per burst (wider than the per-client buffer → shedding).
    pub fanout_burst: usize,
    /// Per-subscriber buffer, frames.
    pub sub_buffer_frames: usize,
    /// Cache hits re-executed uncached and compared bit-for-bit.
    pub verify_samples: usize,
}

impl Default for ServingBenchConfig {
    fn default() -> Self {
        ServingBenchConfig {
            sensors: 64,
            racks: 8,
            prefill: 256,
            requests: 1500,
            request_gap_ns: 2_000_000, // 2 ms → ~167 offered rps per tenant trio
            publish_every: 200,
            subscribers: 2000,
            fanout_rounds: 24,
            fanout_burst: 12,
            sub_buffer_frames: 8,
            verify_samples: 64,
        }
    }
}

impl ServingBenchConfig {
    /// A smaller workload for unit tests.
    pub fn smoke() -> Self {
        ServingBenchConfig {
            sensors: 8,
            racks: 2,
            prefill: 32,
            requests: 120,
            request_gap_ns: 2_000_000,
            publish_every: 40,
            subscribers: 32,
            fanout_rounds: 6,
            fanout_burst: 6,
            sub_buffer_frames: 4,
            verify_samples: 16,
        }
    }
}

/// Measurements of one serving-bench run.
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    /// Query requests issued (all tenants).
    pub requests_total: u64,
    /// Requests answered `200`.
    pub responses_200: u64,
    /// Requests shed with `429` (rate) or `503` (saturation).
    pub responses_shed: u64,
    /// Sustained request throughput, requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median request round-trip latency, nanoseconds (wall clock).
    pub query_p50_ns: u64,
    /// 99th-percentile request round-trip latency, nanoseconds.
    pub query_p99_ns: u64,
    /// Result-cache hit rate over the query phase.
    pub cache_hit_rate: f64,
    /// Cache entries invalidated by interleaved writes.
    pub cache_invalidated: u64,
    /// Fraction of offered queries shed by admission control.
    pub shed_rate: f64,
    /// `offered == admitted + shed` held for every tenant ledger.
    pub sheds_reconcile: bool,
    /// Every sampled cache hit was byte- and digest-identical to an
    /// uncached re-execution.
    pub cache_equal: bool,
    /// Cache hits that were re-executed and compared.
    pub verified_hits: u64,
    /// Streaming subscribers attached in the fan-out phase.
    pub subscribers: u64,
    /// Frames delivered to subscriber connections.
    pub frames_delivered: u64,
    /// Frames shed from slow subscriber buffers (oldest-first).
    pub frames_shed: u64,
    /// Wall time of the fan-out phase, nanoseconds.
    pub fanout_wall_ns: u64,
}

/// Exact percentile over an already-sorted latency list.
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

/// A complete HTTP/1.1 response, split for assertions.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Polls the server until `raw` has a complete framed response, then
/// returns it parsed. Opens and closes a fresh connection per call.
fn round_trip(net: &Arc<SimNet>, server: &mut Server<SimNet>, raw: &[u8]) -> Response {
    let conn = net.connect();
    net.client_send(conn, raw);
    let mut got = Vec::new();
    for _ in 0..4096 {
        server.poll();
        got.extend(net.client_recv(conn));
        if let Some(r) = try_parse(&got) {
            net.client_close(conn);
            server.poll();
            return r;
        }
    }
    panic!(
        "no complete response after 4096 polls ({} bytes buffered)",
        got.len()
    );
}

/// Parses a framed response if `raw` holds head + full Content-Length body.
fn try_parse(raw: &[u8]) -> Option<Response> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = String::from_utf8_lossy(&raw[..head_end - 4]).into_owned();
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")?
        .1
        .parse()
        .ok()?;
    if raw.len() < head_end + len {
        return None;
    }
    Some(Response {
        status,
        headers,
        body: raw[head_end..head_end + len].to_vec(),
    })
}

fn post_query(tenant: &str, wire: &str) -> Vec<u8> {
    format!(
        "POST /api/v1/query HTTP/1.1\r\nx-tenant: {tenant}\r\ncontent-length: {}\r\n\r\n{wire}",
        wire.len()
    )
    .into_bytes()
}

/// Runs the serving benchmark.
pub fn run_serving(cfg: &ServingBenchConfig) -> ServingReport {
    // ----- world ----------------------------------------------------------
    let registry = SensorRegistry::new();
    let sensors: Vec<SensorId> = (0..cfg.sensors)
        .map(|i| {
            registry.register(
                &format!("/bench/rack{}/node{}/power", i % cfg.racks, i),
                SensorKind::Power,
                Unit::Watts,
            )
        })
        .collect();
    let store = Arc::new(TimeSeriesStore::with_capacity(cfg.prefill + cfg.requests));
    let bus = Arc::new(TelemetryBus::with_store(
        registry.clone(),
        Arc::clone(&store),
    ));
    for round in 0..cfg.prefill {
        for (i, &s) in sensors.iter().enumerate() {
            bus.publish(ReadingBatch::single(
                s,
                Reading::new(
                    Timestamp::from_millis(round as u64 * 100),
                    (round * 7 + i * 13) as f64 * 0.25,
                ),
            ));
        }
    }

    let serving = ServingConfig {
        default_quota: TenantQuota {
            rate_per_sec: 25.0,
            burst: 10.0,
            max_concurrent: 8,
            max_subscriptions: 4,
        },
        sub_buffer_frames: cfg.sub_buffer_frames,
        max_connections: cfg.subscribers + 64,
        ..ServingConfig::default()
    }
    .with_tenant("dashboard", TenantQuota::unlimited())
    .with_tenant("alerts", TenantQuota::unlimited())
    .with_tenant(
        "subscribers",
        TenantQuota {
            max_subscriptions: u32::MAX,
            ..TenantQuota::unlimited()
        },
    );
    let net = Arc::new(SimNet::new());
    let mut server = Server::new(
        Arc::clone(&net),
        serving,
        registry.clone(),
        Arc::clone(&store),
    )
    .with_bus(Arc::clone(&bus))
    .with_metrics(MetricsRegistry::new());

    // ----- query pools ----------------------------------------------------
    // Dashboards: per-rack mean power. Alerts: per-rack p99. Both repeat
    // verbatim, so they populate and then hit the cache. Adhoc: a unique
    // range per request, so it can never hit.
    let dashboard: Vec<String> = (0..cfg.racks)
        .map(|r| {
            Query::sensors(format!("/bench/rack{r}/**").as_str())
                .aggregate(Aggregation::Mean)
                .to_json()
        })
        .collect();
    let alerts: Vec<String> = (0..cfg.racks)
        .map(|r| {
            Query::sensors(format!("/bench/rack{r}/**").as_str())
                .aggregate(Aggregation::Quantile(0.99))
                .to_json()
        })
        .collect();
    let adhoc = |i: usize| {
        Query::sensors(sensors[i % sensors.len()])
            .range(TimeRange::new(
                Timestamp::from_millis(i as u64),
                Timestamp::from_millis(i as u64 + 60_000),
            ))
            .aggregate(Aggregation::Max)
            .to_json()
    };

    // ----- phase 1: mixed query traffic -----------------------------------
    let mut latencies = Vec::with_capacity(cfg.requests);
    let mut responses_200 = 0u64;
    let mut responses_shed = 0u64;
    let mut cache_equal = true;
    let mut verified_hits = 0u64;
    let engine = QueryEngine::new(&store).with_registry(registry.clone());
    let started = Instant::now();
    for i in 0..cfg.requests {
        if i % cfg.publish_every == cfg.publish_every - 1 {
            // An interleaved write: bumps one sensor's version, so every
            // cached query involving it must re-miss.
            bus.publish(ReadingBatch::single(
                sensors[i % sensors.len()],
                Reading::new(
                    Timestamp::from_millis((cfg.prefill * 100 + i) as u64),
                    i as f64,
                ),
            ));
        }
        let (tenant, wire) = match i % 3 {
            0 => ("dashboard", dashboard[i / 3 % dashboard.len()].clone()),
            1 => ("alerts", alerts[i / 3 % alerts.len()].clone()),
            _ => ("adhoc", adhoc(i)),
        };
        let t0 = Instant::now();
        let resp = round_trip(&net, &mut server, &post_query(tenant, &wire));
        latencies.push(t0.elapsed().as_nanos() as u64);
        match resp.status {
            200 => responses_200 += 1,
            429 | 503 => responses_shed += 1,
            other => panic!("unexpected status {other} for {q}", q = wire.as_str()),
        }
        // Sampled bit-equality gate: a hit must equal re-execution.
        if resp.status == 200
            && resp.header("x-cache") == Some("hit")
            && verified_hits < cfg.verify_samples as u64
        {
            verified_hits += 1;
            let fresh = Query::from_json(&wire)
                .expect("bench query re-parses")
                .run(&engine);
            let fresh_digest = format!("{:016x}", fresh.digest());
            if fresh.to_json().into_bytes() != resp.body
                || resp.header("x-result-digest") != Some(fresh_digest.as_str())
            {
                cache_equal = false;
            }
        }
        net.advance(cfg.request_gap_ns);
    }
    let query_wall = started.elapsed();

    // ----- phase 2: subscription fan-out ----------------------------------
    let fanout_started = Instant::now();
    let subs: Vec<_> = (0..cfg.subscribers)
        .map(|_| {
            let conn = net.connect();
            net.client_send(
                conn,
                b"GET /api/v1/subscribe?pattern=%2Fbench%2F%2A%2A HTTP/1.1\r\n\
                  x-tenant: subscribers\r\n\r\n",
            );
            conn
        })
        .collect();
    for _ in 0..4 {
        server.poll();
    }
    for round in 0..cfg.fanout_rounds {
        // A burst wider than the per-client buffer: every client keeps the
        // newest `sub_buffer_frames` frames and sheds the rest.
        for b in 0..cfg.fanout_burst {
            bus.publish(ReadingBatch::single(
                sensors[(round * cfg.fanout_burst + b) % sensors.len()],
                Reading::new(
                    Timestamp::from_millis((round * 1000 + b) as u64),
                    round as f64 + b as f64 * 0.5,
                ),
            ));
        }
        server.poll();
    }
    // Drain what the clients buffered, then hang up.
    for &conn in &subs {
        let _ = net.client_recv(conn);
        net.client_close(conn);
    }
    for _ in 0..4 {
        server.poll();
    }
    let fanout_wall = fanout_started.elapsed();

    // ----- report ---------------------------------------------------------
    latencies.sort_unstable();
    let totals = server.admission().totals();
    let cache = server.cache_stats();
    let fanout = server.fanout_stats();
    let sheds_reconcile = totals.reconciles()
        && server
            .admission()
            .all_counters()
            .iter()
            .all(|(_, c)| c.reconciles())
        && totals.shed_rate_limited + totals.shed_saturated == responses_shed;
    ServingReport {
        requests_total: cfg.requests as u64,
        responses_200,
        responses_shed,
        throughput_rps: cfg.requests as f64 / query_wall.as_secs_f64().max(1e-9),
        query_p50_ns: percentile(&latencies, 0.50),
        query_p99_ns: percentile(&latencies, 0.99),
        cache_hit_rate: cache.hit_rate(),
        cache_invalidated: cache.invalidated,
        shed_rate: responses_shed as f64 / (cfg.requests as f64).max(1.0),
        sheds_reconcile,
        cache_equal,
        verified_hits,
        subscribers: cfg.subscribers as u64,
        frames_delivered: fanout.frames_dequeued,
        frames_shed: fanout.frames_shed,
        fanout_wall_ns: fanout_wall.as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_meets_structural_gates() {
        let r = run_serving(&ServingBenchConfig::smoke());
        assert_eq!(r.requests_total, 120);
        assert_eq!(r.responses_200 + r.responses_shed, r.requests_total);
        assert!(r.cache_equal, "cached results must be bit-identical");
        assert!(r.sheds_reconcile, "admission ledger must balance");
        assert!(r.verified_hits > 0, "the bit-equality gate must have run");
        assert!(r.cache_hit_rate > 0.2, "hit rate {}", r.cache_hit_rate);
        assert!(r.responses_shed > 0, "tight adhoc quota must shed");
        assert!(r.shed_rate < 0.5, "shed rate {}", r.shed_rate);
        assert!(r.frames_delivered > 0);
        assert!(
            r.frames_shed > 0,
            "bursts wider than the buffer must shed oldest frames"
        );
    }

    #[test]
    fn counts_are_deterministic_across_runs() {
        let a = run_serving(&ServingBenchConfig::smoke());
        let b = run_serving(&ServingBenchConfig::smoke());
        assert_eq!(a.responses_200, b.responses_200);
        assert_eq!(a.responses_shed, b.responses_shed);
        assert_eq!(a.cache_invalidated, b.cache_invalidated);
        assert_eq!(a.frames_delivered, b.frames_delivered);
        assert_eq!(a.frames_shed, b.frames_shed);
    }
}
