//! E9 — ablation: correlation-wise-smoothing descriptors vs raw sensor
//! vectors for node-state classification (the design choice behind the
//! CS paper the survey cites, Netti et al. IPDPS'21).
//!
//! Setup: node states are high-dimensional sensor snapshots. A classifier
//! must label them (healthy / fan-failure / memory-leak) from few labelled
//! examples — the regime HPC sites live in, where labelled anomalies are
//! scarce. CS compresses the snapshot into a short multi-resolution
//! descriptor over correlation-ordered sensors; the ablation measures
//! held-out accuracy and descriptor size for CS vs the raw vector, using
//! the same nearest-centroid classifier.
//!
//! The synthetic node model: 64 sensors — three correlated informative
//! families (power-like, thermal-like, memory-like) and 40 independent
//! high-variance noise channels, the composition of real node telemetry.
//! Faults shift one family.
//!
//! **Finding** (asserted by the tests, reported in EXPERIMENTS.md): with
//! very few labelled examples per class, the 15-value CS descriptor
//! matches the 64-value raw vector's accuracy — a >4× compression at
//! parity, which is the CS paper's lightweight-extraction pitch. With
//! ample labels the raw vector pulls ahead (compression discards some
//! class information), so CS is the right choice exactly where HPC sites
//! sit: scarce labels, high sensor counts, tight compute budgets.

use oda_analytics::diagnostic::smoothing::CorrelationSmoothing;

/// Node-state classes in the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Nominal operation.
    Healthy,
    /// Thermal family elevated (fan failure signature).
    FanFailure,
    /// Memory family elevated (leak signature).
    MemoryLeak,
}

/// Result of one ablation arm.
#[derive(Debug, Clone, Copy)]
pub struct ArmResult {
    /// Held-out classification accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Feature-vector length the classifier consumed.
    pub feature_len: usize,
}

/// Deterministic pseudo-noise in `[-1, 1)`.
fn noise(seed: u64, i: u64) -> f64 {
    let mut s = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(i.wrapping_mul(1442695040888963407) | 1);
    s ^= s >> 33;
    s = s.wrapping_mul(0xff51afd7ed558ccd);
    s ^= s >> 33;
    (s >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

const SENSORS: usize = 64;

/// Generates a snapshot of the synthetic node.
fn snapshot(state: NodeState, seed: u64, t: u64) -> Vec<f64> {
    // Shared family drivers with per-sensor gains.
    let power_driver = 0.6 + 0.4 * ((t as f64) * 0.37).sin();
    let thermal_driver = 50.0 + 8.0 * ((t as f64) * 0.11).cos();
    let memory_driver = 60.0 + 20.0 * ((t as f64) * 0.23).sin();
    let (thermal_shift, memory_shift) = match state {
        NodeState::Healthy => (0.0, 0.0),
        NodeState::FanFailure => (14.0, 0.0),
        NodeState::MemoryLeak => (0.0, 55.0),
    };
    (0..SENSORS)
        .map(|i| {
            let jitter = noise(seed, (t * SENSORS as u64 + i as u64) | 1);
            match i {
                // 10 power sensors.
                0..=9 => 100.0 + 200.0 * power_driver * (1.0 + 0.05 * i as f64) + 4.0 * jitter,
                // 8 thermal sensors — carry the fan-failure signature.
                10..=17 => {
                    (thermal_driver + thermal_shift) * (1.0 + 0.03 * (i - 10) as f64) + 1.5 * jitter
                }
                // 6 memory sensors — carry the leak signature.
                18..=23 => {
                    (memory_driver + memory_shift) * (1.0 + 0.04 * (i - 18) as f64) + 2.0 * jitter
                }
                // 40 independent noisy channels (interrupt counts, context
                // switches, per-core residency states, ...): large variance,
                // no class information. Production node telemetry is mostly
                // this — the regime CS was designed for.
                _ => 500.0 * (1.0 + jitter),
            }
        })
        .collect()
}

/// Nearest-centroid classifier over arbitrary-length standardized vectors
/// (the fingerprint module's classifier is fixed at 4 features, so the
/// ablation carries its own minimal version).
struct Centroids {
    mean: Vec<f64>,
    std: Vec<f64>,
    classes: Vec<(NodeState, Vec<f64>)>,
}

impl Centroids {
    fn fit(examples: &[(NodeState, Vec<f64>)]) -> Self {
        let d = examples[0].1.len();
        let n = examples.len() as f64;
        let mut mean = vec![0.0; d];
        for (_, x) in examples {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; d];
        for (_, x) in examples {
            for (s, (v, m)) in std.iter_mut().zip(x.iter().zip(&mean)) {
                *s += (v - m).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        let scale = |x: &[f64]| -> Vec<f64> {
            x.iter()
                .zip(mean.iter().zip(&std))
                .map(|(v, (m, s))| (v - m) / s)
                .collect()
        };
        let mut sums: Vec<(NodeState, Vec<f64>, usize)> = Vec::new();
        for (label, x) in examples {
            let sx = scale(x);
            match sums.iter_mut().find(|(l, _, _)| l == label) {
                Some((_, acc, c)) => {
                    for (a, v) in acc.iter_mut().zip(&sx) {
                        *a += v;
                    }
                    *c += 1;
                }
                None => sums.push((*label, sx, 1)),
            }
        }
        Centroids {
            classes: sums
                .into_iter()
                .map(|(l, acc, c)| (l, acc.iter().map(|a| a / c as f64).collect()))
                .collect(),
            mean,
            std,
        }
    }

    fn predict(&self, x: &[f64]) -> NodeState {
        let sx: Vec<f64> = x
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect();
        self.classes
            .iter()
            .min_by(|(_, a), (_, b)| {
                let da: f64 = a.iter().zip(&sx).map(|(p, q)| (p - q).powi(2)).sum();
                let db: f64 = b.iter().zip(&sx).map(|(p, q)| (p - q).powi(2)).sum();
                da.total_cmp(&db)
            })
            .map(|(l, _)| *l)
            .unwrap()
    }
}

/// Runs the ablation: `train_per_class` labelled examples per class,
/// evaluated on `test_per_class` held-out snapshots. Returns
/// `(cs_result, raw_result)`.
pub fn run_ablation(
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> (ArmResult, ArmResult) {
    let states = [
        NodeState::Healthy,
        NodeState::FanFailure,
        NodeState::MemoryLeak,
    ];
    // Unlabelled history for learning the CS ordering (healthy operation —
    // ordering needs no labels, one of CS's selling points).
    let history: Vec<Vec<f64>> = (0..256u64)
        .map(|t| snapshot(NodeState::Healthy, seed, t))
        .collect();
    // Transpose to per-sensor series for fitting.
    let series: Vec<Vec<f64>> = (0..SENSORS)
        .map(|s| history.iter().map(|row| row[s]).collect())
        .collect();
    let cs = CorrelationSmoothing::fit(&series, 4);

    let make_set = |offset: u64, per_class: usize| -> Vec<(NodeState, Vec<f64>)> {
        let mut set = Vec::new();
        for (ci, &state) in states.iter().enumerate() {
            for k in 0..per_class {
                let t = offset + (ci * per_class + k) as u64 * 7 + 1_000;
                set.push((state, snapshot(state, seed ^ 0xABCD, t)));
            }
        }
        set
    };
    let train = make_set(0, train_per_class);
    let test = make_set(90_000, test_per_class);

    let eval = |project: &dyn Fn(&[f64]) -> Vec<f64>| -> ArmResult {
        let train_p: Vec<(NodeState, Vec<f64>)> =
            train.iter().map(|(l, x)| (*l, project(x))).collect();
        let model = Centroids::fit(&train_p);
        let correct = test
            .iter()
            .filter(|(l, x)| model.predict(&project(x)) == *l)
            .count();
        ArmResult {
            accuracy: correct as f64 / test.len() as f64,
            feature_len: train_p[0].1.len(),
        }
    };
    let cs_result = eval(&|x: &[f64]| cs.descriptor(x));
    let raw_result = eval(&|x: &[f64]| x.to_vec());
    (cs_result, raw_result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs_descriptor_is_much_smaller() {
        let (cs, raw) = run_ablation(6, 40, 1);
        assert_eq!(raw.feature_len, SENSORS);
        assert!(
            cs.feature_len < SENSORS / 2,
            "cs {} features",
            cs.feature_len
        );
    }

    #[test]
    fn cs_matches_raw_at_a_quarter_of_the_features_when_labels_are_scarce() {
        // Three labelled examples per class — the realistic regime.
        let mut cs_total = 0.0;
        let mut raw_total = 0.0;
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
        for &seed in &seeds {
            let (cs, raw) = run_ablation(3, 40, seed);
            cs_total += cs.accuracy;
            raw_total += raw.accuracy;
            assert!(cs.feature_len * 4 < raw.feature_len, "compression");
        }
        let n = seeds.len() as f64;
        let (cs_mean, raw_mean) = (cs_total / n, raw_total / n);
        assert!(cs_mean > 0.7, "cs accuracy {cs_mean}");
        assert!(
            cs_mean >= raw_mean - 0.02,
            "cs {cs_mean} must match raw {raw_mean} at >4x compression"
        );
    }

    #[test]
    fn raw_overtakes_with_ample_labels() {
        // The compression trade-off is real: CS discards some class
        // information, so with many labels the raw vector wins.
        let mut cs_total = 0.0;
        let mut raw_total = 0.0;
        for seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
            let (cs, raw) = run_ablation(10, 40, seed);
            cs_total += cs.accuracy;
            raw_total += raw.accuracy;
        }
        assert!(
            raw_total > cs_total,
            "raw ({raw_total}) should lead cs ({cs_total}) when labels abound"
        );
    }
}
