//! Worker-scaling benchmark for the deterministic capability scheduler.
//!
//! Builds a wide synthetic registry — many independent capabilities spread
//! across the read-only analytics stages — and sweeps the scheduler's
//! worker-pool width, measuring per-pass latency and verifying that every
//! worker count produces **bit-identical** pipeline output.
//!
//! Each synthetic capability models a *collector-bound* analysis: it blocks
//! for a fixed, deterministic interval (standing in for the out-of-process
//! collector round-trips — Redfish/IPMI pulls, database scans — that
//! dominate real ODA passes; see the paper's data-collection layer) and
//! then runs a small deterministic computation seeded from
//! [`CapabilityContext::rng_seed`]. Because the wait is I/O-shaped rather
//! than CPU-shaped, fan-out across a worker pool overlaps the waits and
//! yields near-linear pass speedup even on a single-core host — which is
//! exactly the regime the scheduler targets, and what lets the CI gate
//! assert a ≥2.5× speedup at four workers regardless of runner width. The
//! report records [`ScaleReport::host_parallelism`] so regressions can be
//! interpreted against the hardware that produced them.

use oda_core::analytics_type::AnalyticsType;
use oda_core::capability::{Artifact, Capability, CapabilityContext};
use oda_core::grid::{GridCell, GridFootprint};
use oda_core::pillar::Pillar;
use oda_core::pipeline::StagedPipeline;
use oda_core::runtime::{CapabilityScheduler, RuntimeConfig};
use oda_telemetry::cluster::{ClusterConfig, ClusterCoordinator};
use oda_telemetry::metrics::MetricsRegistry;
use oda_telemetry::query::{Aggregation, Query, TimeRange};
use oda_telemetry::reading::{Reading, ReadingBatch, Timestamp};
use oda_telemetry::sensor::{SensorKind, SensorRegistry, Unit};
use oda_telemetry::store::TimeSeriesStore;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one scaling sweep.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Synthetic capabilities in the registry, spread evenly across the
    /// Descriptive, Diagnostic and Predictive stages.
    pub caps: usize,
    /// Timed passes per worker count (one extra untimed warm-up pass runs
    /// first so lazy pool spawning never lands in the measurement).
    pub passes: usize,
    /// Simulated collector round-trip per capability, microseconds.
    pub collector_wait_us: u64,
    /// Worker-pool widths to sweep; the first entry is the speedup
    /// baseline (conventionally 1).
    pub worker_counts: Vec<usize>,
    /// Scheduler seed; every worker count replays the same seed.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            caps: 48,
            passes: 7,
            collector_wait_us: 500,
            worker_counts: vec![1, 2, 4, 8],
            seed: 4242,
        }
    }
}

/// Measurements for one worker count.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerPoint {
    /// Worker-pool width.
    pub workers: usize,
    /// Median pass latency, nanoseconds.
    pub pass_p50_ns: u64,
    /// 99th-percentile pass latency, nanoseconds.
    pub pass_p99_ns: u64,
    /// Median-pass speedup vs the baseline worker count.
    pub speedup_x: f64,
    /// Work-stealing events the pool recorded across all passes
    /// (scheduling telemetry — excluded from the determinism contract).
    pub steals: u64,
    /// Order-sensitive digest over every pass's pipeline output.
    pub digest: u64,
}

/// Everything one sweep measured.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleReport {
    /// Capabilities in the synthetic registry.
    pub caps: usize,
    /// Timed passes per worker count.
    pub passes: usize,
    /// Simulated collector round-trip per capability, microseconds.
    pub collector_wait_us: u64,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: usize,
    /// Per-worker-count measurements, in sweep order.
    pub points: Vec<WorkerPoint>,
    /// Whether every worker count produced a bit-identical output-digest
    /// sequence. **Must be true** — gated by `ci/check_bench.py`.
    pub outputs_equal: bool,
}

impl ScaleReport {
    /// Speedup at a given worker count, if it was part of the sweep.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.workers == workers)
            .map(|p| p.speedup_x)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A collector-bound synthetic capability: deterministic wait, then a
/// deterministic seed-derived computation.
struct SyntheticCollector {
    name: String,
    cell: GridCell,
    wait: Duration,
}

impl Capability for SyntheticCollector {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        "synthetic collector-bound capability (scale bench)"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(self.cell)
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        // The collector round-trip the pool is supposed to overlap.
        std::thread::sleep(self.wait);
        // A short deterministic computation seeded *only* from the
        // scheduler-assigned stream, so output is worker-count-invariant.
        let mut x = ctx.rng_seed;
        for _ in 0..256 {
            x = splitmix64(x);
        }
        vec![Artifact::Kpi {
            name: self.name.clone(),
            value: (x >> 11) as f64 / (1u64 << 53) as f64,
        }]
    }
}

/// The read-only stages the synthetic registry cycles through. Prescriptive
/// is deliberately absent: its footprint-conflict sub-layering is covered by
/// the chaos soak and the runtime property tests, while this bench isolates
/// the scheduler's fan-out behaviour on conflict-free layers.
const STAGES: [AnalyticsType; 3] = [
    AnalyticsType::Descriptive,
    AnalyticsType::Diagnostic,
    AnalyticsType::Predictive,
];

const PILLARS: [Pillar; 4] = [
    Pillar::BuildingInfrastructure,
    Pillar::SystemHardware,
    Pillar::SystemSoftware,
    Pillar::Applications,
];

fn build_pipeline(cfg: &ScaleConfig) -> StagedPipeline {
    let mut pipeline = StagedPipeline::new();
    pipeline.set_metrics(MetricsRegistry::disabled());
    for i in 0..cfg.caps {
        let stage = STAGES[i % STAGES.len()];
        let pillar = PILLARS[(i / STAGES.len()) % PILLARS.len()];
        pipeline.add_stage(
            stage,
            Box::new(SyntheticCollector {
                name: format!("scale-cap-{i:02}"),
                cell: GridCell::new(stage, pillar),
                wait: Duration::from_micros(cfg.collector_wait_us),
            }),
        );
    }
    pipeline
}

fn percentile_ns(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * pct).div_ceil(100).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the sweep: for each worker count, a fresh scheduler replays the
/// same seed over the same registry; per-pass output digests are folded
/// into a sequence digest that must match across all worker counts.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    let store = Arc::new(TimeSeriesStore::with_capacity(64));
    let registry = SensorRegistry::new();

    let mut points: Vec<WorkerPoint> = Vec::with_capacity(cfg.worker_counts.len());
    for &workers in &cfg.worker_counts {
        let mut pipeline = build_pipeline(cfg);
        let mut scheduler = CapabilityScheduler::with_metrics(
            RuntimeConfig::serial()
                .with_workers(workers)
                .with_seed(cfg.seed),
            MetricsRegistry::disabled(),
        );
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut samples: Vec<u64> = Vec::with_capacity(cfg.passes);
        // Warm-up pass: spawns the pool, still folds into the digest so the
        // pass-seed sequence stays aligned across worker counts.
        for pass in 0..=cfg.passes {
            let ctx = CapabilityContext::new(
                Arc::clone(&store),
                registry.clone(),
                TimeRange::all(),
                Timestamp::from_millis(1_000 * (pass as u64 + 1)),
            );
            let start = Instant::now();
            let run = scheduler.run(&mut pipeline, ctx);
            let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            if pass > 0 {
                samples.push(wall_ns);
            }
            let d = run.output_digest();
            for &b in &d.to_le_bytes() {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        samples.sort_unstable();
        points.push(WorkerPoint {
            workers,
            pass_p50_ns: percentile_ns(&samples, 50),
            pass_p99_ns: percentile_ns(&samples, 99),
            speedup_x: 0.0,
            steals: scheduler.steals(),
            digest,
        });
    }

    let base_p50 = points.first().map(|p| p.pass_p50_ns.max(1)).unwrap_or(1);
    for p in &mut points {
        p.speedup_x = base_p50 as f64 / p.pass_p50_ns.max(1) as f64;
    }
    let outputs_equal = points.windows(2).all(|w| w[0].digest == w[1].digest);

    ScaleReport {
        caps: cfg.caps,
        passes: cfg.passes,
        collector_wait_us: cfg.collector_wait_us,
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        points,
        outputs_equal,
    }
}

// ----- collector-shard sweep ------------------------------------------------

/// Configuration of one collector-shard scaling sweep.
///
/// Mirrors the worker sweep's I/O-shaped design: each shard's ingest path
/// carries a fixed simulated collector round-trip
/// ([`ClusterConfig::io_wait_us`] — the WAL `fsync` + network hop a real
/// per-shard collector pays), so sharding the sensor space overlaps those
/// waits across shard threads and yields near-linear ingest speedup even
/// on a single-core host.
#[derive(Debug, Clone)]
pub struct ShardSweepConfig {
    /// Sensors registered in the synthetic space (split across shards by
    /// the consistent-hash placement).
    pub sensors: usize,
    /// Readings ingested per sensor (one per simulated tick).
    pub ticks: usize,
    /// Simulated collector round-trip per ingest command, microseconds.
    pub io_wait_us: u64,
    /// Producer threads driving ingest concurrently; sensors are split
    /// round-robin so each sensor's stream stays in timestamp order.
    pub producers: usize,
    /// Shard counts to sweep; the first entry is the speedup baseline
    /// (conventionally 1).
    pub shard_counts: Vec<usize>,
    /// Seed for the deterministic synthetic readings.
    pub seed: u64,
}

impl Default for ShardSweepConfig {
    fn default() -> Self {
        ShardSweepConfig {
            sensors: 64,
            ticks: 40,
            io_wait_us: 200,
            producers: 2,
            shard_counts: vec![1, 2, 4, 8],
            seed: 4242,
        }
    }
}

/// Measurements for one shard count.
#[derive(Debug, Clone, Serialize)]
pub struct ShardPoint {
    /// Collector shards in the cluster.
    pub shards: usize,
    /// Wall time to ingest the whole stream and drain every shard, ns.
    pub ingest_wall_ns: u64,
    /// Ingest throughput, readings per second.
    pub ingest_rps: f64,
    /// Ingest speedup vs the baseline shard count.
    pub speedup_x: f64,
    /// Folded digest of the scatter-gather query battery. **Must match
    /// across every shard count** — the determinism contract.
    pub query_digest: u64,
}

/// Everything one shard sweep measured.
#[derive(Debug, Clone, Serialize)]
pub struct ShardSweepReport {
    /// Sensors in the synthetic space.
    pub sensors: usize,
    /// Readings per sensor.
    pub ticks: usize,
    /// Simulated collector round-trip per ingest, microseconds.
    pub io_wait_us: u64,
    /// Concurrent producer threads.
    pub producers: usize,
    /// Per-shard-count measurements, in sweep order.
    pub points: Vec<ShardPoint>,
    /// Whether every shard count answered the query battery with a
    /// bit-identical digest. **Must be true** — gated by
    /// `ci/check_bench.py` and the bench binary's exit status.
    pub digests_equal: bool,
}

impl ShardSweepReport {
    /// Ingest speedup at a given shard count, if it was part of the sweep.
    pub fn speedup_at(&self, shards: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.shards == shards)
            .map(|p| p.speedup_x)
    }
}

/// The scatter-gather query battery: every result shape the coordinator
/// merges, folded into one digest. Identical at any shard count or the
/// sweep fails.
fn query_battery_digest(
    cluster: &ClusterCoordinator,
    sensor_ids: &[oda_telemetry::sensor::SensorId],
) -> u64 {
    let queries = vec![
        Query::sensors("/bench/*").aggregate(Aggregation::Mean),
        Query::sensors("/bench/*").aggregate(Aggregation::Max),
        Query::sensors("/bench/*").downsample(5_000, Aggregation::Mean),
        Query::sensors("/bench/*").align(10_000),
        Query::sensors(&sensor_ids[..sensor_ids.len().min(8)]).range(TimeRange::all()),
        Query::sensors("/bench/*")
            .rate()
            .aggregate(Aggregation::Sum),
    ];
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for q in queries {
        let d = cluster.query(q).digest();
        for &b in &d.to_le_bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    digest
}

/// Runs the shard sweep: for each shard count a fresh cluster ingests the
/// same deterministic stream (placement-routed, `producers` threads wide),
/// then answers the same scatter-gather query battery; per-count digests
/// must be bit-identical and ingest throughput is measured wall-clock.
pub fn run_shard_sweep(cfg: &ShardSweepConfig) -> ShardSweepReport {
    let mut points: Vec<ShardPoint> = Vec::with_capacity(cfg.shard_counts.len());
    for &shards in &cfg.shard_counts {
        let registry = SensorRegistry::new();
        let sensor_ids: Vec<_> = (0..cfg.sensors)
            .map(|i| registry.register(&format!("/bench/s{i:03}"), SensorKind::Power, Unit::Watts))
            .collect();
        let cluster = ClusterCoordinator::new(
            ClusterConfig {
                shards,
                per_sensor_capacity: cfg.ticks.max(64),
                io_wait_us: cfg.io_wait_us,
                ..ClusterConfig::default()
            },
            registry.clone(),
        )
        .expect("bench cluster opens over fresh in-memory filesystems");

        let producers = cfg.producers.max(1);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for p in 0..producers {
                let cluster = &cluster;
                let mine: Vec<_> = sensor_ids
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % producers == p)
                    .map(|(_, &s)| s)
                    .collect();
                let seed = cfg.seed;
                let ticks = cfg.ticks;
                scope.spawn(move || {
                    for t in 0..ticks {
                        for &sensor in &mine {
                            let x = splitmix64(seed ^ (sensor.0 as u64) << 32 ^ t as u64);
                            let value = (x >> 11) as f64 / (1u64 << 53) as f64 * 1_000.0;
                            let reading = Reading::new(Timestamp::from_secs(t as u64), value);
                            cluster.ingest(ReadingBatch::single(sensor, reading));
                        }
                    }
                });
            }
        });
        cluster.fence();
        let ingest_wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

        let total = (cfg.sensors * cfg.ticks) as f64;
        points.push(ShardPoint {
            shards,
            ingest_wall_ns,
            ingest_rps: total / (ingest_wall_ns.max(1) as f64 / 1e9),
            speedup_x: 0.0,
            query_digest: query_battery_digest(&cluster, &sensor_ids),
        });
    }

    let base_rps = points.first().map(|p| p.ingest_rps).unwrap_or(1.0);
    for p in &mut points {
        p.speedup_x = p.ingest_rps / base_rps.max(f64::MIN_POSITIVE);
    }
    let digests_equal = points
        .windows(2)
        .all(|w| w[0].query_digest == w[1].query_digest);

    ShardSweepReport {
        sensors: cfg.sensors,
        ticks: cfg.ticks,
        io_wait_us: cfg.io_wait_us,
        producers: cfg.producers,
        points,
        digests_equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_outputs_are_worker_count_invariant() {
        let cfg = ScaleConfig {
            caps: 12,
            passes: 2,
            collector_wait_us: 50,
            worker_counts: vec![1, 4],
            seed: 7,
        };
        let report = run_scale(&cfg);
        assert!(
            report.outputs_equal,
            "digests diverged across worker counts"
        );
        assert_eq!(report.points.len(), 2);
        assert!(report.points.iter().all(|p| p.pass_p50_ns > 0));
        assert!(report.host_parallelism >= 1);
    }

    #[test]
    fn parallel_sweep_overlaps_collector_waits() {
        let cfg = ScaleConfig {
            caps: 24,
            passes: 3,
            collector_wait_us: 400,
            worker_counts: vec![1, 4],
            seed: 11,
        };
        let report = run_scale(&cfg);
        let s4 = report.speedup_at(4).unwrap();
        assert!(
            s4 > 1.5,
            "four workers should overlap collector waits (got {s4:.2}x)"
        );
    }

    #[test]
    fn shard_sweep_digests_are_shard_count_invariant() {
        let cfg = ShardSweepConfig {
            sensors: 24,
            ticks: 8,
            io_wait_us: 0,
            producers: 2,
            shard_counts: vec![1, 3],
            seed: 99,
        };
        let report = run_shard_sweep(&cfg);
        assert!(
            report.digests_equal,
            "query digests diverged across shard counts"
        );
        assert_eq!(report.points.len(), 2);
        assert!(report.points.iter().all(|p| p.ingest_rps > 0.0));
    }

    #[test]
    fn shard_sweep_overlaps_collector_io_waits() {
        let cfg = ShardSweepConfig {
            sensors: 32,
            ticks: 10,
            io_wait_us: 300,
            producers: 2,
            shard_counts: vec![1, 4],
            seed: 13,
        };
        let report = run_shard_sweep(&cfg);
        let s4 = report.speedup_at(4).unwrap();
        assert!(
            s4 > 1.3,
            "four shards should overlap collector io waits (got {s4:.2}x)"
        );
    }
}
