#![warn(missing_docs)]

//! # oda-bench — experiment harnesses and benchmarks
//!
//! This crate regenerates every table and figure of the paper plus the
//! quantitative demonstration experiments defined in `DESIGN.md`:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table I (survey classification) + corpus statistics |
//! | `figure3` | Fig. 3 (complex ODA systems on the grid) |
//! | `cells` | E8 — all sixteen reference capabilities on one trace |
//! | `proactive` | E5 — §V-A reactive vs proactive control |
//! | `multipillar` | E6 — §V-B single- vs multi-pillar ODA |
//! | `llnl` | E7 — §V-C Fourier power-fluctuation forecasting |
//!
//! (Fig. 1 and Fig. 2 are conceptual diagrams; `examples/framework_tour`
//! prints them.) The `benches/` directory holds Criterion micro/meso
//! benchmarks for the substrates and the ablations listed in `DESIGN.md`.
//!
//! The experiment logic lives in this library so the binaries stay thin
//! and the integration tests can assert the experiments' *directional*
//! claims (who wins) without parsing stdout.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod control;
pub mod e5_proactive;
pub mod e6_multipillar;
pub mod e7_llnl;
pub mod e8_cells;
pub mod e9_cs_ablation;
pub mod ingest;
pub mod scale;
pub mod serving;
pub mod storage;
