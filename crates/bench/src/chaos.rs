//! Chaos soak harness: the full ODA runtime under telemetry-fault injection.
//!
//! Drives a [`DataCenter`] tick by tick with a [`FaultSchedule`] installed,
//! consumes the (possibly corrupted) sensor streams exactly the way the
//! analytics layer does — bus subscription → alert engine → gap-tolerant
//! forecasters — and scores how gracefully the pipeline degrades:
//!
//! * **usable-window fraction** — share of fixed-length evaluation windows
//!   in which every watched sensor still delivered at least half of its
//!   expected finite samples;
//! * **alert behaviour** — alerts raised under faults vs. a clean run at the
//!   same simulation seed (the difference is the false-alert overhead the
//!   corruption caused), plus a count of alert events carrying non-finite
//!   readings (must stay zero: NaN never constitutes alert evidence);
//! * **forecast abstention** — how often the gap-tolerant forecasters
//!   declined to extrapolate because more than half their recent input was
//!   missing;
//! * **determinism** — an order-sensitive digest over everything the
//!   pipeline consumed; two runs with identical `(seed, schedule)` must
//!   produce identical digests.
//!
//! The same harness backs `bin/chaos.rs` (the operator-facing soak) and the
//! `tests/chaos.rs` integration suite.

use oda_analytics::predictive::forecast::{Forecaster, GapTolerant, Holt};
use oda_core::analytics_type::AnalyticsType;
use oda_core::cells;
use oda_core::runtime::{OdaRuntime, RuntimeConfig, SimControlPlane};
use oda_sim::prelude::*;
use oda_telemetry::alert::{AlertEngine, AlertRule, AlertSeverity, Condition};
use oda_telemetry::metrics::MetricsRegistry;
use oda_telemetry::pattern::SensorPattern;
use oda_telemetry::reading::Timestamp;
use oda_telemetry::sensor::SensorId;
use oda_telemetry::storage::{BackendKind, StorageConfig};
use serde::Serialize;
use std::collections::HashMap;

/// Configuration of one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Simulation seed (plant + workload + corruption RNG all derive from
    /// their own sub-seeds, so the clean and faulty runs share a plant).
    pub seed: u64,
    /// Number of simulation ticks to run.
    pub ticks: u64,
    /// Evaluation-window length in ticks.
    pub window_ticks: u64,
    /// Telemetry-fault schedule; `None` runs the clean baseline.
    pub schedule: Option<FaultSchedule>,
    /// Worker-pool width for the closed-loop ODA runtime the soak drives
    /// once per evaluation window (wired through
    /// `DataCenterConfig::workers`). The determinism check must hold at
    /// *any* worker count — the replay gate runs this soak at 1 and 4.
    pub workers: usize,
    /// Archive backend the site runs over. The digest contract is
    /// backend-invariant: in-memory, persistent and hybrid must consume
    /// identical streams and drive identical passes.
    pub backend: BackendKind,
    /// If set, restart the archive (flush, drop bus + hot store, recover
    /// from WAL + segments) after this many evaluation windows have closed.
    /// With a durable backend and complete durable history, the digest must
    /// be bit-identical to an uninterrupted run.
    pub restart_at_window: Option<u64>,
}

impl SoakConfig {
    /// A clean baseline run.
    pub fn clean(seed: u64, ticks: u64) -> Self {
        SoakConfig {
            seed,
            ticks,
            window_ticks: 1_000,
            schedule: None,
            workers: 1,
            backend: BackendKind::InMemory,
            restart_at_window: None,
        }
    }

    /// A faulted run under `schedule`.
    pub fn faulty(seed: u64, ticks: u64, schedule: FaultSchedule) -> Self {
        SoakConfig {
            schedule: Some(schedule),
            ..Self::clean(seed, ticks)
        }
    }

    /// Sets the runtime worker count. Builder-style.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the archive backend. Builder-style.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Restarts the archive after `window` evaluation windows. Builder-style.
    #[must_use]
    pub fn with_restart_at_window(mut self, window: u64) -> Self {
        self.restart_at_window = Some(window);
        self
    }
}

/// Everything a soak run measured.
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Evaluation windows scored.
    pub windows: u64,
    /// Windows in which every watched sensor delivered ≥ 50% of its
    /// expected finite samples.
    pub usable_windows: u64,
    /// Alert *raise* events observed.
    pub alerts_raised: u64,
    /// Alert raise/clear events total.
    pub alert_events: u64,
    /// Alert events whose triggering reading was non-finite (must be 0).
    pub nan_alert_events: u64,
    /// Per-window forecasts the gap-tolerant layer produced.
    pub forecasts_made: u64,
    /// Per-window forecasts abstained (> 50% of recent input missing).
    pub forecasts_abstained: u64,
    /// Readings the fault layer suppressed outright.
    pub suppressed: u64,
    /// Readings the fault layer altered (value or timestamp).
    pub corrupted: u64,
    /// Store-side rejections (out-of-order + non-finite) over all sensors.
    pub store_rejected: u64,
    /// Largest inter-sample gap archived for any sensor, milliseconds.
    pub max_gap_ms: u64,
    /// Batches the bus delivered to subscribers.
    pub bus_delivered: u64,
    /// Batches the bus shed on full subscriber channels.
    pub bus_dropped: u64,
    /// Maximum number of telemetry faults simultaneously active.
    pub max_concurrent_faults: usize,
    /// Jobs the site completed (burst-load faults must still make progress).
    pub jobs_completed: usize,
    /// Closed-loop analytics passes driven (one per evaluation window).
    pub runtime_passes: u64,
    /// Prescriptions the runtime applied through the sim control plane.
    pub prescriptions_applied: u64,
    /// Prescriptions deferred to an operator (or unrecognised).
    pub prescriptions_deferred: u64,
    /// Archive restarts performed mid-run.
    pub restarts: u64,
    /// Readings the durable backend recovered across restarts (0 without a
    /// restart or with the in-memory backend).
    pub recovered_readings: u64,
    /// Order-sensitive FNV-1a digest over every consumed reading and alert
    /// transition; equal seeds + equal schedules ⇒ equal digests.
    pub digest: u64,
}

impl SoakReport {
    /// Fraction of windows with usable output, in `[0, 1]`.
    pub fn usable_fraction(&self) -> f64 {
        if self.windows == 0 {
            return 1.0;
        }
        self.usable_windows as f64 / self.windows as f64
    }
}

/// The sensors the soak pipeline watches end to end.
const WATCHED: [&str; 3] = ["/facility/power/it_kw", "/hw/node0/temp_c", "/facility/pue"];

/// A hand-built schedule with a guaranteed overlap of all seven fault
/// kinds (every fault is active during `[0.45, 0.46) × horizon`), plus the
/// kind rotation the randomized generator provides.
pub fn demo_schedule(seed: u64, ticks: u64, tick_ms: u64) -> FaultSchedule {
    let h = ticks.saturating_mul(tick_ms);
    let at = |frac: f64| Timestamp::from_millis((h as f64 * frac) as u64);
    FaultSchedule::new(seed)
        .with(
            TelemetryFaultKind::SensorDropout {
                pattern: "/hw/node0/temp_c".to_owned(),
            },
            at(0.10),
            at(0.60),
        )
        .with(
            TelemetryFaultKind::NanBurst {
                pattern: "/hw/*/power_w".to_owned(),
                p: 0.3,
            },
            at(0.20),
            at(0.70),
        )
        .with(
            TelemetryFaultKind::Spike {
                pattern: "/facility/power/it_kw".to_owned(),
                magnitude: 40.0,
                p: 0.2,
            },
            at(0.25),
            at(0.75),
        )
        .with(
            TelemetryFaultKind::StuckAt {
                pattern: "/hw/node1/util".to_owned(),
            },
            at(0.30),
            at(0.80),
        )
        .with(
            TelemetryFaultKind::ClockJitter {
                pattern: "/hw/node2/*".to_owned(),
                max_skew_ms: 15_000,
            },
            at(0.35),
            at(0.65),
        )
        .with(
            TelemetryFaultKind::NodeFailure { node: NodeId(3) },
            at(0.40),
            at(0.60),
        )
        .with(
            TelemetryFaultKind::BurstLoad {
                jobs: 4,
                duration_s: 600.0,
            },
            at(0.45),
            at(0.46),
        )
}

/// FNV-1a, the workspace's stock order-sensitive digest.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

struct Watched {
    sensor: SensorId,
    forecaster: GapTolerant<Holt>,
    /// Value seen in the current sampling frame, if any.
    frame_value: Option<f64>,
    /// Finite samples seen in the current evaluation window.
    window_finite: u64,
}

/// Runs one soak and scores it.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let mut config = DataCenterConfig::tiny();
    config.workers = cfg.workers;
    config.storage = StorageConfig {
        backend: cfg.backend,
        ..StorageConfig::default()
    };
    let sample_every = config.sample_every_ticks;
    let window_ms = cfg.window_ticks * config.tick_ms;
    let mut dc = DataCenter::builder(config).seed(cfg.seed).build();
    if let Some(schedule) = &cfg.schedule {
        dc.set_fault_schedule(schedule.clone());
    }

    // The closed-loop analytics runtime the soak drives once per evaluation
    // window. Scheduling telemetry (steal/busy/contention counters) is
    // determinism-exempt, so metrics stay disabled; everything the replay
    // contract *does* cover — artifacts, prescriptions, emission order —
    // folds into the digest at window close.
    let mut runtime = OdaRuntime::with_config(
        window_ms,
        RuntimeConfig::serial()
            .with_workers(dc.config().workers)
            .with_seed(cfg.seed),
    )
    .with_metrics(MetricsRegistry::disabled())
    .with_capability(
        AnalyticsType::Diagnostic,
        Box::new(cells::diagnostic::InfraAnomalyDetector::new()),
    )
    .with_capability(
        AnalyticsType::Predictive,
        Box::new(cells::predictive::InfraForecaster::new()),
    )
    .with_capability(
        AnalyticsType::Prescriptive,
        Box::new(cells::prescriptive::CoolingOptimizer::new()),
    )
    .with_capability(
        AnalyticsType::Prescriptive,
        Box::new(cells::prescriptive::DvfsTuner::new()),
    );

    let lookup = |name: &str| dc.registry().lookup(name).expect("watched sensor exists");
    let mut watched: Vec<Watched> = WATCHED
        .iter()
        .map(|name| Watched {
            sensor: lookup(name),
            // Holt handles trends in power/temperature; fill gaps up to 3
            // samples, abstain when >50% of the last 40 samples are missing.
            forecaster: GapTolerant::new(Holt::new(0.4, 0.1), 3, 40),
            frame_value: None,
            window_finite: 0,
        })
        .collect();

    let mut alerts = AlertEngine::new(vec![
        AlertRule::new(
            "node0-overtemp",
            lookup("/hw/node0/temp_c"),
            Condition::Above(90.0),
            AlertSeverity::Warning,
        )
        .with_debounce(2)
        .with_clear_debounce(3)
        .with_cooldown_ms(120_000),
        AlertRule::new(
            "pue-implausible",
            lookup("/facility/pue"),
            Condition::Outside { lo: 0.5, hi: 3.0 },
            AlertSeverity::Critical,
        )
        .with_clear_debounce(2),
        AlertRule::new(
            "it-power-implausible",
            lookup("/facility/power/it_kw"),
            Condition::Outside {
                lo: 0.0,
                hi: 1_000.0,
            },
            AlertSeverity::Critical,
        )
        .with_clear_debounce(2),
    ]);

    let mut sub = dc
        .bus()
        .subscription(SensorPattern::new("/**"))
        .capacity(4_096)
        .named("chaos-soak")
        .subscribe();

    let mut report = SoakReport {
        ticks: cfg.ticks,
        windows: 0,
        usable_windows: 0,
        alerts_raised: 0,
        alert_events: 0,
        nan_alert_events: 0,
        forecasts_made: 0,
        forecasts_abstained: 0,
        suppressed: 0,
        corrupted: 0,
        store_rejected: 0,
        max_gap_ms: 0,
        bus_delivered: 0,
        bus_dropped: 0,
        restarts: 0,
        recovered_readings: 0,
        max_concurrent_faults: 0,
        jobs_completed: 0,
        runtime_passes: 0,
        prescriptions_applied: 0,
        prescriptions_deferred: 0,
        digest: 0xcbf2_9ce4_8422_2325, // FNV offset basis
    };
    let expected_per_window = (cfg.window_ticks / sample_every).max(1);

    let by_sensor: HashMap<SensorId, usize> = watched
        .iter()
        .enumerate()
        .map(|(i, w)| (w.sensor, i))
        .collect();

    for tick in 1..=cfg.ticks {
        dc.step();
        if let Some(tf) = dc.telemetry_faults() {
            report.max_concurrent_faults = report
                .max_concurrent_faults
                .max(tf.active_at(dc.now()).len());
        }

        // Consume everything published this tick, in publish order.
        while let Ok(batch) = sub.rx.try_recv() {
            let sensor = batch.sensor;
            for &reading in &batch.readings {
                fnv1a(&mut report.digest, &sensor.0.to_le_bytes());
                fnv1a(&mut report.digest, &reading.ts.0.to_le_bytes());
                fnv1a(&mut report.digest, &reading.value.to_bits().to_le_bytes());
                for event in alerts.observe(sensor, reading) {
                    report.alert_events += 1;
                    if event.active {
                        report.alerts_raised += 1;
                    }
                    if !event.reading.value.is_finite() {
                        report.nan_alert_events += 1;
                    }
                    fnv1a(&mut report.digest, event.rule.as_bytes());
                    fnv1a(&mut report.digest, &[event.active as u8]);
                }
                if let Some(&i) = by_sensor.get(&sensor) {
                    watched[i].frame_value = Some(reading.value);
                }
            }
        }

        // Close the sampling frame: a watched sensor that published nothing
        // this frame is a *gap*, which the forecaster must be told about.
        if tick % sample_every == 0 {
            for w in &mut watched {
                let x = w.frame_value.take().unwrap_or(f64::NAN);
                if x.is_finite() {
                    w.window_finite += 1;
                }
                w.forecaster.update(x);
            }
        }

        // Close the evaluation window.
        if tick % cfg.window_ticks == 0 {
            report.windows += 1;
            let usable = watched
                .iter()
                .all(|w| 2 * w.window_finite >= expected_per_window);
            if usable {
                report.usable_windows += 1;
            }
            for w in &mut watched {
                match w.forecaster.forecast(1) {
                    Some(_) => report.forecasts_made += 1,
                    None => report.forecasts_abstained += 1,
                }
                w.window_finite = 0;
            }

            // Drive the full analytics pipeline over the closed window and
            // let its prescriptions actuate the simulator — the faulted run
            // exercises the feedback loop under corruption too. The pass
            // output is covered by the scheduler's determinism contract, so
            // it folds into the replay digest at any worker count.
            let store = std::sync::Arc::clone(dc.store());
            let registry = dc.registry().clone();
            let now = dc.now();
            let pass = runtime.pass(store, registry, now, &mut SimControlPlane { dc: &mut dc });
            report.runtime_passes += 1;
            report.prescriptions_applied += pass.applied as u64;
            report.prescriptions_deferred += pass.deferred as u64;
            fnv1a(&mut report.digest, &pass.run.output_digest().to_le_bytes());
            fnv1a(&mut report.digest, &(pass.applied as u64).to_le_bytes());
            fnv1a(&mut report.digest, &(pass.deferred as u64).to_le_bytes());

            // Archive restart drill: at the configured window boundary (all
            // published batches drained, pass complete), tear the bus + hot
            // store down and recover from the durable tier. The digest folds
            // nothing during the restart itself — with a durable backend the
            // recovered hot state is bit-identical, so every subsequent pass
            // must produce the same output as an uninterrupted run.
            if cfg.restart_at_window == Some(report.windows) {
                if let Some(recovery) = dc.restart_archive() {
                    report.recovered_readings += recovery.readings_recovered;
                }
                report.restarts += 1;
                sub = dc
                    .bus()
                    .subscription(SensorPattern::new("/**"))
                    .capacity(4_096)
                    .named("chaos-soak")
                    .subscribe();
            }
        }
    }

    if let Some(tf) = dc.telemetry_faults() {
        report.suppressed = tf.suppressed();
        report.corrupted = tf.corrupted();
    }
    let health = dc.store().health_report();
    report.store_rejected = health.total_rejected();
    report.max_gap_ms = health.max_gap_ms();
    report.bus_delivered = dc.bus().delivered_total();
    report.bus_dropped = dc.bus().dropped_total();
    report.jobs_completed = dc.finished_jobs().len();
    fnv1a(&mut report.digest, &report.suppressed.to_le_bytes());
    fnv1a(&mut report.digest, &report.corrupted.to_le_bytes());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_soak_is_fully_usable_and_quiet() {
        let r = run_soak(&SoakConfig::clean(3, 2_000));
        assert_eq!(r.windows, 2);
        assert_eq!(r.usable_windows, 2);
        assert_eq!(r.suppressed, 0);
        assert_eq!(r.nan_alert_events, 0);
        assert_eq!(r.forecasts_abstained, 0);
    }

    #[test]
    fn soak_digest_is_worker_count_invariant() {
        let ticks = 2_000;
        let schedule = demo_schedule(9, ticks, 1_000);
        let serial = run_soak(&SoakConfig::faulty(9, ticks, schedule.clone()));
        let parallel = run_soak(&SoakConfig::faulty(9, ticks, schedule).with_workers(4));
        assert_eq!(serial.digest, parallel.digest);
        assert_eq!(serial.prescriptions_applied, parallel.prescriptions_applied);
        assert_eq!(
            serial.prescriptions_deferred,
            parallel.prescriptions_deferred
        );
        assert_eq!(serial.runtime_passes, 2);
    }

    #[test]
    fn soak_digest_is_backend_invariant_and_restart_safe() {
        let ticks = 2_000;
        let base = run_soak(&SoakConfig::clean(5, ticks));
        let hybrid = run_soak(&SoakConfig::clean(5, ticks).with_backend(BackendKind::Hybrid));
        assert_eq!(
            base.digest, hybrid.digest,
            "backend choice must not perturb the pipeline"
        );
        let restarted = run_soak(
            &SoakConfig::clean(5, ticks)
                .with_backend(BackendKind::Hybrid)
                .with_restart_at_window(1),
        );
        assert_eq!(restarted.restarts, 1);
        assert!(
            restarted.recovered_readings > 0,
            "restart must recover durable readings"
        );
        assert_eq!(
            base.digest, restarted.digest,
            "recovery must be bit-identical"
        );
    }

    #[test]
    fn faulty_soak_is_deterministic_and_degrades_gracefully() {
        let ticks = 3_000;
        let schedule = demo_schedule(21, ticks, 1_000);
        let a = run_soak(&SoakConfig::faulty(21, ticks, schedule.clone()));
        let b = run_soak(&SoakConfig::faulty(21, ticks, schedule));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.suppressed, b.suppressed);
        assert!(a.suppressed > 0, "dropout windows must suppress readings");
        assert_eq!(a.nan_alert_events, 0, "NaN must never reach an alert");
        assert!(a.max_concurrent_faults >= 3);
    }
}
