//! E6 — §V-B: single-pillar vs multi-pillar ODA.
//!
//! The paper observes that most deployed ODA stays within one pillar
//! (closed systems are easier), while multi-pillar use cases — which need
//! holistic monitoring and orchestration — promise more, especially in
//! designs that couple the HPC system tightly to its cooling plant.
//!
//! The experiment compares three configurations on identical workloads:
//!
//! * **siloed** — no ODA: fixed cold cooling setpoint, first-fit
//!   placement. The facility team's conservative default.
//! * **single-pillar** — infrastructure-only ODA: the cooling controller
//!   tunes the setpoint from *facility* telemetry (weather) to maximise
//!   free cooling — the optimum *of its own silo*, since within the
//!   free-cooling region plant power barely depends on the setpoint.
//! * **multi-pillar** — a controller that also sees the System-Hardware
//!   pillar: it minimises `plant_power(setpoint) + leakage(setpoint)`
//!   using per-node temperature telemetry and the silicon's leakage
//!   coefficient. On hot afternoons with leaky silicon this optimiser
//!   discovers what the facility silo *cannot*: paying the chiller for a
//!   cold loop saves more in CPU leakage than it costs in compressor
//!   power. Placement is also cooling-aware (a System-Software decision
//!   from Building-Infrastructure data).
//!
//! Expected shape: single-pillar beats the siloed default; multi-pillar
//! beats single-pillar — the paper's "opportunities that can come from
//! multi-pillar ODA" in data centers with tight HPC/cooling coupling.

use crate::control::{metrics, run_with_controller, RunMetrics};
use oda_analytics::prescriptive::cooling_mode::PlantModel;
use oda_analytics::prescriptive::setpoint::golden_section_min;
use oda_sim::prelude::*;
use oda_sim::scheduler::placement::CoolingAware;
use oda_telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Fixed setpoint, first-fit placement.
    Siloed,
    /// ODA-tuned cooling setpoint only.
    SinglePillar,
    /// Tuned cooling + cooling-aware placement.
    MultiPillar,
}

impl Config {
    /// All configurations, report order.
    pub const ALL: [Config; 3] = [Config::Siloed, Config::SinglePillar, Config::MultiPillar];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Config::Siloed => "siloed",
            Config::SinglePillar => "single-pillar",
            Config::MultiPillar => "multi-pillar",
        }
    }
}

fn site_config() -> DataCenterConfig {
    // The §V-B setting: a warm-climate site with tight coupling between
    // the HPC system and its cooling. Pronounced rack thermal
    // heterogeneity makes placement matter; leakage-sensitive silicon
    // (large `leakage_w_per_c`) is what couples loop temperature back into
    // IT power. The simulated year starts in winter, so a warm annual mean
    // puts the run in chiller-relevant conditions.
    let mut cfg = DataCenterConfig::small();
    cfg.max_rack_inlet_offset_c = 8.0;
    cfg.weather.mean_c = 24.0;
    cfg.node.leakage_w_per_c = 3.0;
    cfg.node.leakage_onset_c = 40.0;
    cfg
}

/// The infrastructure-pillar controller: hold the loop as warm as free
/// cooling needs (reading only facility telemetry). Within the
/// free-cooling region plant power is flat in the setpoint, so "lowest
/// setpoint that still admits free cooling" is the silo's optimum.
fn tune_cooling_silo(dc: &mut DataCenter) {
    let store = std::sync::Arc::clone(dc.store());
    let q = QueryEngine::new(&store);
    let outside = dc
        .registry()
        .lookup("/facility/outside_temp")
        .and_then(|s| {
            Query::sensors(s)
                .range(TimeRange::trailing(dc.now(), 900_000))
                .aggregate(Aggregation::Max)
                .run(&q)
                .scalar()
        });
    if let Some(outside) = outside {
        // Free cooling needs outside + approach ≤ setpoint; 1 °C margin.
        let target = (outside + 4.0 + 1.0).clamp(18.0, 45.0);
        dc.set_cooling_setpoint(target);
    }
}

/// The cross-pillar controller: choose the setpoint minimising
/// `plant_power + IT leakage`, where leakage response is predicted from
/// *observed per-node temperatures* (node temperature moves 1:1 with the
/// loop setpoint) and the silicon's leakage coefficient — hardware-pillar
/// knowledge a facility silo does not have.
fn tune_cooling_cross_pillar(dc: &mut DataCenter, leak_w_per_c: f64, leak_onset_c: f64) {
    let store = std::sync::Arc::clone(dc.store());
    let q = QueryEngine::new(&store);
    let recent = TimeRange::trailing(dc.now(), 900_000);
    let lookup = |name: &str, agg| {
        dc.registry().lookup(name).and_then(|s| {
            Query::sensors(s)
                .range(recent)
                .aggregate(agg)
                .run(&q)
                .scalar()
        })
    };
    let Some(outside) = lookup("/facility/outside_temp", Aggregation::Max) else {
        return;
    };
    let Some(it_kw) = lookup("/facility/power/it_kw", Aggregation::Mean) else {
        return;
    };
    let sp_now = dc.cooling_setpoint();
    // Per-node temperatures at the current operating point.
    let node_temps: Vec<f64> = (0..dc.node_count())
        .filter_map(|i| lookup(&format!("/hw/node{i}/temp_c"), Aggregation::Mean))
        .collect();
    if node_temps.is_empty() {
        return;
    }
    let plant = PlantModel::default();
    let cost = |sp: f64| {
        // Plant side: cheapest feasible mode at this setpoint.
        let free = plant
            .free_cooling_feasible(sp, outside)
            .then(|| plant.free_cooling_power_kw(it_kw));
        let chill = plant.chiller_power_kw(it_kw, sp, outside);
        let plant_kw = free.map_or(chill, |f| f.min(chill));
        // Hardware side: leakage at the shifted node temperatures.
        let dsp = sp - sp_now;
        let leak_kw: f64 = node_temps
            .iter()
            .map(|t| leak_w_per_c * (t + dsp - leak_onset_c).max(0.0))
            .sum::<f64>()
            / 1_000.0;
        plant_kw + leak_kw
    };
    let best = golden_section_min(18.0, 45.0, 0.1, 60, cost);
    dc.set_cooling_setpoint(best.knob);
    // Use whichever plant mode the optimiser's model found cheaper.
    let mode = if plant.free_cooling_feasible(best.knob, outside)
        && plant.free_cooling_power_kw(it_kw) <= plant.chiller_power_kw(it_kw, best.knob, outside)
    {
        CoolingMode::FreeCooling
    } else {
        CoolingMode::Chiller
    };
    dc.set_cooling_mode(mode);
}

/// Runs one configuration.
pub fn run_config(config: Config, hours: f64, seed: u64) -> RunMetrics {
    let cfg = site_config();
    let (leak_w_per_c, leak_onset_c) = (cfg.node.leakage_w_per_c, cfg.node.leakage_onset_c);
    let mut dc = DataCenter::builder(cfg).seed(seed).build();
    // Siloed sites run a conservative cold loop all year.
    dc.set_cooling_setpoint(20.0);
    match config {
        Config::Siloed => dc.run_for_hours(hours),
        Config::SinglePillar => {
            run_with_controller(&mut dc, hours, 900, tune_cooling_silo);
        }
        Config::MultiPillar => {
            dc.set_placement_policy(Box::new(CoolingAware));
            run_with_controller(&mut dc, hours, 900, |dc| {
                tune_cooling_cross_pillar(dc, leak_w_per_c, leak_onset_c);
            });
        }
    }
    metrics(&dc)
}

/// Runs the whole experiment.
pub fn run_experiment(hours: f64, seed: u64) -> Vec<(Config, RunMetrics)> {
    Config::ALL
        .into_iter()
        .map(|c| (c, run_config(c, hours, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oda_beats_siloed_and_multipillar_beats_single() {
        let results = run_experiment(8.0, 2);
        let m = |c: Config| results.iter().find(|(x, _)| *x == c).unwrap().1;
        let siloed = m(Config::Siloed);
        let single = m(Config::SinglePillar);
        let multi = m(Config::MultiPillar);
        // Single-pillar cooling ODA reduces facility energy vs the fixed
        // cold loop.
        assert!(
            single.utility_energy_kwh < siloed.utility_energy_kwh,
            "single {} vs siloed {}",
            single.utility_energy_kwh,
            siloed.utility_energy_kwh
        );
        // Multi-pillar adds on top (allow equality margin of 0.1%: the
        // placement effect is real but smaller).
        assert!(
            multi.utility_energy_kwh < single.utility_energy_kwh * 1.001,
            "multi {} vs single {}",
            multi.utility_energy_kwh,
            single.utility_energy_kwh
        );
        // No throughput collapse: completed work within 5% across configs.
        assert!(multi.work_done_node_s > siloed.work_done_node_s * 0.95);
    }
}
