//! Property-based tests of the scheduler's allocation invariants under
//! randomized workloads and policies.

use oda_sim::hardware::node::NodeId;
use oda_sim::scheduler::job::{Job, JobClass, JobId, JobState};
use oda_sim::scheduler::placement::{
    CoolingAware, FirstFit, PackRacks, PlacementContext, PlacementPolicy, PowerAware,
};
use oda_sim::scheduler::Scheduler;
use oda_telemetry::reading::Timestamp;
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct JobSpec {
    nodes: u32,
    walltime_s: u16,
    work_factor: u8, // percent of walltime the work actually takes
    submit_gap_s: u16,
    class: usize,
}

fn arb_jobs(max: usize) -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (1u32..=8, 10u16..2_000, 10u8..150, 0u16..600, 0usize..5).prop_map(
            |(nodes, walltime_s, work_factor, submit_gap_s, class)| JobSpec {
                nodes,
                walltime_s,
                work_factor,
                submit_gap_s,
                class,
            },
        ),
        1..max,
    )
}

fn arb_policy() -> impl Strategy<Value = usize> {
    0usize..4
}

fn make_policy(i: usize) -> Box<dyn PlacementPolicy> {
    match i {
        0 => Box::new(FirstFit),
        1 => Box::new(CoolingAware),
        2 => Box::new(PackRacks),
        _ => Box::new(PowerAware),
    }
}

fn ctx(nodes: usize) -> PlacementContext {
    PlacementContext {
        node_temps_c: (0..nodes).map(|i| 40.0 + (i % 7) as f64).collect(),
        node_power_w: (0..nodes).map(|i| 100.0 + (i % 5) as f64 * 30.0).collect(),
        rack_inlet_offsets_c: vec![0.0, 1.5, 3.0, 4.5],
        nodes_per_rack: nodes.div_ceil(4).max(1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the workload and policy: nodes are never double-allocated,
    /// the free pool plus running allocations always equals the machine,
    /// and every job eventually reaches a terminal state.
    #[test]
    fn allocation_invariants_hold(specs in arb_jobs(40), policy in arb_policy()) {
        let node_count = 16usize;
        let mut s = Scheduler::new(node_count, make_policy(policy));
        // Build the arrival sequence; jobs are handed to the scheduler only
        // once simulated time reaches their submit instant (submit() means
        // "the job has arrived").
        let mut submit_ts = 0u64;
        let mut arrivals: Vec<Job> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            submit_ts += spec.submit_gap_s as u64 * 1_000;
            let class = JobClass::ALL[spec.class];
            let walltime = spec.walltime_s as f64;
            let work = (walltime * spec.work_factor as f64 / 100.0).max(1.0)
                * spec.nodes as f64;
            arrivals.push(Job::new(
                JobId(i as u64 + 1),
                0,
                class,
                spec.nodes,
                work,
                walltime,
                Timestamp::from_millis(submit_ts),
            ));
        }
        let ids: Vec<JobId> = arrivals.iter().map(|j| j.id).collect();
        let mut pending = std::collections::VecDeque::from(arrivals);
        // Drive time forward in 10 s steps; progress running jobs at
        // nominal rate.
        let mut now = Timestamp::ZERO;
        for _ in 0..6_000 {
            now = now + 10_000;
            while pending.front().map(|j| j.submit <= now).unwrap_or(false) {
                s.submit(pending.pop_front().unwrap());
            }
            s.reap(now);
            let context = ctx(node_count);
            s.schedule(now, &context);
            // Invariant: running jobs' allocations are disjoint and fit.
            let mut seen: BTreeSet<NodeId> = BTreeSet::new();
            let mut allocated = 0usize;
            for id in s.running_ids() {
                let job = s.job(id).unwrap();
                prop_assert_eq!(job.state, JobState::Running);
                prop_assert_eq!(job.assigned.len(), job.nodes_requested as usize);
                for n in &job.assigned {
                    prop_assert!(seen.insert(*n), "node {n:?} double-allocated");
                    prop_assert!(n.index() < node_count);
                    allocated += 1;
                }
            }
            prop_assert!(allocated <= node_count);
            prop_assert!(
                (s.utilization(node_count) - allocated as f64 / node_count as f64).abs() < 1e-9
            );
            // Progress work.
            for id in s.running_ids() {
                if let Some(j) = s.job_mut(id) {
                    let nodes = j.assigned.len() as f64;
                    j.progress_node_seconds += 10.0 * nodes;
                }
            }
            if s.queue_len() == 0 && s.running_len() == 0 && pending.is_empty() {
                break;
            }
        }
        prop_assert!(pending.is_empty(), "all jobs must have arrived");
        // Everything terminal, and the books balance.
        prop_assert_eq!(s.queue_len(), 0, "queue must drain");
        prop_assert_eq!(s.running_len(), 0, "all jobs must finish");
        let stats = s.stats();
        prop_assert_eq!(stats.completed + stats.killed, ids.len() as u64);
        for id in ids {
            let j = s.job(id).unwrap();
            prop_assert!(matches!(j.state, JobState::Completed | JobState::Killed));
            prop_assert!(j.start.is_some() && j.end.is_some());
            prop_assert!(j.start.unwrap() >= j.submit);
            prop_assert!(j.end.unwrap() >= j.start.unwrap());
            // Walltime enforcement: runtime never exceeds the request by
            // more than one scheduling step.
            let runtime = j.runtime_s().unwrap();
            prop_assert!(
                runtime <= j.requested_walltime_s + 10.0 + 1e-9,
                "runtime {} vs walltime {}",
                runtime,
                j.requested_walltime_s
            );
        }
    }

    /// All placement policies fill exactly the requested node count from
    /// the free set, for any free-set shape.
    #[test]
    fn policies_return_valid_allocations(
        free_mask in prop::collection::vec(any::<bool>(), 16),
        need in 1u32..=8,
        policy in arb_policy(),
    ) {
        let free: Vec<NodeId> = free_mask
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let job = Job::new(
            JobId(1),
            0,
            JobClass::Balanced,
            need,
            100.0,
            600.0,
            Timestamp::ZERO,
        );
        let p = make_policy(policy);
        match p.select(&job, &free, &ctx(16)) {
            Some(picked) => {
                prop_assert!(free.len() >= need as usize);
                prop_assert_eq!(picked.len(), need as usize);
                let set: BTreeSet<NodeId> = picked.iter().copied().collect();
                prop_assert_eq!(set.len(), picked.len(), "duplicates");
                for n in &picked {
                    prop_assert!(free.contains(n));
                }
            }
            None => prop_assert!(free.len() < need as usize),
        }
    }
}
