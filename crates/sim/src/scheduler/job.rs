//! The job model: classes, resource profiles, lifecycle.
//!
//! A job's *class* determines the shape of its per-tick resource demands —
//! the signature that Applications-pillar diagnostics (fingerprinting,
//! pattern identification) learn to recognise, and the sensitivity that
//! couples job progress to hardware state (frequency for compute-bound
//! work, network contention for I/O-bound work). Work is measured in
//! *node-seconds at nominal speed*; progress accrues faster or slower as the
//! assigned nodes run faster or slower, which is what makes DVFS a real
//! trade-off rather than a free win.

use crate::hardware::node::NodeId;
use oda_telemetry::reading::Timestamp;
use serde::{Deserialize, Serialize};

/// Identifier of a job (unique per simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Behavioural class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// CPU-limited: progress ∝ clock speed, high steady utilization.
    ComputeBound,
    /// Memory-bandwidth-limited: weakly frequency sensitive, oscillating
    /// utilization as it alternates compute and memory phases.
    MemoryBound,
    /// I/O / communication-limited: progress follows network contention,
    /// bursty traffic.
    IoBound,
    /// A mix of the above.
    Balanced,
    /// A cryptominer smuggled into the system: near-perfectly flat maximum
    /// utilization, negligible memory and network — the fingerprinting
    /// target of DeMasi et al. and Ates et al.
    Cryptominer,
}

impl JobClass {
    /// All classes, for iteration in tests and workload configs.
    pub const ALL: [JobClass; 5] = [
        JobClass::ComputeBound,
        JobClass::MemoryBound,
        JobClass::IoBound,
        JobClass::Balanced,
        JobClass::Cryptominer,
    ];

    /// Short stable label (used in telemetry and reports).
    pub fn label(self) -> &'static str {
        match self {
            JobClass::ComputeBound => "compute",
            JobClass::MemoryBound => "memory",
            JobClass::IoBound => "io",
            JobClass::Balanced => "balanced",
            JobClass::Cryptominer => "miner",
        }
    }

    /// Period of the class's phase oscillation, seconds.
    fn phase_period_s(self) -> f64 {
        match self {
            JobClass::ComputeBound => 600.0,
            JobClass::MemoryBound => 120.0,
            JobClass::IoBound => 180.0,
            JobClass::Balanced => 300.0,
            JobClass::Cryptominer => 1.0,
        }
    }

    /// CPU utilization demanded at phase position `x ∈ [0,1)`.
    pub fn cpu_util(self, x: f64) -> f64 {
        let s = (2.0 * std::f64::consts::PI * x).sin();
        match self {
            JobClass::ComputeBound => 0.92 + 0.04 * s,
            JobClass::MemoryBound => 0.60 + 0.18 * s,
            JobClass::IoBound => 0.38 + 0.22 * s,
            JobClass::Balanced => 0.75 + 0.10 * s,
            JobClass::Cryptominer => 0.99,
        }
    }

    /// Memory footprint per node, GiB, at phase position `x`.
    pub fn memory_gib(self, x: f64) -> f64 {
        match self {
            JobClass::ComputeBound => 24.0,
            JobClass::MemoryBound => 140.0 + 20.0 * (2.0 * std::f64::consts::PI * x).sin(),
            JobClass::IoBound => 48.0,
            JobClass::Balanced => 80.0,
            JobClass::Cryptominer => 2.0,
        }
    }

    /// Inter-rack network demand per node, GB/s, at phase position `x`.
    pub fn net_gbps(self, x: f64) -> f64 {
        match self {
            JobClass::ComputeBound => 0.3,
            JobClass::MemoryBound => 0.8,
            JobClass::IoBound => {
                // Bursty: heavy I/O for 30% of the phase.
                if (x % 1.0) < 0.3 {
                    8.0
                } else {
                    1.0
                }
            }
            JobClass::Balanced => 1.5,
            JobClass::Cryptominer => 0.01,
        }
    }

    /// Progress rate (fraction of nominal) given the mean compute speed of
    /// the assigned nodes and the network contention factor experienced.
    pub fn progress_rate(self, compute_speed: f64, net_factor: f64) -> f64 {
        match self {
            JobClass::ComputeBound => compute_speed,
            // Memory-bound work barely benefits from clock.
            JobClass::MemoryBound => 0.35 * compute_speed + 0.65,
            JobClass::IoBound => (0.25 * compute_speed + 0.15) + 0.6 * net_factor,
            JobClass::Balanced => 0.6 * compute_speed + 0.2 + 0.2 * net_factor,
            JobClass::Cryptominer => compute_speed,
        }
    }
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the scheduler queue.
    Queued,
    /// Executing on its assigned nodes.
    Running,
    /// Finished all its work.
    Completed,
    /// Terminated at its walltime limit with work remaining.
    Killed,
}

/// A user job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Unique id.
    pub id: JobId,
    /// Submitting user (small integer id).
    pub user: u32,
    /// Behavioural class (ground truth; analytics must infer it).
    pub class: JobClass,
    /// Number of (exclusive) nodes requested.
    pub nodes_requested: u32,
    /// Total work, node-seconds at nominal speed.
    pub work_node_seconds: f64,
    /// Work completed so far, node-seconds.
    pub progress_node_seconds: f64,
    /// User-declared walltime limit, seconds (typically an overestimate).
    pub requested_walltime_s: f64,
    /// Submission time.
    pub submit: Timestamp,
    /// Start time, once scheduled.
    pub start: Option<Timestamp>,
    /// End time, once terminal.
    pub end: Option<Timestamp>,
    /// Lifecycle state.
    pub state: JobState,
    /// Nodes allocated (empty until started).
    pub assigned: Vec<NodeId>,
}

impl Job {
    /// Creates a queued job.
    pub fn new(
        id: JobId,
        user: u32,
        class: JobClass,
        nodes_requested: u32,
        work_node_seconds: f64,
        requested_walltime_s: f64,
        submit: Timestamp,
    ) -> Self {
        Job {
            id,
            user,
            class,
            nodes_requested: nodes_requested.max(1),
            work_node_seconds: work_node_seconds.max(1.0),
            progress_node_seconds: 0.0,
            requested_walltime_s: requested_walltime_s.max(1.0),
            submit,
            start: None,
            end: None,
            state: JobState::Queued,
            assigned: Vec::new(),
        }
    }

    /// `true` once all work units are done.
    #[inline]
    pub fn is_work_complete(&self) -> bool {
        self.progress_node_seconds >= self.work_node_seconds
    }

    /// Phase position `[0,1)` at `elapsed_s` seconds of execution.
    pub fn phase_position(&self, elapsed_s: f64) -> f64 {
        let p = self.class.phase_period_s();
        (elapsed_s / p).fract()
    }

    /// Elapsed run time at `now`, seconds (0 if not started).
    pub fn elapsed_s(&self, now: Timestamp) -> f64 {
        self.start
            .map(|s| now.millis_since(s) as f64 / 1_000.0)
            .unwrap_or(0.0)
    }

    /// Wait time between submission and start, seconds.
    pub fn wait_s(&self) -> Option<f64> {
        self.start
            .map(|s| s.millis_since(self.submit) as f64 / 1_000.0)
    }

    /// Actual runtime, seconds, once terminal.
    pub fn runtime_s(&self) -> Option<f64> {
        match (self.start, self.end) {
            (Some(s), Some(e)) => Some(e.millis_since(s) as f64 / 1_000.0),
            _ => None,
        }
    }

    /// Bounded slowdown `max(1, (wait + run) / max(run, bound))`.
    pub fn bounded_slowdown(&self, bound_s: f64) -> Option<f64> {
        let wait = self.wait_s()?;
        let run = self.runtime_s()?;
        Some(((wait + run) / run.max(bound_s)).max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_profiles_are_in_range() {
        for class in JobClass::ALL {
            for i in 0..20 {
                let x = i as f64 / 20.0;
                let u = class.cpu_util(x);
                assert!((0.0..=1.0).contains(&u), "{class:?} util {u}");
                assert!(class.memory_gib(x) > 0.0);
                assert!(class.net_gbps(x) >= 0.0);
            }
        }
    }

    #[test]
    fn miner_is_flat_and_quiet() {
        let m = JobClass::Cryptominer;
        let utils: Vec<f64> = (0..10).map(|i| m.cpu_util(i as f64 / 10.0)).collect();
        assert!(utils.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        assert!(m.net_gbps(0.5) < 0.1);
        assert!(m.memory_gib(0.5) < 8.0);
    }

    #[test]
    fn compute_bound_is_frequency_sensitive_memory_bound_is_not() {
        let slow = 0.5;
        let cb = JobClass::ComputeBound;
        let mb = JobClass::MemoryBound;
        let cb_loss = 1.0 - cb.progress_rate(slow, 1.0) / cb.progress_rate(1.0, 1.0);
        let mb_loss = 1.0 - mb.progress_rate(slow, 1.0) / mb.progress_rate(1.0, 1.0);
        assert!(cb_loss > 0.45);
        assert!(mb_loss < 0.2, "memory-bound loss {mb_loss}");
    }

    #[test]
    fn io_bound_feels_contention() {
        let io = JobClass::IoBound;
        let free = io.progress_rate(1.0, 1.0);
        let congested = io.progress_rate(1.0, 0.3);
        assert!(congested < free * 0.7);
        // Compute-bound work does not care.
        let cb = JobClass::ComputeBound;
        assert_eq!(cb.progress_rate(1.0, 0.3), cb.progress_rate(1.0, 1.0));
    }

    #[test]
    fn lifecycle_metrics() {
        let mut j = Job::new(
            JobId(1),
            7,
            JobClass::Balanced,
            4,
            100.0,
            3_600.0,
            Timestamp::from_secs(10),
        );
        assert_eq!(j.wait_s(), None);
        j.start = Some(Timestamp::from_secs(110));
        j.end = Some(Timestamp::from_secs(710));
        assert_eq!(j.wait_s(), Some(100.0));
        assert_eq!(j.runtime_s(), Some(600.0));
        // slowdown = (100+600)/max(600,10) = 7/6
        assert!((j.bounded_slowdown(10.0).unwrap() - 700.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn constructor_clamps_degenerate_inputs() {
        let j = Job::new(JobId(1), 0, JobClass::IoBound, 0, 0.0, 0.0, Timestamp::ZERO);
        assert_eq!(j.nodes_requested, 1);
        assert!(j.work_node_seconds >= 1.0);
        assert!(j.requested_walltime_s >= 1.0);
    }

    #[test]
    fn phase_position_wraps() {
        let j = Job::new(
            JobId(1),
            0,
            JobClass::MemoryBound, // 120 s period
            1,
            100.0,
            1_000.0,
            Timestamp::ZERO,
        );
        assert!((j.phase_position(60.0) - 0.5).abs() < 1e-12);
        assert!((j.phase_position(180.0) - 0.5).abs() < 1e-12);
    }
}
