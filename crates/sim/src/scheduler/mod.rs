//! System-software pillar: the resource manager.
//!
//! [`job`] defines the job model (classes, resource profiles, lifecycle);
//! [`placement`] defines pluggable node-selection policies; [`Scheduler`]
//! implements FCFS with EASY backfilling, the canonical production policy
//! family that the surveyed scheduling simulators (AccaSim, Batsim, Alea)
//! model.

pub mod job;
pub mod placement;

use self::job::{Job, JobId, JobState};
use self::placement::{PlacementContext, PlacementPolicy};
use crate::hardware::node::NodeId;
use oda_telemetry::reading::Timestamp;
use std::collections::{BTreeMap, BTreeSet};

/// Scheduling statistics exposed to descriptive system-software ODA.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedulerStats {
    /// Jobs completed successfully since start.
    pub completed: u64,
    /// Jobs killed at their walltime limit.
    pub killed: u64,
    /// Jobs started via backfill rather than FCFS order.
    pub backfilled: u64,
    /// Sum of wait times (seconds) of started jobs.
    pub total_wait_s: f64,
    /// Sum of bounded slowdowns of finished jobs.
    pub total_bounded_slowdown: f64,
}

/// FCFS + EASY-backfill scheduler over exclusive-node allocations.
///
/// Jobs are held in an id-keyed map; the queue holds ids in submission
/// order. One job owns each node exclusively, the standard HPC allocation
/// model (and the one that makes per-node telemetry attributable to a single
/// application, which the Applications-pillar analytics rely on).
pub struct Scheduler {
    jobs: BTreeMap<JobId, Job>,
    queue: Vec<JobId>,
    running: BTreeSet<JobId>,
    free_nodes: BTreeSet<NodeId>,
    policy: Box<dyn PlacementPolicy>,
    stats: SchedulerStats,
    /// Bound used in the bounded-slowdown metric, seconds (Feitelson's
    /// canonical τ = 10 s avoids tiny jobs dominating the metric).
    pub slowdown_bound_s: f64,
}

impl Scheduler {
    /// Creates a scheduler managing `node_count` nodes with `policy`.
    pub fn new(node_count: usize, policy: Box<dyn PlacementPolicy>) -> Self {
        Scheduler {
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            running: BTreeSet::new(),
            free_nodes: (0..node_count as u32).map(NodeId).collect(),
            policy,
            stats: SchedulerStats::default(),
            slowdown_bound_s: 10.0,
        }
    }

    /// Replaces the placement policy (a prescriptive-ODA actuation).
    pub fn set_policy(&mut self, policy: Box<dyn PlacementPolicy>) {
        self.policy = policy;
    }

    /// Name of the active placement policy.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Submits a job (state must be `Queued`).
    pub fn submit(&mut self, job: Job) {
        debug_assert_eq!(job.state, JobState::Queued);
        let id = job.id;
        self.jobs.insert(id, job);
        self.queue.push(id);
    }

    /// Number of queued jobs.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of running jobs.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Ids of currently running jobs.
    pub fn running_ids(&self) -> Vec<JobId> {
        self.running.iter().copied().collect()
    }

    /// Fraction of nodes currently allocated.
    pub fn utilization(&self, node_count: usize) -> f64 {
        if node_count == 0 {
            return 0.0;
        }
        1.0 - self.free_nodes.len() as f64 / node_count as f64
    }

    /// Immutable access to a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Mutable access to a job (used by the data center to advance progress).
    pub fn job_mut(&mut self, id: JobId) -> Option<&mut Job> {
        self.jobs.get_mut(&id)
    }

    /// All jobs that have reached a terminal state, in completion order.
    pub fn finished_jobs(&self) -> Vec<&Job> {
        let mut v: Vec<&Job> = self
            .jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Completed | JobState::Killed))
            .collect();
        v.sort_by_key(|j| j.end);
        v
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Finishes jobs whose work is done or whose walltime expired, freeing
    /// their nodes. Returns the ids that terminated this call.
    pub fn reap(&mut self, now: Timestamp) -> Vec<JobId> {
        let mut done = Vec::new();
        for &id in &self.running {
            let job = &self.jobs[&id];
            let elapsed_s = now.millis_since(job.start.unwrap_or(now)) as f64 / 1_000.0;
            if job.is_work_complete() || elapsed_s >= job.requested_walltime_s {
                done.push(id);
            }
        }
        for id in &done {
            let job = self.jobs.get_mut(id).expect("running job must exist");
            let elapsed_s = now.millis_since(job.start.unwrap_or(now)) as f64 / 1_000.0;
            job.end = Some(now);
            if job.is_work_complete() {
                job.state = JobState::Completed;
                self.stats.completed += 1;
            } else {
                job.state = JobState::Killed;
                self.stats.killed += 1;
            }
            let wait_s = job
                .start
                .map(|s| s.millis_since(job.submit) as f64 / 1_000.0)
                .unwrap_or(0.0);
            let run_s = elapsed_s.max(1e-9);
            self.stats.total_bounded_slowdown +=
                ((wait_s + run_s) / run_s.max(self.slowdown_bound_s)).max(1.0);
            for n in &job.assigned {
                self.free_nodes.insert(*n);
            }
            self.running.remove(id);
        }
        done
    }

    /// Runs one scheduling pass (FCFS head + EASY backfill) and returns the
    /// ids started. `ctx` supplies the node information placement policies
    /// read.
    pub fn schedule(&mut self, now: Timestamp, ctx: &PlacementContext) -> Vec<JobId> {
        let mut started = Vec::new();
        // 1. Start jobs from the head of the queue while they fit.
        while let Some(&head) = self.queue.first() {
            let need = self.jobs[&head].nodes_requested as usize;
            if need <= self.free_nodes.len() {
                if let Some(nodes) = self.try_place(head, ctx) {
                    self.start_job(head, nodes, now);
                    self.queue.remove(0);
                    started.push(head);
                    continue;
                }
            }
            break;
        }
        // 2. EASY backfill: reserve the head's start, let later jobs jump the
        //    queue if they cannot delay it.
        if let Some(&head) = self.queue.first() {
            let head_need = self.jobs[&head].nodes_requested as usize;
            let shadow = self.shadow_time(now, head_need);
            // Nodes that will *not* be needed by the head at its reserved
            // start: free count minus what the head will take from the
            // then-free pool. Extra nodes = free now that remain beyond the
            // head's requirement at shadow time.
            let free_at_shadow = self.free_nodes.len() + self.released_by(shadow);
            let spare_now = self
                .free_nodes
                .len()
                .saturating_sub(head_need.saturating_sub(free_at_shadow - self.free_nodes.len()));
            let candidates: Vec<JobId> = self.queue.iter().skip(1).copied().collect();
            for id in candidates {
                let job = &self.jobs[&id];
                let need = job.nodes_requested as usize;
                if need > self.free_nodes.len() {
                    continue;
                }
                let ends_by = now + (job.requested_walltime_s * 1_000.0) as u64;
                let fits_before_shadow = ends_by <= shadow;
                let fits_in_spare = need <= spare_now;
                if fits_before_shadow || fits_in_spare {
                    if let Some(nodes) = self.try_place(id, ctx) {
                        self.start_job(id, nodes, now);
                        self.queue.retain(|&q| q != id);
                        self.stats.backfilled += 1;
                        started.push(id);
                    }
                }
            }
        }
        started
    }

    /// Earliest time at which `need` nodes will be simultaneously free,
    /// assuming running jobs end exactly at their requested walltime.
    fn shadow_time(&self, now: Timestamp, need: usize) -> Timestamp {
        if need <= self.free_nodes.len() {
            return now;
        }
        let mut releases: Vec<(Timestamp, usize)> = self
            .running
            .iter()
            .map(|id| {
                let j = &self.jobs[id];
                let end = j.start.unwrap_or(now) + (j.requested_walltime_s * 1_000.0) as u64;
                (end, j.assigned.len())
            })
            .collect();
        releases.sort_by_key(|&(t, _)| t);
        let mut avail = self.free_nodes.len();
        for (t, n) in releases {
            avail += n;
            if avail >= need {
                return t.max(now);
            }
        }
        Timestamp::MAX
    }

    /// Number of nodes released by running jobs at or before `t` (by their
    /// requested walltime).
    fn released_by(&self, t: Timestamp) -> usize {
        self.running
            .iter()
            .filter(|id| {
                let j = &self.jobs[id];
                j.start
                    .map(|s| s + (j.requested_walltime_s * 1_000.0) as u64 <= t)
                    .unwrap_or(false)
            })
            .map(|id| self.jobs[id].assigned.len())
            .sum()
    }

    fn try_place(&self, id: JobId, ctx: &PlacementContext) -> Option<Vec<NodeId>> {
        let job = &self.jobs[&id];
        let free: Vec<NodeId> = self.free_nodes.iter().copied().collect();
        let picked = self.policy.select(job, &free, ctx)?;
        debug_assert_eq!(picked.len(), job.nodes_requested as usize);
        debug_assert!(picked.iter().all(|n| self.free_nodes.contains(n)));
        Some(picked)
    }

    fn start_job(&mut self, id: JobId, nodes: Vec<NodeId>, now: Timestamp) {
        for n in &nodes {
            self.free_nodes.remove(n);
        }
        let job = self.jobs.get_mut(&id).expect("queued job must exist");
        job.assigned = nodes;
        job.start = Some(now);
        job.state = JobState::Running;
        self.stats.total_wait_s += now.millis_since(job.submit) as f64 / 1_000.0;
        self.running.insert(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::job::{Job, JobClass};
    use crate::scheduler::placement::FirstFit;

    fn ctx(nodes: usize) -> PlacementContext {
        PlacementContext {
            node_temps_c: vec![40.0; nodes],
            node_power_w: vec![100.0; nodes],
            rack_inlet_offsets_c: vec![0.0],
            nodes_per_rack: nodes.max(1),
        }
    }

    fn job(id: u64, nodes: u32, walltime_s: f64, submit: Timestamp) -> Job {
        let mut j = Job::new(
            JobId(id),
            1,
            JobClass::ComputeBound,
            nodes,
            1e12, // effectively never finishes by work
            walltime_s,
            submit,
        );
        j.work_node_seconds = walltime_s * nodes as f64 * 10.0; // far beyond walltime
        j
    }

    #[test]
    fn fcfs_starts_jobs_in_order_when_they_fit() {
        let mut s = Scheduler::new(4, Box::new(FirstFit));
        s.submit(job(1, 2, 100.0, Timestamp::ZERO));
        s.submit(job(2, 2, 100.0, Timestamp::ZERO));
        let started = s.schedule(Timestamp::from_secs(1), &ctx(4));
        assert_eq!(started, vec![JobId(1), JobId(2)]);
        assert_eq!(s.running_len(), 2);
        assert_eq!(s.utilization(4), 1.0);
    }

    #[test]
    fn head_blocks_until_nodes_free() {
        let mut s = Scheduler::new(4, Box::new(FirstFit));
        s.submit(job(1, 3, 100.0, Timestamp::ZERO));
        s.submit(job(2, 3, 100.0, Timestamp::ZERO));
        s.schedule(Timestamp::ZERO, &ctx(4));
        assert_eq!(s.running_len(), 1);
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn easy_backfill_lets_short_small_jobs_jump() {
        let mut s = Scheduler::new(4, Box::new(FirstFit));
        s.submit(job(1, 4, 1_000.0, Timestamp::ZERO)); // will run now
        s.schedule(Timestamp::ZERO, &ctx(4));
        // Head needs all 4 nodes → must wait for job 1 (ends t=1000s).
        s.submit(job(2, 4, 1_000.0, Timestamp::from_secs(1)));
        // Small short job: no free nodes at all → cannot backfill.
        s.submit(job(3, 1, 10.0, Timestamp::from_secs(1)));
        let started = s.schedule(Timestamp::from_secs(1), &ctx(4));
        assert!(started.is_empty());

        // Free one node early by reaping a completed 1-node job scenario:
        // instead simulate: job 1 on 3 nodes, head needs 4.
        let mut s = Scheduler::new(4, Box::new(FirstFit));
        s.submit(job(1, 3, 1_000.0, Timestamp::ZERO));
        s.schedule(Timestamp::ZERO, &ctx(4));
        s.submit(job(2, 4, 1_000.0, Timestamp::from_secs(1)));
        s.submit(job(3, 1, 10.0, Timestamp::from_secs(1))); // fits before shadow
        let started = s.schedule(Timestamp::from_secs(1), &ctx(4));
        assert_eq!(started, vec![JobId(3)]);
        assert_eq!(s.stats().backfilled, 1);
    }

    #[test]
    fn backfill_does_not_delay_head() {
        // 4 nodes; job1 holds 3 until t=1000; head needs 4.
        // A long 1-node job would end after the shadow time AND would eat
        // the node the head needs → must NOT start.
        let mut s = Scheduler::new(4, Box::new(FirstFit));
        s.submit(job(1, 3, 1_000.0, Timestamp::ZERO));
        s.schedule(Timestamp::ZERO, &ctx(4));
        s.submit(job(2, 4, 1_000.0, Timestamp::from_secs(1)));
        s.submit(job(3, 1, 5_000.0, Timestamp::from_secs(1)));
        let started = s.schedule(Timestamp::from_secs(1), &ctx(4));
        assert!(started.is_empty(), "long job would delay the reserved head");
    }

    #[test]
    fn reap_kills_at_walltime_and_frees_nodes() {
        let mut s = Scheduler::new(2, Box::new(FirstFit));
        s.submit(job(1, 2, 100.0, Timestamp::ZERO));
        s.schedule(Timestamp::ZERO, &ctx(2));
        assert!(s.reap(Timestamp::from_secs(50)).is_empty());
        let done = s.reap(Timestamp::from_secs(100));
        assert_eq!(done, vec![JobId(1)]);
        assert_eq!(s.job(JobId(1)).unwrap().state, JobState::Killed);
        assert_eq!(s.stats().killed, 1);
        assert_eq!(s.utilization(2), 0.0);
    }

    #[test]
    fn reap_completes_when_work_done() {
        let mut s = Scheduler::new(1, Box::new(FirstFit));
        let mut j = job(1, 1, 1_000.0, Timestamp::ZERO);
        j.work_node_seconds = 10.0;
        s.submit(j);
        s.schedule(Timestamp::ZERO, &ctx(1));
        s.job_mut(JobId(1)).unwrap().progress_node_seconds = 10.0;
        let done = s.reap(Timestamp::from_secs(30));
        assert_eq!(done.len(), 1);
        assert_eq!(s.job(JobId(1)).unwrap().state, JobState::Completed);
        assert_eq!(s.stats().completed, 1);
    }

    #[test]
    fn slowdown_accounting_uses_bound() {
        let mut s = Scheduler::new(1, Box::new(FirstFit));
        let mut j = job(1, 1, 1_000.0, Timestamp::ZERO);
        j.work_node_seconds = 5.0;
        s.submit(j);
        // Starts after waiting 100 s.
        s.schedule(Timestamp::from_secs(100), &ctx(1));
        s.job_mut(JobId(1)).unwrap().progress_node_seconds = 5.0;
        s.reap(Timestamp::from_secs(105));
        // run = 5 s (< bound 10), so slowdown = (100+5)/10 = 10.5
        assert!((s.stats().total_bounded_slowdown - 10.5).abs() < 1e-6);
        assert!((s.stats().total_wait_s - 100.0).abs() < 1e-9);
    }
}
