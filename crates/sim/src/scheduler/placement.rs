//! Pluggable node-selection policies.
//!
//! Placement is the actuation point of prescriptive System-Software ODA:
//! the surveyed works (Verma et al.'s power-aware placement, Bash & Forman's
//! "cool job allocation") differ from a vanilla scheduler exactly here, in
//! *which* free nodes a job receives. The [`PlacementPolicy`] trait lets the
//! framework swap policies at runtime — and the multi-pillar experiment
//! (E6) swaps in [`CoolingAware`], which reads Building-Infrastructure
//! telemetry to make a System-Software decision, crossing pillar boundaries
//! exactly as §V-B describes.

use super::job::Job;
use crate::hardware::node::NodeId;
use crate::hardware::rack::rack_of;

/// Read-only node/rack state offered to policies at scheduling time.
///
/// The context is a *copy* of the relevant telemetry, not a live reference:
/// real ODA-driven schedulers consume monitoring snapshots, and the copy
/// keeps the scheduler decoupled from the hardware model's ownership.
#[derive(Debug, Clone)]
pub struct PlacementContext {
    /// Current temperature of every node, °C, indexed by node id.
    pub node_temps_c: Vec<f64>,
    /// Current power of every node, W, indexed by node id.
    pub node_power_w: Vec<f64>,
    /// Inlet temperature offset of each rack, °C.
    pub rack_inlet_offsets_c: Vec<f64>,
    /// Nodes per rack (rack-major dense numbering).
    pub nodes_per_rack: usize,
}

impl PlacementContext {
    /// The rack-layout cooling penalty of a node, °C.
    pub fn node_cooling_penalty(&self, n: NodeId) -> f64 {
        let r = rack_of(n, self.nodes_per_rack);
        self.rack_inlet_offsets_c
            .get(r.index())
            .copied()
            .unwrap_or(0.0)
    }
}

/// A node-selection policy.
pub trait PlacementPolicy: Send {
    /// Stable policy name (telemetry label).
    fn name(&self) -> &'static str;

    /// Chooses exactly `job.nodes_requested` nodes from `free`, or `None` if
    /// the policy declines (insufficient nodes). Implementations must only
    /// return ids drawn from `free`.
    fn select(&self, job: &Job, free: &[NodeId], ctx: &PlacementContext) -> Option<Vec<NodeId>>;
}

/// Takes the lowest-numbered free nodes. The baseline every experiment
/// compares against.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn select(&self, job: &Job, free: &[NodeId], _ctx: &PlacementContext) -> Option<Vec<NodeId>> {
        let need = job.nodes_requested as usize;
        (free.len() >= need).then(|| free[..need].to_vec())
    }
}

/// Prefers the *coolest* eligible nodes: sorts free nodes by current
/// temperature plus their rack's layout penalty. Placing heat where cooling
/// is cheap reduces leakage and fan power — the cross-pillar policy of E6.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoolingAware;

impl PlacementPolicy for CoolingAware {
    fn name(&self) -> &'static str {
        "cooling-aware"
    }

    fn select(&self, job: &Job, free: &[NodeId], ctx: &PlacementContext) -> Option<Vec<NodeId>> {
        let need = job.nodes_requested as usize;
        if free.len() < need {
            return None;
        }
        let mut scored: Vec<(f64, NodeId)> = free
            .iter()
            .map(|&n| {
                let temp = ctx.node_temps_c.get(n.index()).copied().unwrap_or(0.0);
                (temp + 2.0 * ctx.node_cooling_penalty(n), n)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Some(scored.into_iter().take(need).map(|(_, n)| n).collect())
    }
}

/// Packs jobs into as few racks as possible (minimising inter-rack traffic
/// and keeping whole racks idle for power management). Ties broken towards
/// fuller racks, then lower ids.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackRacks;

impl PlacementPolicy for PackRacks {
    fn name(&self) -> &'static str {
        "pack-racks"
    }

    fn select(&self, job: &Job, free: &[NodeId], ctx: &PlacementContext) -> Option<Vec<NodeId>> {
        let need = job.nodes_requested as usize;
        if free.len() < need {
            return None;
        }
        // Group free nodes per rack, sort racks by descending free count so
        // the job spans as few racks as possible while preferring racks that
        // can be filled.
        let mut per_rack: std::collections::BTreeMap<u32, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for &n in free {
            per_rack
                .entry(rack_of(n, ctx.nodes_per_rack).0)
                .or_default()
                .push(n);
        }
        let mut racks: Vec<(u32, Vec<NodeId>)> = per_rack.into_iter().collect();
        racks.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let mut picked = Vec::with_capacity(need);
        for (_, nodes) in racks {
            for n in nodes {
                if picked.len() == need {
                    break;
                }
                picked.push(n);
            }
            if picked.len() == need {
                break;
            }
        }
        Some(picked)
    }
}

/// Prefers nodes whose current power draw is lowest — a proxy for "place
/// work where headroom under a power cap is largest" (Verma et al.).
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerAware;

impl PlacementPolicy for PowerAware {
    fn name(&self) -> &'static str {
        "power-aware"
    }

    fn select(&self, job: &Job, free: &[NodeId], ctx: &PlacementContext) -> Option<Vec<NodeId>> {
        let need = job.nodes_requested as usize;
        if free.len() < need {
            return None;
        }
        let mut scored: Vec<(f64, NodeId)> = free
            .iter()
            .map(|&n| (ctx.node_power_w.get(n.index()).copied().unwrap_or(0.0), n))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Some(scored.into_iter().take(need).map(|(_, n)| n).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::job::{JobClass, JobId};
    use oda_telemetry::reading::Timestamp;

    fn job(nodes: u32) -> Job {
        Job::new(
            JobId(1),
            0,
            JobClass::Balanced,
            nodes,
            100.0,
            600.0,
            Timestamp::ZERO,
        )
    }

    fn ctx() -> PlacementContext {
        PlacementContext {
            // 4 nodes, 2 racks of 2. Node temps: node1 hottest.
            node_temps_c: vec![40.0, 70.0, 45.0, 42.0],
            node_power_w: vec![300.0, 120.0, 250.0, 180.0],
            rack_inlet_offsets_c: vec![0.0, 3.0],
            nodes_per_rack: 2,
        }
    }

    fn free_all() -> Vec<NodeId> {
        (0..4).map(NodeId).collect()
    }

    #[test]
    fn first_fit_takes_prefix() {
        let p = FirstFit;
        let got = p.select(&job(2), &free_all(), &ctx()).unwrap();
        assert_eq!(got, vec![NodeId(0), NodeId(1)]);
        assert!(p.select(&job(5), &free_all(), &ctx()).is_none());
    }

    #[test]
    fn cooling_aware_picks_coolest_adjusted_nodes() {
        let p = CoolingAware;
        // Scores: n0=40, n1=70, n2=45+6=51, n3=42+6=48 → pick n0 then n3.
        let got = p.select(&job(2), &free_all(), &ctx()).unwrap();
        assert_eq!(got, vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn power_aware_picks_lowest_draw() {
        let p = PowerAware;
        let got = p.select(&job(2), &free_all(), &ctx()).unwrap();
        assert_eq!(got, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn pack_racks_minimises_span() {
        let p = PackRacks;
        // Free: n0 (rack0), n2, n3 (rack1). A 2-node job should land fully
        // in rack 1 (2 free nodes) rather than span racks.
        let free = vec![NodeId(0), NodeId(2), NodeId(3)];
        let got = p.select(&job(2), &free, &ctx()).unwrap();
        assert_eq!(got, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn all_policies_return_exact_count_from_free() {
        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(FirstFit),
            Box::new(CoolingAware),
            Box::new(PackRacks),
            Box::new(PowerAware),
        ];
        let free = free_all();
        for p in &policies {
            let got = p.select(&job(3), &free, &ctx()).unwrap();
            assert_eq!(got.len(), 3, "{}", p.name());
            for n in &got {
                assert!(free.contains(n), "{} returned non-free node", p.name());
            }
            // No duplicates.
            let mut uniq = got.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3);
        }
    }
}
