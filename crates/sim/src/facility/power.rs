//! Power-distribution model: utility feed → UPS → PDUs → racks.
//!
//! Distribution is lossy at every stage; the losses are what separate total
//! facility power from IT power and therefore what the PUE measures (after
//! the cooling plant). UPS efficiency follows the usual load-dependent curve:
//! poor at low load, peaking in the 60–90% band — so oversized facilities
//! running empty show the inflated PUE operators know well.

use serde::{Deserialize, Serialize};

/// Static parameters of the distribution chain.
#[derive(Debug, Clone)]
pub struct PowerConfig {
    /// UPS efficiency at (or above) its optimal load point.
    pub ups_peak_efficiency: f64,
    /// UPS efficiency as load fraction approaches zero.
    pub ups_min_efficiency: f64,
    /// Load fraction at which peak efficiency is reached.
    pub ups_knee_fraction: f64,
    /// Rated UPS capacity, kW.
    pub ups_capacity_kw: f64,
    /// PDU + cabling resistive loss as a fraction of delivered power.
    pub pdu_loss_fraction: f64,
    /// Constant facility overhead (lighting, offices, security), kW.
    pub fixed_overhead_kw: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            ups_peak_efficiency: 0.97,
            ups_min_efficiency: 0.80,
            ups_knee_fraction: 0.5,
            ups_capacity_kw: 2_000.0,
            pdu_loss_fraction: 0.02,
            fixed_overhead_kw: 20.0,
        }
    }
}

/// Per-tick distribution accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerOutput {
    /// Power drawn from the utility, kW (IT + cooling + losses + overhead).
    pub utility_kw: f64,
    /// Losses in UPS + PDU stages, kW.
    pub distribution_loss_kw: f64,
    /// UPS efficiency this tick.
    pub ups_efficiency: f64,
}

/// The distribution chain.
#[derive(Debug, Clone)]
pub struct PowerDistribution {
    config: PowerConfig,
}

impl PowerDistribution {
    /// Creates the chain.
    pub fn new(config: PowerConfig) -> Self {
        PowerDistribution { config }
    }

    /// UPS efficiency at a given load fraction (0..).
    pub fn ups_efficiency(&self, load_fraction: f64) -> f64 {
        let f = load_fraction.max(0.0);
        let c = &self.config;
        if f >= c.ups_knee_fraction {
            c.ups_peak_efficiency
        } else {
            // Linear ramp from min efficiency at zero load to peak at knee.
            let t = f / c.ups_knee_fraction;
            c.ups_min_efficiency + t * (c.ups_peak_efficiency - c.ups_min_efficiency)
        }
    }

    /// Computes utility draw given IT load and cooling-plant load (both kW).
    ///
    /// IT power passes through UPS + PDU; cooling and overhead are fed
    /// directly (the common topology — mechanical load is not on UPS).
    pub fn step(&self, it_kw: f64, cooling_kw: f64) -> PowerOutput {
        let it = it_kw.max(0.0);
        let pdu_in = it * (1.0 + self.config.pdu_loss_fraction);
        let load_fraction = pdu_in / self.config.ups_capacity_kw;
        let eff = self.ups_efficiency(load_fraction);
        let ups_in = pdu_in / eff;
        let utility = ups_in + cooling_kw.max(0.0) + self.config.fixed_overhead_kw;
        PowerOutput {
            utility_kw: utility,
            distribution_loss_kw: ups_in - it,
            ups_efficiency: eff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_exceeds_it_plus_cooling() {
        let p = PowerDistribution::new(PowerConfig::default());
        let out = p.step(1_000.0, 100.0);
        assert!(out.utility_kw > 1_100.0);
        assert!(out.distribution_loss_kw > 0.0);
    }

    #[test]
    fn ups_efficiency_curve_shape() {
        let p = PowerDistribution::new(PowerConfig::default());
        assert!(p.ups_efficiency(0.0) < p.ups_efficiency(0.25));
        assert!(p.ups_efficiency(0.25) < p.ups_efficiency(0.5));
        assert_eq!(p.ups_efficiency(0.5), 0.97);
        assert_eq!(p.ups_efficiency(0.9), 0.97);
    }

    #[test]
    fn low_load_is_relatively_less_efficient() {
        let p = PowerDistribution::new(PowerConfig::default());
        let low = p.step(50.0, 0.0);
        let high = p.step(1_500.0, 0.0);
        let low_overhead_ratio = low.utility_kw / 50.0;
        let high_overhead_ratio = high.utility_kw / 1_500.0;
        assert!(low_overhead_ratio > high_overhead_ratio);
    }

    #[test]
    fn zero_it_load_still_draws_overhead() {
        let p = PowerDistribution::new(PowerConfig::default());
        let out = p.step(0.0, 0.0);
        assert_eq!(out.utility_kw, 20.0);
        assert_eq!(out.distribution_loss_kw, 0.0);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let p = PowerDistribution::new(PowerConfig::default());
        let out = p.step(-5.0, -10.0);
        assert_eq!(out.utility_kw, 20.0);
    }
}
