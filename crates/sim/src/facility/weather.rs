//! Outside-air temperature model.
//!
//! A deterministic diurnal + seasonal sinusoid with autocorrelated noise —
//! enough structure for cooling economics (free cooling is viable at night
//! and in winter) and for forecasting experiments (Holt–Winters should find
//! the daily period).

use crate::engine::SimRng;
use oda_telemetry::reading::Timestamp;

/// Parameters of the synthetic climate.
#[derive(Debug, Clone)]
pub struct WeatherConfig {
    /// Annual mean outside temperature, °C.
    pub mean_c: f64,
    /// Half peak-to-peak amplitude of the daily cycle, °C.
    pub diurnal_amplitude_c: f64,
    /// Half peak-to-peak amplitude of the seasonal cycle, °C.
    pub seasonal_amplitude_c: f64,
    /// Standard deviation of the AR(1) noise component, °C.
    pub noise_std_c: f64,
    /// AR(1) coefficient of the noise (0 = white, →1 = slow drift).
    pub noise_persistence: f64,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        WeatherConfig {
            mean_c: 12.0,
            diurnal_amplitude_c: 6.0,
            seasonal_amplitude_c: 10.0,
            noise_std_c: 0.8,
            noise_persistence: 0.95,
        }
    }
}

/// Stateful weather generator.
pub struct Weather {
    config: WeatherConfig,
    noise: f64,
    current_c: f64,
}

impl Weather {
    /// Hours in a simulated day.
    pub const DAY_HOURS: f64 = 24.0;
    /// Hours in a simulated year.
    pub const YEAR_HOURS: f64 = 24.0 * 365.0;

    /// Creates the generator.
    pub fn new(config: WeatherConfig) -> Self {
        let current_c = config.mean_c;
        Weather {
            config,
            noise: 0.0,
            current_c,
        }
    }

    /// The deterministic (noise-free) component at time `t`.
    pub fn deterministic_c(&self, t: Timestamp) -> f64 {
        let h = t.as_hours_f64();
        let diurnal = self.config.diurnal_amplitude_c
            * (2.0 * std::f64::consts::PI * (h - 15.0) / Self::DAY_HOURS).cos();
        let seasonal = self.config.seasonal_amplitude_c
            * (2.0 * std::f64::consts::PI * (h - Self::YEAR_HOURS / 2.0) / Self::YEAR_HOURS).cos();
        self.config.mean_c + diurnal + seasonal
    }

    /// Advances the noise state and returns the temperature at `t`.
    pub fn step(&mut self, t: Timestamp, rng: &mut SimRng) -> f64 {
        let p = self.config.noise_persistence.clamp(0.0, 0.999);
        // Innovation variance chosen so the stationary std is `noise_std_c`.
        let innov = self.config.noise_std_c * (1.0 - p * p).sqrt();
        self.noise = p * self.noise + rng.normal(0.0, innov);
        self.current_c = self.deterministic_c(t) + self.noise;
        self.current_c
    }

    /// Most recently generated temperature.
    pub fn current_c(&self) -> f64 {
        self.current_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_component_has_daily_cycle() {
        let w = Weather::new(WeatherConfig {
            seasonal_amplitude_c: 0.0,
            ..WeatherConfig::default()
        });
        let afternoon = w.deterministic_c(Timestamp::from_hours(15));
        let night = w.deterministic_c(Timestamp::from_hours(3));
        assert!(afternoon > night, "{afternoon} vs {night}");
        assert!((afternoon - (12.0 + 6.0)).abs() < 1e-9);
        assert!((night - (12.0 - 6.0)).abs() < 1e-9);
    }

    #[test]
    fn noise_is_bounded_in_distribution() {
        let mut w = Weather::new(WeatherConfig::default());
        let mut rng = SimRng::new(1);
        let mut max_dev: f64 = 0.0;
        for h in 0..5_000u64 {
            let t = Timestamp::from_hours(h);
            let v = w.step(t, &mut rng);
            max_dev = max_dev.max((v - w.deterministic_c(t)).abs());
        }
        // 5σ bound for a stationary AR(1) with σ = 0.8.
        assert!(max_dev < 5.0 * 0.8, "max deviation {max_dev}");
    }

    #[test]
    fn same_seed_reproduces_series() {
        let cfg = WeatherConfig::default();
        let run = |seed| {
            let mut w = Weather::new(cfg.clone());
            let mut rng = SimRng::new(seed);
            (0..100u64)
                .map(|h| w.step(Timestamp::from_hours(h), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
