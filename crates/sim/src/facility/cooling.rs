//! Cooling-plant model: a warm-water loop served by either dry coolers
//! ("free cooling") or a mechanical chiller, with the **inlet water
//! temperature setpoint** and **cooling mode** as the prescriptive knobs.
//!
//! The economics implemented here reproduce the trade-offs the surveyed
//! infrastructure ODA works exploit (Conficoni et al. DATE'15, Jiang et al.
//! ISCA'19):
//!
//! * Free cooling consumes only pump + dry-cooler fan power, but can only
//!   reach an inlet temperature a few degrees above outside air; it is
//!   infeasible on hot days for low setpoints.
//! * The chiller can always reach the setpoint but pays compressor power
//!   with a COP that degrades as the lift (outside temperature minus water
//!   temperature) grows.
//! * Raising the inlet setpoint makes free cooling viable more often and
//!   improves chiller COP, but raises node temperatures, which increases
//!   leakage power and fan power on the IT side — giving the optimizer a
//!   genuine non-trivial optimum.

use serde::{Deserialize, Serialize};

/// Which plant serves the loop this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoolingMode {
    /// Dry coolers only (cheap; limited by outside temperature).
    FreeCooling,
    /// Mechanical chiller (always feasible; expensive).
    Chiller,
    /// Controller picks per tick: free cooling when feasible, else chiller.
    Auto,
}

/// Static parameters of the cooling plant.
#[derive(Debug, Clone)]
pub struct CoolingConfig {
    /// Minimum achievable approach of the dry coolers: inlet water cannot be
    /// cooled below `outside + approach` in free-cooling mode. °C.
    pub free_cooling_approach_c: f64,
    /// Pump power as a fraction of transported heat (per unit flow).
    pub pump_power_fraction: f64,
    /// Dry-cooler fan power as a fraction of rejected heat.
    pub dry_cooler_fan_fraction: f64,
    /// Carnot efficiency factor of the chiller (real COP = factor × Carnot).
    pub chiller_carnot_factor: f64,
    /// Upper bound on chiller COP (very small lifts).
    pub chiller_max_cop: f64,
    /// Allowed setpoint range for the inlet water temperature, °C.
    pub setpoint_range_c: (f64, f64),
}

impl Default for CoolingConfig {
    fn default() -> Self {
        CoolingConfig {
            free_cooling_approach_c: 4.0,
            pump_power_fraction: 0.015,
            dry_cooler_fan_fraction: 0.02,
            chiller_carnot_factor: 0.45,
            chiller_max_cop: 8.0,
            setpoint_range_c: (18.0, 45.0),
        }
    }
}

/// Per-tick cooling result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingOutput {
    /// Electrical power drawn by the plant, kW.
    pub power_kw: f64,
    /// Water temperature actually delivered to the IT loop, °C.
    pub delivered_inlet_c: f64,
    /// Mode actually used this tick (resolves `Auto`).
    pub active_mode: CoolingMode,
    /// Chiller coefficient of performance this tick (0 in free cooling).
    pub chiller_cop: f64,
}

/// The cooling plant with its two knobs.
#[derive(Debug, Clone)]
pub struct CoolingPlant {
    config: CoolingConfig,
    /// Operator/ODA-set inlet water temperature target, °C.
    setpoint_c: f64,
    /// Operator/ODA-set mode.
    mode: CoolingMode,
    /// Degradation factor ≥ 1 multiplying plant power (fault injection:
    /// fouled heat exchangers, failing pumps).
    degradation: f64,
}

impl CoolingPlant {
    /// Creates the plant with a given initial setpoint, in `Auto` mode.
    pub fn new(config: CoolingConfig, setpoint_c: f64) -> Self {
        let sp = setpoint_c.clamp(config.setpoint_range_c.0, config.setpoint_range_c.1);
        CoolingPlant {
            config,
            setpoint_c: sp,
            mode: CoolingMode::Auto,
            degradation: 1.0,
        }
    }

    /// Current setpoint, °C.
    pub fn setpoint_c(&self) -> f64 {
        self.setpoint_c
    }

    /// Sets the inlet-temperature setpoint (clamped to the legal range).
    /// This is the knob prescriptive infrastructure ODA turns.
    pub fn set_setpoint_c(&mut self, sp: f64) {
        self.setpoint_c = sp.clamp(
            self.config.setpoint_range_c.0,
            self.config.setpoint_range_c.1,
        );
    }

    /// Current configured mode.
    pub fn mode(&self) -> CoolingMode {
        self.mode
    }

    /// Sets the cooling mode knob.
    pub fn set_mode(&mut self, mode: CoolingMode) {
        self.mode = mode;
    }

    /// Sets the fault-injection degradation factor (≥ 1).
    pub fn set_degradation(&mut self, factor: f64) {
        self.degradation = factor.max(1.0);
    }

    /// Current degradation factor.
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    /// Whether free cooling can reach the current setpoint at `outside_c`.
    pub fn free_cooling_feasible(&self, outside_c: f64) -> bool {
        outside_c + self.config.free_cooling_approach_c <= self.setpoint_c
    }

    /// Computes plant power to remove `it_heat_kw` of heat with outside air
    /// at `outside_c`.
    pub fn step(&self, it_heat_kw: f64, outside_c: f64) -> CoolingOutput {
        let heat = it_heat_kw.max(0.0);
        let pump_kw = heat * self.config.pump_power_fraction;
        let use_free = match self.mode {
            CoolingMode::FreeCooling => true,
            CoolingMode::Chiller => false,
            CoolingMode::Auto => self.free_cooling_feasible(outside_c),
        };
        if use_free {
            // Free cooling cannot deliver below outside + approach; in forced
            // FreeCooling mode on a hot day the loop simply runs warmer than
            // the setpoint (the realistic failure mode).
            let delivered = self
                .setpoint_c
                .max(outside_c + self.config.free_cooling_approach_c);
            let fan_kw = heat * self.config.dry_cooler_fan_fraction;
            CoolingOutput {
                power_kw: (pump_kw + fan_kw) * self.degradation,
                delivered_inlet_c: delivered,
                active_mode: CoolingMode::FreeCooling,
                chiller_cop: 0.0,
            }
        } else {
            // Chiller: COP from a Carnot bound on the lift between the
            // condenser (outside + approach) and the evaporator (setpoint).
            let t_cold_k = self.setpoint_c + 273.15;
            let lift = (outside_c + self.config.free_cooling_approach_c - self.setpoint_c).max(1.0);
            let cop = (self.config.chiller_carnot_factor * t_cold_k / lift)
                .min(self.config.chiller_max_cop);
            let compressor_kw = heat / cop;
            CoolingOutput {
                power_kw: (pump_kw + compressor_kw) * self.degradation,
                delivered_inlet_c: self.setpoint_c,
                active_mode: CoolingMode::Chiller,
                chiller_cop: cop,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plant(sp: f64) -> CoolingPlant {
        CoolingPlant::new(CoolingConfig::default(), sp)
    }

    #[test]
    fn auto_uses_free_cooling_on_cold_days() {
        let p = plant(30.0);
        let out = p.step(500.0, 10.0);
        assert_eq!(out.active_mode, CoolingMode::FreeCooling);
        assert!(
            out.power_kw < 30.0,
            "free cooling should be cheap: {}",
            out.power_kw
        );
        assert_eq!(out.delivered_inlet_c, 30.0);
    }

    #[test]
    fn auto_falls_back_to_chiller_on_hot_days() {
        let p = plant(25.0);
        let out = p.step(500.0, 35.0);
        assert_eq!(out.active_mode, CoolingMode::Chiller);
        assert!(out.chiller_cop > 1.0);
        assert!(
            out.power_kw > 30.0,
            "chiller should cost more: {}",
            out.power_kw
        );
    }

    #[test]
    fn higher_setpoint_is_cheaper_on_chiller() {
        let mut p = plant(20.0);
        p.set_mode(CoolingMode::Chiller);
        let cold = p.step(500.0, 40.0);
        p.set_setpoint_c(35.0);
        let warm = p.step(500.0, 40.0);
        assert!(warm.power_kw < cold.power_kw);
        assert!(warm.chiller_cop > cold.chiller_cop);
    }

    #[test]
    fn forced_free_cooling_on_hot_day_runs_warm() {
        let mut p = plant(20.0);
        p.set_mode(CoolingMode::FreeCooling);
        let out = p.step(500.0, 35.0);
        assert_eq!(out.active_mode, CoolingMode::FreeCooling);
        assert!(out.delivered_inlet_c > 20.0, "loop must run above setpoint");
        assert!((out.delivered_inlet_c - 39.0).abs() < 1e-9);
    }

    #[test]
    fn setpoint_is_clamped_to_legal_range() {
        let mut p = plant(20.0);
        p.set_setpoint_c(100.0);
        assert_eq!(p.setpoint_c(), 45.0);
        p.set_setpoint_c(-10.0);
        assert_eq!(p.setpoint_c(), 18.0);
    }

    #[test]
    fn degradation_scales_power() {
        let mut p = plant(30.0);
        let base = p.step(500.0, 10.0).power_kw;
        p.set_degradation(1.5);
        let degraded = p.step(500.0, 10.0).power_kw;
        assert!((degraded - base * 1.5).abs() < 1e-9);
        // Degradation below 1 is not allowed.
        p.set_degradation(0.5);
        assert_eq!(p.degradation(), 1.0);
    }

    #[test]
    fn zero_heat_zero_power() {
        let p = plant(30.0);
        let out = p.step(0.0, 10.0);
        assert_eq!(out.power_kw, 0.0);
    }

    #[test]
    fn cop_capped_at_max() {
        let mut p = plant(45.0);
        p.set_mode(CoolingMode::Chiller);
        // Tiny lift → COP would explode without the cap.
        let out = p.step(100.0, 20.0);
        assert!(out.chiller_cop <= 8.0);
    }
}
