//! Building-infrastructure pillar of the simulated site: weather, the
//! cooling plant, and the power-distribution tree.

pub mod cooling;
pub mod power;
pub mod weather;
