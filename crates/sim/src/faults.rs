//! Fault and anomaly injection — the ground truth for diagnostic ODA.
//!
//! Every diagnostic experiment needs labelled anomalies: the injector
//! activates a fault at its start time, the simulation's models express its
//! symptoms in ordinary telemetry (a fan failure shows up as rising
//! temperature and throttling, never as a "fault bit"), and the detector
//! under test is scored against the injection schedule. Fault kinds cover
//! all four pillars, matching the anomaly families in the surveyed
//! diagnostic works (Tuncer et al.'s performance variations, Borghesi
//! et al.'s node anomalies, NREL's AI-ops infrastructure faults).

use crate::engine::SimRng;
use crate::hardware::node::NodeId;
use crate::hardware::rack::RackId;
use oda_telemetry::pattern::SensorPattern;
use oda_telemetry::reading::{Reading, Timestamp};
use oda_telemetry::sensor::{SensorId, SensorRegistry};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A node's fan fails: thermal resistance spikes, node heats and
    /// throttles under load. (System Hardware)
    FanFailure {
        /// Affected node.
        node: NodeId,
    },
    /// Gradual thermal degradation (dust, degraded TIM): `factor` ≥ 1
    /// multiplies the node's thermal resistance. (System Hardware)
    ThermalDegradation {
        /// Affected node.
        node: NodeId,
        /// Thermal-resistance multiplier, ≥ 1.
        factor: f64,
    },
    /// A memory leak on a node: memory use grows linearly until it saturates
    /// the node, degrading job progress (swap thrash). (System Software)
    MemoryLeak {
        /// Affected node.
        node: NodeId,
        /// Leak rate, GiB per minute.
        gib_per_min: f64,
    },
    /// An orphaned/rogue process steals CPU: the victim node loses
    /// `severity` of its compute speed and shows inflated utilization.
    /// (System Software)
    CpuContention {
        /// Affected node.
        node: NodeId,
        /// Fraction of compute stolen, 0..=1.
        severity: f64,
    },
    /// External traffic floods a rack uplink. (System Hardware / network)
    NetworkHog {
        /// Rack whose uplink is flooded.
        rack: RackId,
        /// Injected demand, GB/s.
        demand_gbps: f64,
    },
    /// Cooling-plant degradation (fouled heat exchanger, failing pump):
    /// plant power multiplied by `factor`. (Building Infrastructure)
    CoolingDegradation {
        /// Plant power multiplier, ≥ 1.
        factor: f64,
    },
}

impl FaultKind {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::FanFailure { .. } => "fan-failure",
            FaultKind::ThermalDegradation { .. } => "thermal-degradation",
            FaultKind::MemoryLeak { .. } => "memory-leak",
            FaultKind::CpuContention { .. } => "cpu-contention",
            FaultKind::NetworkHog { .. } => "network-hog",
            FaultKind::CoolingDegradation { .. } => "cooling-degradation",
        }
    }

    /// The node the fault affects, if it is node-scoped.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            FaultKind::FanFailure { node }
            | FaultKind::ThermalDegradation { node, .. }
            | FaultKind::MemoryLeak { node, .. }
            | FaultKind::CpuContention { node, .. } => Some(node),
            _ => None,
        }
    }
}

/// A scheduled fault: active during `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// Activation time.
    pub start: Timestamp,
    /// Deactivation time (exclusive).
    pub end: Timestamp,
}

impl Fault {
    /// Creates a fault active during `[start, end)`.
    pub fn new(kind: FaultKind, start: Timestamp, end: Timestamp) -> Self {
        Fault { kind, start, end }
    }

    /// Whether the fault is active at `t`.
    #[inline]
    pub fn active_at(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }
}

/// Holds the fault schedule and reports activations/deactivations.
#[derive(Debug, Default)]
pub struct FaultInjector {
    schedule: Vec<Fault>,
    active: Vec<bool>,
}

impl FaultInjector {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault to the schedule.
    pub fn inject(&mut self, fault: Fault) {
        self.schedule.push(fault);
        self.active.push(false);
    }

    /// The full schedule (ground truth for scoring detectors).
    pub fn schedule(&self) -> &[Fault] {
        &self.schedule
    }

    /// Faults active at `t`.
    pub fn active_at(&self, t: Timestamp) -> Vec<Fault> {
        self.schedule
            .iter()
            .copied()
            .filter(|f| f.active_at(t))
            .collect()
    }

    /// Advances to time `t`; returns `(newly_activated, newly_deactivated)`.
    pub fn step(&mut self, t: Timestamp) -> (Vec<Fault>, Vec<Fault>) {
        let mut on = Vec::new();
        let mut off = Vec::new();
        for (i, f) in self.schedule.iter().enumerate() {
            let now_active = f.active_at(t);
            if now_active && !self.active[i] {
                on.push(*f);
            } else if !now_active && self.active[i] {
                off.push(*f);
            }
            self.active[i] = now_active;
        }
        (on, off)
    }

    /// Whether any fault affecting `node` is active at `t` (ground-truth
    /// label used when scoring node-level detectors).
    pub fn node_is_faulty(&self, node: NodeId, t: Timestamp) -> bool {
        self.schedule
            .iter()
            .any(|f| f.active_at(t) && f.kind.node() == Some(node))
    }
}

// ---------------------------------------------------------------------------
// Telemetry faults: failures of the *monitoring* path, not the plant.
// ---------------------------------------------------------------------------
//
// The physical faults above perturb the site and show up as honest symptoms
// in honest telemetry. Real monitoring stacks additionally suffer failures of
// the measurement path itself: collectors die, sensors latch, ADCs glitch,
// node clocks drift. These never change the plant — they change what the
// analytics layer *sees*, which is exactly the degradation an ODA pipeline
// must tolerate. Keeping the two families separate preserves the ground
// truth: a detector can be scored against physical faults while telemetry
// faults decide how much evidence it gets to work with.

/// What goes wrong with the monitoring path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryFaultKind {
    /// Sensors matching `pattern` publish nothing (dead collector,
    /// unplugged IPMI cable): readings are silently discarded.
    SensorDropout {
        /// Glob over sensor names, e.g. `/hw/*/temp_c`.
        pattern: String,
    },
    /// Sensors matching `pattern` latch at the last value seen before the
    /// fault (stuck ADC register): timestamps advance, values freeze.
    StuckAt {
        /// Glob over sensor names.
        pattern: String,
    },
    /// Each reading from a matching sensor is replaced by NaN with
    /// probability `p` (flaky wire, conversion errors).
    NanBurst {
        /// Glob over sensor names.
        pattern: String,
        /// Per-reading corruption probability, 0..=1.
        p: f64,
    },
    /// Each reading from a matching sensor is displaced by `magnitude`
    /// (randomly signed) with probability `p` — electrical spikes.
    Spike {
        /// Glob over sensor names.
        pattern: String,
        /// Absolute displacement added or subtracted.
        magnitude: f64,
        /// Per-reading corruption probability, 0..=1.
        p: f64,
    },
    /// Timestamps of matching sensors are skewed by a uniform offset in
    /// `[-max_skew_ms, +max_skew_ms]` (unsynchronised node clocks).
    /// Backward skews produce out-of-order readings the store rejects.
    ClockJitter {
        /// Glob over sensor names.
        pattern: String,
        /// Maximum absolute skew, milliseconds.
        max_skew_ms: u64,
    },
    /// Every sensor under `/hw/node{i}` and `/sw/node{i}` goes dark —
    /// the monitoring view of a crashed or unreachable node.
    NodeFailure {
        /// The node whose telemetry disappears.
        node: NodeId,
    },
    /// A burst of operator stress jobs (`jobs` single-node jobs of
    /// `duration_s` seconds) is submitted at activation: load the pipeline
    /// must absorb while possibly also degraded.
    BurstLoad {
        /// Number of single-node jobs submitted.
        jobs: u32,
        /// Per-job duration, seconds.
        duration_s: f64,
    },
}

impl TelemetryFaultKind {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TelemetryFaultKind::SensorDropout { .. } => "sensor-dropout",
            TelemetryFaultKind::StuckAt { .. } => "stuck-at",
            TelemetryFaultKind::NanBurst { .. } => "nan-burst",
            TelemetryFaultKind::Spike { .. } => "spike",
            TelemetryFaultKind::ClockJitter { .. } => "clock-jitter",
            TelemetryFaultKind::NodeFailure { .. } => "node-failure",
            TelemetryFaultKind::BurstLoad { .. } => "burst-load",
        }
    }

    /// The sensor-name patterns this fault corrupts (empty for pure load
    /// faults).
    fn patterns(&self) -> Vec<String> {
        match self {
            TelemetryFaultKind::SensorDropout { pattern }
            | TelemetryFaultKind::StuckAt { pattern }
            | TelemetryFaultKind::NanBurst { pattern, .. }
            | TelemetryFaultKind::Spike { pattern, .. }
            | TelemetryFaultKind::ClockJitter { pattern, .. } => vec![pattern.clone()],
            TelemetryFaultKind::NodeFailure { node } => {
                vec![format!("/*/node{}/**", node.index())]
            }
            TelemetryFaultKind::BurstLoad { .. } => Vec::new(),
        }
    }
}

/// A scheduled telemetry fault: active during `[start, end)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryFault {
    /// What happens.
    pub kind: TelemetryFaultKind,
    /// Activation time.
    pub start: Timestamp,
    /// Deactivation time (exclusive).
    pub end: Timestamp,
}

impl TelemetryFault {
    /// Creates a fault active during `[start, end)`.
    pub fn new(kind: TelemetryFaultKind, start: Timestamp, end: Timestamp) -> Self {
        TelemetryFault { kind, start, end }
    }

    /// Whether the fault is active at `t`.
    #[inline]
    pub fn active_at(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }
}

/// A seedable schedule of telemetry faults.
///
/// The seed drives every probabilistic corruption decision, so two runs of
/// the same simulation with the same schedule produce *identical* corrupted
/// telemetry — the property chaos tests rely on to compare degraded runs
/// against clean ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The scheduled faults, in insertion order (also corruption order when
    /// several faults hit the same sensor).
    pub faults: Vec<TelemetryFault>,
    /// Seed for all stochastic corruption decisions.
    pub seed: u64,
}

impl FaultSchedule {
    /// Creates an empty schedule with the given corruption seed.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            faults: Vec::new(),
            seed,
        }
    }

    /// Builder-style: adds `kind` active during `[start, end)`.
    pub fn with(mut self, kind: TelemetryFaultKind, start: Timestamp, end: Timestamp) -> Self {
        self.faults.push(TelemetryFault::new(kind, start, end));
        self
    }

    /// Adds a fault in place.
    pub fn push(&mut self, fault: TelemetryFault) {
        self.faults.push(fault);
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generates a randomized-but-deterministic schedule: `count` faults of
    /// rotating kinds with start times uniform in `[0, horizon)` and
    /// durations between 5% and 20% of the horizon. The same
    /// `(seed, horizon, nodes, count)` always yields the same schedule.
    pub fn randomized(seed: u64, horizon: Timestamp, nodes: usize, count: usize) -> Self {
        let mut rng = SimRng::new(seed ^ 0x7e1e_6e57_0dab_cafe);
        let mut schedule = FaultSchedule::new(seed);
        let horizon_ms = horizon.as_millis().max(1);
        for i in 0..count {
            let start = rng.uniform(0.0, horizon_ms as f64 * 0.8) as u64;
            let dur = rng.uniform(horizon_ms as f64 * 0.05, horizon_ms as f64 * 0.2) as u64;
            let node = NodeId(rng.uniform_usize(0, nodes.max(1)) as u32);
            let kind = match i % 7 {
                0 => TelemetryFaultKind::SensorDropout {
                    pattern: format!("/hw/node{}/temp_c", node.index()),
                },
                1 => TelemetryFaultKind::NanBurst {
                    pattern: "/hw/*/power_w".to_owned(),
                    p: rng.uniform(0.1, 0.5),
                },
                2 => TelemetryFaultKind::StuckAt {
                    pattern: format!("/hw/node{}/util", node.index()),
                },
                3 => TelemetryFaultKind::Spike {
                    pattern: "/facility/power/it_kw".to_owned(),
                    magnitude: rng.uniform(50.0, 500.0),
                    p: rng.uniform(0.05, 0.3),
                },
                4 => TelemetryFaultKind::ClockJitter {
                    pattern: format!("/hw/node{}/*", node.index()),
                    max_skew_ms: rng.uniform(5_000.0, 30_000.0) as u64,
                },
                5 => TelemetryFaultKind::NodeFailure { node },
                _ => TelemetryFaultKind::BurstLoad {
                    jobs: rng.uniform_usize(2, 8) as u32,
                    duration_s: rng.uniform(300.0, 1_800.0),
                },
            };
            schedule.push(TelemetryFault::new(
                kind,
                Timestamp::from_millis(start),
                Timestamp::from_millis(start.saturating_add(dur)),
            ));
        }
        schedule
    }
}

/// Runtime state of a [`FaultSchedule`]: resolved sensor targets, activation
/// tracking, per-fault stuck values and the deterministic corruption RNG.
///
/// Built once against a [`SensorRegistry`] (patterns are resolved eagerly —
/// the simulator registers every sensor at construction, so late
/// registration is not a concern here) and then driven by the tick loop:
/// [`step`](Self::step) reports activations, [`corrupt`](Self::corrupt)
/// filters every outgoing reading.
#[derive(Debug)]
pub struct TelemetryFaultState {
    faults: Vec<TelemetryFault>,
    /// Per-fault resolved target set.
    targets: Vec<HashSet<SensorId>>,
    active: Vec<bool>,
    /// Last clean value seen per (fault, sensor), for `StuckAt`.
    stuck: HashMap<(usize, SensorId), f64>,
    rng: SimRng,
    /// Readings suppressed (dropout / node failure).
    suppressed: u64,
    /// Readings whose value or timestamp was corrupted in place.
    corrupted: u64,
}

impl TelemetryFaultState {
    /// Resolves `schedule` against `registry`.
    pub fn new(schedule: FaultSchedule, registry: &SensorRegistry) -> Self {
        let targets = schedule
            .faults
            .iter()
            .map(|f| {
                f.kind
                    .patterns()
                    .iter()
                    .flat_map(|p| registry.matching(&SensorPattern::new(p)))
                    .collect()
            })
            .collect();
        let active = vec![false; schedule.faults.len()];
        TelemetryFaultState {
            targets,
            active,
            stuck: HashMap::new(),
            rng: SimRng::new(schedule.seed ^ 0xc0_ffee),
            suppressed: 0,
            corrupted: 0,
            faults: schedule.faults,
        }
    }

    /// The scheduled faults (ground truth for scoring degradation).
    pub fn schedule(&self) -> &[TelemetryFault] {
        &self.faults
    }

    /// Telemetry faults active at `t`.
    pub fn active_at(&self, t: Timestamp) -> Vec<TelemetryFault> {
        self.faults
            .iter()
            .filter(|f| f.active_at(t))
            .cloned()
            .collect()
    }

    /// Readings suppressed so far (dropout and node-failure windows).
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Readings whose value or timestamp was altered so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Advances to `t`; returns newly activated faults (the caller turns
    /// `BurstLoad` activations into job submissions). Deactivation clears
    /// stuck-value latches so a later window re-latches fresh.
    pub fn step(&mut self, t: Timestamp) -> Vec<TelemetryFault> {
        let mut on = Vec::new();
        for (i, f) in self.faults.iter().enumerate() {
            let now_active = f.active_at(t);
            if now_active && !self.active[i] {
                on.push(f.clone());
            } else if !now_active && self.active[i] {
                self.stuck.retain(|&(fi, _), _| fi != i);
            }
            self.active[i] = now_active;
        }
        on
    }

    /// Applies every active fault to one outgoing reading.
    ///
    /// Returns `None` when the reading is suppressed entirely, otherwise the
    /// (possibly corrupted) reading. Faults apply in schedule order, so a
    /// spike can land on a stuck value but nothing survives a dropout.
    pub fn corrupt(&mut self, sensor: SensorId, mut reading: Reading) -> Option<Reading> {
        for i in 0..self.faults.len() {
            if !self.active[i] || !self.targets[i].contains(&sensor) {
                continue;
            }
            match self.faults[i].kind {
                TelemetryFaultKind::SensorDropout { .. }
                | TelemetryFaultKind::NodeFailure { .. } => {
                    self.suppressed += 1;
                    return None;
                }
                TelemetryFaultKind::StuckAt { .. } => {
                    let latch = *self.stuck.entry((i, sensor)).or_insert(reading.value);
                    if latch != reading.value {
                        reading.value = latch;
                        self.corrupted += 1;
                    }
                }
                TelemetryFaultKind::NanBurst { p, .. } => {
                    if self.rng.chance(p) {
                        reading.value = f64::NAN;
                        self.corrupted += 1;
                    }
                }
                TelemetryFaultKind::Spike { magnitude, p, .. } => {
                    if self.rng.chance(p) {
                        let sign = if self.rng.chance(0.5) { 1.0 } else { -1.0 };
                        reading.value += sign * magnitude;
                        self.corrupted += 1;
                    }
                }
                TelemetryFaultKind::ClockJitter { max_skew_ms, .. } => {
                    let skew = self.rng.uniform(-(max_skew_ms as f64), max_skew_ms as f64) as i64;
                    let ms = reading.ts.as_millis();
                    reading.ts = Timestamp::from_millis(ms.saturating_add_signed(skew));
                    self.corrupted += 1;
                }
                TelemetryFaultKind::BurstLoad { .. } => {}
            }
        }
        Some(reading)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(start_s: u64, end_s: u64) -> Fault {
        Fault::new(
            FaultKind::FanFailure { node: NodeId(3) },
            Timestamp::from_secs(start_s),
            Timestamp::from_secs(end_s),
        )
    }

    #[test]
    fn active_window_is_half_open() {
        let f = fault(10, 20);
        assert!(!f.active_at(Timestamp::from_secs(9)));
        assert!(f.active_at(Timestamp::from_secs(10)));
        assert!(f.active_at(Timestamp::from_secs(19)));
        assert!(!f.active_at(Timestamp::from_secs(20)));
    }

    #[test]
    fn step_reports_transitions_once() {
        let mut inj = FaultInjector::new();
        inj.inject(fault(10, 20));
        let (on, off) = inj.step(Timestamp::from_secs(5));
        assert!(on.is_empty() && off.is_empty());
        let (on, off) = inj.step(Timestamp::from_secs(10));
        assert_eq!(on.len(), 1);
        assert!(off.is_empty());
        let (on, off) = inj.step(Timestamp::from_secs(15));
        assert!(on.is_empty() && off.is_empty());
        let (on, off) = inj.step(Timestamp::from_secs(25));
        assert!(on.is_empty());
        assert_eq!(off.len(), 1);
    }

    #[test]
    fn node_fault_labels() {
        let mut inj = FaultInjector::new();
        inj.inject(fault(0, 100));
        assert!(inj.node_is_faulty(NodeId(3), Timestamp::from_secs(50)));
        assert!(!inj.node_is_faulty(NodeId(4), Timestamp::from_secs(50)));
        assert!(!inj.node_is_faulty(NodeId(3), Timestamp::from_secs(150)));
    }

    #[test]
    fn kind_metadata() {
        let k = FaultKind::CoolingDegradation { factor: 1.4 };
        assert_eq!(k.label(), "cooling-degradation");
        assert_eq!(k.node(), None);
        let k = FaultKind::MemoryLeak {
            node: NodeId(1),
            gib_per_min: 2.0,
        };
        assert_eq!(k.node(), Some(NodeId(1)));
    }

    // ----- telemetry faults -------------------------------------------------

    use oda_telemetry::sensor::{SensorKind, Unit};

    fn registry() -> SensorRegistry {
        let reg = SensorRegistry::new();
        for i in 0..2 {
            reg.register(
                &format!("/hw/node{i}/temp_c"),
                SensorKind::Temperature,
                Unit::Celsius,
            );
            reg.register(
                &format!("/hw/node{i}/power_w"),
                SensorKind::Power,
                Unit::Watts,
            );
            reg.register(
                &format!("/sw/node{i}/sys_mem_gib"),
                SensorKind::Count,
                Unit::Dimensionless,
            );
        }
        reg
    }

    fn rd(s: u64, v: f64) -> Reading {
        Reading::new(Timestamp::from_secs(s), v)
    }

    #[test]
    fn dropout_suppresses_only_matching_sensors() {
        let reg = registry();
        let temp0 = reg.lookup("/hw/node0/temp_c").unwrap();
        let temp1 = reg.lookup("/hw/node1/temp_c").unwrap();
        let sched = FaultSchedule::new(1).with(
            TelemetryFaultKind::SensorDropout {
                pattern: "/hw/node0/temp_c".into(),
            },
            Timestamp::from_secs(10),
            Timestamp::from_secs(20),
        );
        let mut st = TelemetryFaultState::new(sched, &reg);
        st.step(Timestamp::from_secs(5));
        assert!(
            st.corrupt(temp0, rd(5, 40.0)).is_some(),
            "inactive window passes"
        );
        st.step(Timestamp::from_secs(10));
        assert!(st.corrupt(temp0, rd(10, 40.0)).is_none());
        assert!(
            st.corrupt(temp1, rd(10, 40.0)).is_some(),
            "other sensors unaffected"
        );
        st.step(Timestamp::from_secs(20));
        assert!(
            st.corrupt(temp0, rd(20, 40.0)).is_some(),
            "window is half-open"
        );
        assert_eq!(st.suppressed(), 1);
    }

    #[test]
    fn stuck_at_latches_first_value_and_releases() {
        let reg = registry();
        let s = reg.lookup("/hw/node0/power_w").unwrap();
        let sched = FaultSchedule::new(1).with(
            TelemetryFaultKind::StuckAt {
                pattern: "/hw/node0/power_w".into(),
            },
            Timestamp::from_secs(0),
            Timestamp::from_secs(10),
        );
        let mut st = TelemetryFaultState::new(sched, &reg);
        st.step(Timestamp::ZERO);
        assert_eq!(st.corrupt(s, rd(0, 100.0)).unwrap().value, 100.0);
        assert_eq!(st.corrupt(s, rd(1, 150.0)).unwrap().value, 100.0);
        assert_eq!(st.corrupt(s, rd(2, 90.0)).unwrap().value, 100.0);
        st.step(Timestamp::from_secs(10));
        assert_eq!(st.corrupt(s, rd(10, 90.0)).unwrap().value, 90.0);
    }

    #[test]
    fn node_failure_blacks_out_all_node_streams() {
        let reg = registry();
        let sched = FaultSchedule::new(1).with(
            TelemetryFaultKind::NodeFailure { node: NodeId(1) },
            Timestamp::ZERO,
            Timestamp::from_secs(100),
        );
        let mut st = TelemetryFaultState::new(sched, &reg);
        st.step(Timestamp::ZERO);
        for name in [
            "/hw/node1/temp_c",
            "/hw/node1/power_w",
            "/sw/node1/sys_mem_gib",
        ] {
            let s = reg.lookup(name).unwrap();
            assert!(st.corrupt(s, rd(1, 1.0)).is_none(), "{name} should be dark");
        }
        let s0 = reg.lookup("/hw/node0/temp_c").unwrap();
        assert!(st.corrupt(s0, rd(1, 1.0)).is_some());
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let reg = registry();
        let s = reg.lookup("/hw/node0/power_w").unwrap();
        let run = |seed: u64| {
            let sched = FaultSchedule::new(seed).with(
                TelemetryFaultKind::NanBurst {
                    pattern: "/hw/*/power_w".into(),
                    p: 0.5,
                },
                Timestamp::ZERO,
                Timestamp::from_secs(1_000),
            );
            let mut st = TelemetryFaultState::new(sched, &reg);
            st.step(Timestamp::ZERO);
            (0..200)
                .map(|t| st.corrupt(s, rd(t, 5.0)).unwrap().value.is_nan())
                .collect::<Vec<bool>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same corruption stream");
        assert_ne!(a, run(8), "different seed diverges");
        let nans = a.iter().filter(|&&x| x).count();
        assert!(
            nans > 50 && nans < 150,
            "p=0.5 should corrupt about half: {nans}"
        );
    }

    #[test]
    fn clock_jitter_skews_timestamps_both_ways() {
        let reg = registry();
        let s = reg.lookup("/hw/node0/temp_c").unwrap();
        let sched = FaultSchedule::new(3).with(
            TelemetryFaultKind::ClockJitter {
                pattern: "/hw/node0/*".into(),
                max_skew_ms: 5_000,
            },
            Timestamp::ZERO,
            Timestamp::from_secs(1_000),
        );
        let mut st = TelemetryFaultState::new(sched, &reg);
        st.step(Timestamp::ZERO);
        let mut ahead = 0;
        let mut behind = 0;
        for t in 0..100u64 {
            let nominal = Timestamp::from_secs(100 + t);
            let got = st.corrupt(s, Reading::new(nominal, 1.0)).unwrap().ts;
            let skew = got.as_millis() as i64 - nominal.as_millis() as i64;
            assert!(skew.abs() <= 5_000, "skew {skew} out of range");
            if skew > 0 {
                ahead += 1;
            } else if skew < 0 {
                behind += 1;
            }
        }
        assert!(
            ahead > 10 && behind > 10,
            "skew should go both ways: +{ahead} -{behind}"
        );
    }

    #[test]
    fn randomized_schedule_is_reproducible() {
        let a = FaultSchedule::randomized(42, Timestamp::from_hours(4), 8, 12);
        let b = FaultSchedule::randomized(42, Timestamp::from_hours(4), 8, 12);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        let c = FaultSchedule::randomized(43, Timestamp::from_hours(4), 8, 12);
        assert_ne!(a, c);
        // All seven kinds are represented across 12 rotating entries.
        let labels: HashSet<&str> = a.faults.iter().map(|f| f.kind.label()).collect();
        assert_eq!(labels.len(), 7);
    }
}
