//! Fault and anomaly injection — the ground truth for diagnostic ODA.
//!
//! Every diagnostic experiment needs labelled anomalies: the injector
//! activates a fault at its start time, the simulation's models express its
//! symptoms in ordinary telemetry (a fan failure shows up as rising
//! temperature and throttling, never as a "fault bit"), and the detector
//! under test is scored against the injection schedule. Fault kinds cover
//! all four pillars, matching the anomaly families in the surveyed
//! diagnostic works (Tuncer et al.'s performance variations, Borghesi
//! et al.'s node anomalies, NREL's AI-ops infrastructure faults).

use crate::hardware::node::NodeId;
use crate::hardware::rack::RackId;
use oda_telemetry::reading::Timestamp;
use serde::{Deserialize, Serialize};

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A node's fan fails: thermal resistance spikes, node heats and
    /// throttles under load. (System Hardware)
    FanFailure {
        /// Affected node.
        node: NodeId,
    },
    /// Gradual thermal degradation (dust, degraded TIM): `factor` ≥ 1
    /// multiplies the node's thermal resistance. (System Hardware)
    ThermalDegradation {
        /// Affected node.
        node: NodeId,
        /// Thermal-resistance multiplier, ≥ 1.
        factor: f64,
    },
    /// A memory leak on a node: memory use grows linearly until it saturates
    /// the node, degrading job progress (swap thrash). (System Software)
    MemoryLeak {
        /// Affected node.
        node: NodeId,
        /// Leak rate, GiB per minute.
        gib_per_min: f64,
    },
    /// An orphaned/rogue process steals CPU: the victim node loses
    /// `severity` of its compute speed and shows inflated utilization.
    /// (System Software)
    CpuContention {
        /// Affected node.
        node: NodeId,
        /// Fraction of compute stolen, 0..=1.
        severity: f64,
    },
    /// External traffic floods a rack uplink. (System Hardware / network)
    NetworkHog {
        /// Rack whose uplink is flooded.
        rack: RackId,
        /// Injected demand, GB/s.
        demand_gbps: f64,
    },
    /// Cooling-plant degradation (fouled heat exchanger, failing pump):
    /// plant power multiplied by `factor`. (Building Infrastructure)
    CoolingDegradation {
        /// Plant power multiplier, ≥ 1.
        factor: f64,
    },
}

impl FaultKind {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::FanFailure { .. } => "fan-failure",
            FaultKind::ThermalDegradation { .. } => "thermal-degradation",
            FaultKind::MemoryLeak { .. } => "memory-leak",
            FaultKind::CpuContention { .. } => "cpu-contention",
            FaultKind::NetworkHog { .. } => "network-hog",
            FaultKind::CoolingDegradation { .. } => "cooling-degradation",
        }
    }

    /// The node the fault affects, if it is node-scoped.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            FaultKind::FanFailure { node }
            | FaultKind::ThermalDegradation { node, .. }
            | FaultKind::MemoryLeak { node, .. }
            | FaultKind::CpuContention { node, .. } => Some(node),
            _ => None,
        }
    }
}

/// A scheduled fault: active during `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// Activation time.
    pub start: Timestamp,
    /// Deactivation time (exclusive).
    pub end: Timestamp,
}

impl Fault {
    /// Creates a fault active during `[start, end)`.
    pub fn new(kind: FaultKind, start: Timestamp, end: Timestamp) -> Self {
        Fault { kind, start, end }
    }

    /// Whether the fault is active at `t`.
    #[inline]
    pub fn active_at(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }
}

/// Holds the fault schedule and reports activations/deactivations.
#[derive(Debug, Default)]
pub struct FaultInjector {
    schedule: Vec<Fault>,
    active: Vec<bool>,
}

impl FaultInjector {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault to the schedule.
    pub fn inject(&mut self, fault: Fault) {
        self.schedule.push(fault);
        self.active.push(false);
    }

    /// The full schedule (ground truth for scoring detectors).
    pub fn schedule(&self) -> &[Fault] {
        &self.schedule
    }

    /// Faults active at `t`.
    pub fn active_at(&self, t: Timestamp) -> Vec<Fault> {
        self.schedule.iter().copied().filter(|f| f.active_at(t)).collect()
    }

    /// Advances to time `t`; returns `(newly_activated, newly_deactivated)`.
    pub fn step(&mut self, t: Timestamp) -> (Vec<Fault>, Vec<Fault>) {
        let mut on = Vec::new();
        let mut off = Vec::new();
        for (i, f) in self.schedule.iter().enumerate() {
            let now_active = f.active_at(t);
            if now_active && !self.active[i] {
                on.push(*f);
            } else if !now_active && self.active[i] {
                off.push(*f);
            }
            self.active[i] = now_active;
        }
        (on, off)
    }

    /// Whether any fault affecting `node` is active at `t` (ground-truth
    /// label used when scoring node-level detectors).
    pub fn node_is_faulty(&self, node: NodeId, t: Timestamp) -> bool {
        self.schedule
            .iter()
            .any(|f| f.active_at(t) && f.kind.node() == Some(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(start_s: u64, end_s: u64) -> Fault {
        Fault::new(
            FaultKind::FanFailure { node: NodeId(3) },
            Timestamp::from_secs(start_s),
            Timestamp::from_secs(end_s),
        )
    }

    #[test]
    fn active_window_is_half_open() {
        let f = fault(10, 20);
        assert!(!f.active_at(Timestamp::from_secs(9)));
        assert!(f.active_at(Timestamp::from_secs(10)));
        assert!(f.active_at(Timestamp::from_secs(19)));
        assert!(!f.active_at(Timestamp::from_secs(20)));
    }

    #[test]
    fn step_reports_transitions_once() {
        let mut inj = FaultInjector::new();
        inj.inject(fault(10, 20));
        let (on, off) = inj.step(Timestamp::from_secs(5));
        assert!(on.is_empty() && off.is_empty());
        let (on, off) = inj.step(Timestamp::from_secs(10));
        assert_eq!(on.len(), 1);
        assert!(off.is_empty());
        let (on, off) = inj.step(Timestamp::from_secs(15));
        assert!(on.is_empty() && off.is_empty());
        let (on, off) = inj.step(Timestamp::from_secs(25));
        assert!(on.is_empty());
        assert_eq!(off.len(), 1);
    }

    #[test]
    fn node_fault_labels() {
        let mut inj = FaultInjector::new();
        inj.inject(fault(0, 100));
        assert!(inj.node_is_faulty(NodeId(3), Timestamp::from_secs(50)));
        assert!(!inj.node_is_faulty(NodeId(4), Timestamp::from_secs(50)));
        assert!(!inj.node_is_faulty(NodeId(3), Timestamp::from_secs(150)));
    }

    #[test]
    fn kind_metadata() {
        let k = FaultKind::CoolingDegradation { factor: 1.4 };
        assert_eq!(k.label(), "cooling-degradation");
        assert_eq!(k.node(), None);
        let k = FaultKind::MemoryLeak {
            node: NodeId(1),
            gib_per_min: 2.0,
        };
        assert_eq!(k.node(), Some(NodeId(1)));
    }
}
