//! Compute-node power and thermal model.
//!
//! Each node models the quantities node-level ODA consumes and the knobs
//! node-level prescriptive ODA actuates:
//!
//! * **Power** `P = P_idle + P_dyn·u·(f/f_max)³ + leakage(T) + P_fan(s)` —
//!   the cubic frequency term is the classic CV²f DVFS model (voltage scales
//!   with frequency), which is what makes frequency tuning worthwhile;
//!   temperature-dependent leakage couples the hardware pillar to the
//!   cooling plant, which is what makes inlet-setpoint tuning non-trivial.
//! * **Temperature** follows a first-order RC response towards
//!   `T_inlet + P·R_th(s)`: thermal resistance falls as the fan spins up,
//!   fan power grows cubically with speed — the fan-speed trade-off tuned by
//!   the surveyed prescriptive hardware works.
//! * **Knobs**: DVFS frequency (GHz) and fan speed (fraction).
//! * **Fault hooks**: fan failure pins the fan at a trickle; thermal
//!   degradation (dust, failed TIM) scales `R_th` up.

use serde::{Deserialize, Serialize};

/// Identifier of a node within the data center (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static per-node model parameters.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Number of cores (scheduling capacity).
    pub cores: u32,
    /// Memory capacity, GiB.
    pub memory_gib: f64,
    /// Idle power, W.
    pub idle_power_w: f64,
    /// Maximum dynamic power at full utilization and `f_max`, W.
    pub dynamic_power_w: f64,
    /// Minimum DVFS frequency, GHz.
    pub f_min_ghz: f64,
    /// Maximum DVFS frequency, GHz.
    pub f_max_ghz: f64,
    /// Leakage power per °C above the leakage onset temperature, W/°C.
    pub leakage_w_per_c: f64,
    /// Temperature above which leakage starts growing, °C.
    pub leakage_onset_c: f64,
    /// Thermal resistance at full fan speed, °C/W.
    pub r_th_c_per_w: f64,
    /// Thermal time constant, seconds.
    pub tau_s: f64,
    /// Fan power at full speed, W.
    pub fan_max_w: f64,
    /// Temperature at which the node thermally throttles, °C.
    pub throttle_temp_c: f64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            cores: 48,
            memory_gib: 192.0,
            idle_power_w: 90.0,
            dynamic_power_w: 310.0,
            f_min_ghz: 1.2,
            f_max_ghz: 3.0,
            leakage_w_per_c: 1.2,
            leakage_onset_c: 45.0,
            r_th_c_per_w: 0.055,
            tau_s: 120.0,
            fan_max_w: 60.0,
            throttle_temp_c: 92.0,
        }
    }
}

/// Dynamic state of one node.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    config: NodeConfig,
    /// DVFS knob, GHz.
    freq_ghz: f64,
    /// Fan-speed knob, fraction `0.05..=1`.
    fan_speed: f64,
    /// Core utilization demanded by running work, `0..=1`.
    utilization: f64,
    /// Memory in use, GiB.
    memory_used_gib: f64,
    /// Current CPU temperature, °C.
    temp_c: f64,
    /// Current total power, W.
    power_w: f64,
    /// Fault: fan stuck broken.
    fan_failed: bool,
    /// Fault: thermal-resistance multiplier (≥ 1).
    thermal_degradation: f64,
    /// Whether the node throttled this tick (temp above limit).
    throttled: bool,
}

impl Node {
    /// Creates a node at thermal equilibrium with `inlet_c`, idle, fans at
    /// 30%, full frequency.
    pub fn new(id: NodeId, config: NodeConfig, inlet_c: f64) -> Self {
        let f_max = config.f_max_ghz;
        Node {
            id,
            temp_c: inlet_c + config.idle_power_w * config.r_th_c_per_w,
            freq_ghz: f_max,
            fan_speed: 0.3,
            utilization: 0.0,
            memory_used_gib: 0.0,
            power_w: config.idle_power_w,
            fan_failed: false,
            thermal_degradation: 1.0,
            throttled: false,
            config,
        }
    }

    /// Static configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Current DVFS frequency, GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Sets the DVFS knob (clamped to `[f_min, f_max]`).
    pub fn set_freq_ghz(&mut self, f: f64) {
        self.freq_ghz = f.clamp(self.config.f_min_ghz, self.config.f_max_ghz);
    }

    /// Current fan-speed knob.
    pub fn fan_speed(&self) -> f64 {
        self.fan_speed
    }

    /// Sets the fan-speed knob (clamped to `[0.05, 1]`; ignored while the
    /// fan-failure fault is active).
    pub fn set_fan_speed(&mut self, s: f64) {
        if !self.fan_failed {
            self.fan_speed = s.clamp(0.05, 1.0);
        }
    }

    /// Injects/clears the fan-failure fault.
    pub fn set_fan_failed(&mut self, failed: bool) {
        self.fan_failed = failed;
        if failed {
            self.fan_speed = 0.05;
        }
    }

    /// `true` while the fan-failure fault is active.
    pub fn fan_failed(&self) -> bool {
        self.fan_failed
    }

    /// Sets the thermal-degradation multiplier (≥ 1).
    pub fn set_thermal_degradation(&mut self, factor: f64) {
        self.thermal_degradation = factor.max(1.0);
    }

    /// Sets the load placed on the node this tick.
    pub fn set_load(&mut self, utilization: f64, memory_used_gib: f64) {
        self.utilization = utilization.clamp(0.0, 1.0);
        self.memory_used_gib = memory_used_gib.clamp(0.0, self.config.memory_gib);
    }

    /// Core utilization currently demanded.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Memory in use, GiB.
    pub fn memory_used_gib(&self) -> f64 {
        self.memory_used_gib
    }

    /// Current temperature, °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Current total power, W.
    pub fn power_w(&self) -> f64 {
        self.power_w
    }

    /// Whether the node hit its throttle limit on the last step.
    pub fn throttled(&self) -> bool {
        self.throttled
    }

    /// Relative compute speed of the node this tick: proportional to
    /// frequency, halved while throttling. Compute-bound job progress scales
    /// with this.
    pub fn compute_speed(&self) -> f64 {
        let base = self.freq_ghz / self.config.f_max_ghz;
        if self.throttled {
            base * 0.5
        } else {
            base
        }
    }

    /// Effective thermal resistance at the current fan speed, °C/W.
    fn r_th_effective(&self) -> f64 {
        // Fans at full speed give the nominal resistance; a trickle roughly
        // triples it.
        let fan_factor = 0.35 + 0.65 * self.fan_speed;
        self.config.r_th_c_per_w * self.thermal_degradation / fan_factor
    }

    /// Advances the power/thermal model by `dt_s` seconds with loop water at
    /// `inlet_c`. Returns the node power in watts after the step.
    pub fn step(&mut self, dt_s: f64, inlet_c: f64) -> f64 {
        let c = &self.config;
        let f_ratio = self.freq_ghz / c.f_max_ghz;
        let p_dyn = c.dynamic_power_w * self.utilization * f_ratio.powi(3);
        let leakage = c.leakage_w_per_c * (self.temp_c - c.leakage_onset_c).max(0.0);
        let p_fan = c.fan_max_w * self.fan_speed.powi(3);
        self.power_w = c.idle_power_w + p_dyn + leakage + p_fan;

        // First-order RC response towards the steady-state temperature.
        // Fan power dissipates outside the CPU package, so it does not heat
        // the die.
        let heat_w = self.power_w - p_fan;
        let t_steady = inlet_c + heat_w * self.r_th_effective();
        let alpha = (dt_s / c.tau_s).clamp(0.0, 1.0);
        self.temp_c += alpha * (t_steady - self.temp_c);
        self.throttled = self.temp_c >= c.throttle_temp_c;
        self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_node() -> Node {
        Node::new(NodeId(0), NodeConfig::default(), 30.0)
    }

    /// Steps until temperature change per step is negligible.
    fn settle(node: &mut Node, inlet_c: f64) {
        for _ in 0..10_000 {
            let before = node.temp_c();
            node.step(1.0, inlet_c);
            if (node.temp_c() - before).abs() < 1e-9 {
                break;
            }
        }
    }

    #[test]
    fn idle_power_is_baseline_plus_fan() {
        let mut n = idle_node();
        n.step(1.0, 30.0);
        // idle 90 + fan 60*0.3³ = 91.62, plus possible small leakage.
        assert!(
            n.power_w() >= 91.0 && n.power_w() < 110.0,
            "{}",
            n.power_w()
        );
    }

    #[test]
    fn load_increases_power_and_temperature() {
        let mut n = idle_node();
        settle(&mut n, 30.0);
        let idle_t = n.temp_c();
        let idle_p = n.power_w();
        n.set_load(1.0, 64.0);
        settle(&mut n, 30.0);
        assert!(
            n.power_w() > idle_p + 250.0,
            "{} vs {}",
            n.power_w(),
            idle_p
        );
        assert!(n.temp_c() > idle_t + 10.0);
    }

    #[test]
    fn dvfs_cubic_saves_power() {
        let mut hi = idle_node();
        hi.set_load(1.0, 0.0);
        settle(&mut hi, 30.0);
        let mut lo = idle_node();
        lo.set_load(1.0, 0.0);
        lo.set_freq_ghz(1.5); // half of f_max
        settle(&mut lo, 30.0);
        // Dynamic term should fall by ~8x; total power clearly lower.
        assert!(
            lo.power_w() < hi.power_w() - 200.0,
            "{} vs {}",
            lo.power_w(),
            hi.power_w()
        );
        assert!((lo.compute_speed() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn freq_clamped_to_range() {
        let mut n = idle_node();
        n.set_freq_ghz(10.0);
        assert_eq!(n.freq_ghz(), 3.0);
        n.set_freq_ghz(0.1);
        assert_eq!(n.freq_ghz(), 1.2);
    }

    #[test]
    fn hotter_inlet_means_hotter_node_and_more_leakage() {
        let mut cool = idle_node();
        cool.set_load(1.0, 0.0);
        settle(&mut cool, 25.0);
        let mut warm = idle_node();
        warm.set_load(1.0, 0.0);
        settle(&mut warm, 45.0);
        assert!(warm.temp_c() > cool.temp_c() + 15.0);
        assert!(warm.power_w() > cool.power_w(), "leakage should grow");
    }

    #[test]
    fn fan_failure_leads_to_throttling_under_load() {
        let mut n = idle_node();
        n.set_load(1.0, 0.0);
        n.set_fan_failed(true);
        settle(&mut n, 40.0);
        assert!(n.throttled(), "temp {}", n.temp_c());
        assert!(n.compute_speed() < 0.6);
        // Knob writes are ignored while failed.
        n.set_fan_speed(1.0);
        assert_eq!(n.fan_speed(), 0.05);
    }

    #[test]
    fn fan_speed_trade_off() {
        // Higher fan: cooler die but more fan power at equal load.
        let mut slow = idle_node();
        slow.set_load(0.8, 0.0);
        slow.set_fan_speed(0.2);
        settle(&mut slow, 30.0);
        let mut fast = idle_node();
        fast.set_load(0.8, 0.0);
        fast.set_fan_speed(1.0);
        settle(&mut fast, 30.0);
        assert!(fast.temp_c() < slow.temp_c() - 5.0);
        // The fan itself costs up to 60 W.
        let fan_cost = 60.0 * (1.0f64.powi(3) - 0.2f64.powi(3));
        // Fast node pays fan power but saves some leakage; the difference
        // must be smaller than the raw fan cost yet positive for this load.
        let dp = fast.power_w() - slow.power_w();
        assert!(dp > 0.0 && dp < fan_cost + 1.0, "dp = {dp}");
    }

    #[test]
    fn memory_clamped_to_capacity() {
        let mut n = idle_node();
        n.set_load(0.5, 1e9);
        assert_eq!(n.memory_used_gib(), 192.0);
    }

    #[test]
    fn equilibrium_is_stable_under_large_dt() {
        // dt larger than tau must not oscillate or diverge (alpha clamp).
        let mut n = idle_node();
        n.set_load(1.0, 0.0);
        for _ in 0..50 {
            n.step(1_000.0, 30.0);
            assert!(n.temp_c().is_finite());
            assert!(n.temp_c() < 150.0);
        }
    }
}
