//! Interconnect model: a two-level tree (node → rack switch → core switch)
//! with contention on the rack uplinks.
//!
//! The model is deliberately at the granularity the surveyed diagnostic works
//! operate on (Grant et al.'s OVIS/overtime, Jha et al.'s link-level
//! analysis): per-link offered load vs capacity. Jobs register per-tick
//! traffic demands; demands of a job that spans racks traverse the uplinks of
//! every rack it touches. When an uplink is oversubscribed every flow
//! through it is scaled by the same factor — the *contention factor* — which
//! feeds back into I/O-bound job progress and is observable as the gap
//! between offered and delivered throughput.

use super::rack::RackId;
use std::collections::HashMap;

/// Static network parameters.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Capacity of each rack uplink, GB/s.
    pub uplink_capacity_gbps: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            uplink_capacity_gbps: 25.0,
        }
    }
}

/// One tick's traffic accounting for a rack uplink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkState {
    /// Sum of demands offered to the link, GB/s.
    pub offered_gbps: f64,
    /// Traffic actually delivered (≤ capacity), GB/s.
    pub delivered_gbps: f64,
    /// `delivered / offered` (1.0 when uncongested or idle).
    pub contention_factor: f64,
}

/// The interconnect. Stateless between ticks except for the last-computed
/// link states (kept for telemetry).
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    racks: usize,
    links: Vec<LinkState>,
    demands: HashMap<u64, (Vec<RackId>, f64)>,
}

impl Network {
    /// Creates the network for `racks` racks.
    pub fn new(config: NetworkConfig, racks: usize) -> Self {
        Network {
            config,
            racks,
            links: vec![
                LinkState {
                    offered_gbps: 0.0,
                    delivered_gbps: 0.0,
                    contention_factor: 1.0,
                };
                racks
            ],
            demands: HashMap::new(),
        }
    }

    /// Registers flow `flow_id` (usually a job id) demanding
    /// `demand_gbps` of inter-rack bandwidth across `racks` this tick.
    /// Flows confined to a single rack do not traverse an uplink and should
    /// not be registered.
    pub fn offer(&mut self, flow_id: u64, racks: Vec<RackId>, demand_gbps: f64) {
        if demand_gbps > 0.0 && !racks.is_empty() {
            self.demands.insert(flow_id, (racks, demand_gbps));
        }
    }

    /// Resolves all offered demands, computing per-link contention, and
    /// returns for each flow the factor (≤ 1) by which its traffic was
    /// scaled — the minimum contention factor over the links it crossed.
    /// Clears the demand set for the next tick.
    pub fn resolve(&mut self) -> HashMap<u64, f64> {
        let mut offered = vec![0.0f64; self.racks];
        for (racks, demand) in self.demands.values() {
            for r in racks {
                offered[r.index()] += demand;
            }
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            let cap = self.config.uplink_capacity_gbps;
            let off = offered[i];
            // odalint: allow(float-eq) -- exact-zero offered load guards the 0/0 division below
            let factor = if off <= cap || off == 0.0 {
                1.0
            } else {
                cap / off
            };
            *link = LinkState {
                offered_gbps: off,
                delivered_gbps: off.min(cap).min(off * factor),
                contention_factor: factor,
            };
        }
        let out = self
            .demands
            .iter()
            .map(|(&id, (racks, _))| {
                let factor = racks
                    .iter()
                    .map(|r| self.links[r.index()].contention_factor)
                    .fold(1.0f64, f64::min);
                (id, factor)
            })
            .collect();
        self.demands.clear();
        out
    }

    /// Last-resolved state of rack `r`'s uplink.
    pub fn link(&self, r: RackId) -> LinkState {
        self.links[r.index()]
    }

    /// Number of rack uplinks.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(racks: usize) -> Network {
        Network::new(NetworkConfig::default(), racks) // 25 GB/s uplinks
    }

    #[test]
    fn uncongested_flows_run_at_full_rate() {
        let mut n = net(2);
        n.offer(1, vec![RackId(0), RackId(1)], 10.0);
        let factors = n.resolve();
        assert_eq!(factors[&1], 1.0);
        assert_eq!(n.link(RackId(0)).offered_gbps, 10.0);
        assert_eq!(n.link(RackId(0)).delivered_gbps, 10.0);
    }

    #[test]
    fn oversubscribed_link_scales_all_flows_equally() {
        let mut n = net(2);
        n.offer(1, vec![RackId(0)], 20.0);
        n.offer(2, vec![RackId(0)], 30.0);
        let factors = n.resolve();
        assert!((factors[&1] - 0.5).abs() < 1e-12);
        assert!((factors[&2] - 0.5).abs() < 1e-12);
        let l = n.link(RackId(0));
        assert_eq!(l.offered_gbps, 50.0);
        assert!((l.delivered_gbps - 25.0).abs() < 1e-12);
    }

    #[test]
    fn multi_rack_flow_limited_by_worst_link() {
        let mut n = net(3);
        n.offer(1, vec![RackId(0), RackId(1)], 10.0);
        n.offer(2, vec![RackId(1)], 40.0); // congests rack 1's uplink
        let factors = n.resolve();
        assert!(factors[&1] < 1.0, "flow 1 must feel rack 1 congestion");
        assert_eq!(n.link(RackId(0)).contention_factor, 1.0);
        assert!(n.link(RackId(1)).contention_factor < 1.0);
    }

    #[test]
    fn demands_clear_between_ticks() {
        let mut n = net(1);
        n.offer(1, vec![RackId(0)], 50.0);
        n.resolve();
        let factors = n.resolve();
        assert!(factors.is_empty());
        assert_eq!(n.link(RackId(0)).offered_gbps, 0.0);
        assert_eq!(n.link(RackId(0)).contention_factor, 1.0);
    }

    #[test]
    fn zero_demand_flows_are_ignored() {
        let mut n = net(1);
        n.offer(1, vec![RackId(0)], 0.0);
        assert!(n.resolve().is_empty());
    }
}
