//! System-hardware pillar of the simulated site: compute nodes organised in
//! racks, and the interconnect.

pub mod network;
pub mod node;
pub mod rack;
