//! Rack grouping and rack-local thermal environment.
//!
//! Racks matter to the framework for two reasons: cooling-aware scheduling
//! (the §IV-C prescriptive system-software use case) needs *thermally
//! heterogeneous* placement targets, and network contention is diagnosed at
//! rack-uplink granularity. Each rack therefore carries an inlet-temperature
//! offset describing its position in the room's airflow/loop layout: racks
//! at the end of a row (or far along the water loop) run a few degrees
//! warmer, so placing heat there is more expensive.

use super::node::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a rack (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u32);

impl RackId {
    /// Dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A rack: a set of nodes plus its local cooling penalty.
#[derive(Debug, Clone)]
pub struct Rack {
    /// This rack's id.
    pub id: RackId,
    /// Nodes housed in the rack, in id order.
    pub nodes: Vec<NodeId>,
    /// Additional inlet temperature seen by this rack's nodes relative to
    /// the loop setpoint, °C. Deterministic per layout.
    pub inlet_offset_c: f64,
}

impl Rack {
    /// Computes the inlet offset for rack `i` of `n` in the default layout:
    /// offsets grow linearly along the loop from 0 to `max_offset_c`.
    pub fn layout_offset(i: usize, n: usize, max_offset_c: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        max_offset_c * i as f64 / (n - 1) as f64
    }
}

/// Builds `racks` racks of `nodes_per_rack` nodes with the default linear
/// thermal layout, assigning dense node ids rack-major.
pub fn build_racks(racks: usize, nodes_per_rack: usize, max_offset_c: f64) -> Vec<Rack> {
    (0..racks)
        .map(|r| Rack {
            id: RackId(r as u32),
            nodes: (0..nodes_per_rack)
                .map(|i| NodeId((r * nodes_per_rack + i) as u32))
                .collect(),
            inlet_offset_c: Rack::layout_offset(r, racks, max_offset_c),
        })
        .collect()
}

/// Maps a node to its rack under rack-major dense numbering.
#[inline]
pub fn rack_of(node: NodeId, nodes_per_rack: usize) -> RackId {
    RackId((node.index() / nodes_per_rack) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_racks_assigns_dense_rack_major_ids() {
        let racks = build_racks(3, 4, 3.0);
        assert_eq!(racks.len(), 3);
        assert_eq!(
            racks[0].nodes,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(racks[2].nodes[0], NodeId(8));
    }

    #[test]
    fn thermal_offsets_grow_along_the_loop() {
        let racks = build_racks(4, 2, 3.0);
        assert_eq!(racks[0].inlet_offset_c, 0.0);
        assert_eq!(racks[3].inlet_offset_c, 3.0);
        assert!(racks[1].inlet_offset_c < racks[2].inlet_offset_c);
    }

    #[test]
    fn single_rack_has_zero_offset() {
        let racks = build_racks(1, 8, 3.0);
        assert_eq!(racks[0].inlet_offset_c, 0.0);
    }

    #[test]
    fn rack_of_inverts_numbering() {
        assert_eq!(rack_of(NodeId(0), 4), RackId(0));
        assert_eq!(rack_of(NodeId(3), 4), RackId(0));
        assert_eq!(rack_of(NodeId(4), 4), RackId(1));
        assert_eq!(rack_of(NodeId(11), 4), RackId(2));
    }
}
