//! The whole simulated site: facility + hardware + scheduler + workload,
//! publishing telemetry and exposing the actuation knobs.
//!
//! [`DataCenter`] is the object every experiment drives. One call to
//! [`DataCenter::step`] advances the coupled models by one tick:
//!
//! 1. weather evolves;
//! 2. scheduled faults (de)activate and mutate the affected models;
//! 3. new jobs arrive and are submitted;
//! 4. finished jobs are reaped, queued jobs are placed (FCFS + backfill);
//! 5. running jobs post their resource demands, the network resolves
//!    contention, job progress integrates;
//! 6. node power/thermal models integrate; the cooling plant and power
//!    distribution close the loop; PUE and energy accumulate;
//! 7. on sampling ticks, every modelled quantity is published to the
//!    telemetry bus (and thereby archived in the store).
//!
//! Analytics never reach into the simulation state: they consume the same
//! sensor streams a real deployment would provide. The only "side channels"
//! are the explicitly-labelled ground-truth accessors (fault schedule, job
//! records) used for *scoring* detectors and predictors, never as their
//! input.

use crate::engine::{SimClock, SimRng};
use crate::facility::cooling::{CoolingConfig, CoolingMode, CoolingOutput, CoolingPlant};
use crate::facility::power::{PowerConfig, PowerDistribution};
use crate::facility::weather::{Weather, WeatherConfig};
use crate::faults::{
    Fault, FaultInjector, FaultKind, FaultSchedule, TelemetryFault, TelemetryFaultKind,
    TelemetryFaultState,
};
use crate::hardware::network::{Network, NetworkConfig};
use crate::hardware::node::{Node, NodeConfig, NodeId};
use crate::hardware::rack::{build_racks, rack_of, Rack, RackId};
use crate::scheduler::job::{JobClass, JobId, JobState};
use crate::scheduler::placement::{FirstFit, PlacementContext, PlacementPolicy};
use crate::scheduler::Scheduler;
use crate::workload::{WorkloadConfig, WorkloadGenerator};
use oda_serve::config::ServingConfig;
use oda_serve::net::ServerNet;
use oda_serve::server::Server;
use oda_telemetry::bus::TelemetryBus;
use oda_telemetry::cluster::{ClusterConfig, ClusterCoordinator};
use oda_telemetry::metrics::MetricsRegistry;
use oda_telemetry::reading::{Reading, ReadingBatch, Timestamp};
use oda_telemetry::sensor::{SensorId, SensorKind, SensorRegistry, Unit};
use oda_telemetry::storage::{
    open_backend, BackendKind, RecoveryReport, SimFs, StorageBackend, StorageConfig, StorageFs,
};
use oda_telemetry::store::{RollupConfig, TimeSeriesStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Base for ids handed to operator-submitted jobs (stress tests, what-if
/// replays) so they never collide with workload-generated ids.
const CUSTOM_JOB_ID_BASE: u64 = 1 << 62;

/// Full configuration of a simulated site.
#[derive(Debug, Clone)]
pub struct DataCenterConfig {
    /// Number of racks.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Inlet-temperature penalty of the worst-placed rack, °C.
    pub max_rack_inlet_offset_c: f64,
    /// Model integration step, milliseconds.
    pub tick_ms: u64,
    /// Publish telemetry every this many ticks.
    pub sample_every_ticks: u64,
    /// Ring-buffer capacity per sensor in the archive store.
    pub store_capacity: usize,
    /// Rollup-tier layout of the archive store (multi-resolution summary
    /// buckets maintained online per sensor); [`RollupConfig::none`]
    /// disables tiers for raw-only ablation runs.
    pub rollups: RollupConfig,
    /// Archive storage backend: in-memory (default), persistent (WAL +
    /// segment files), or hybrid (hot ring + cold segments). Durable
    /// backends run over a deterministic in-memory filesystem unless an
    /// explicit one is injected via
    /// [`DataCenterBuilder::storage_fs`].
    pub storage: StorageConfig,
    /// Node model parameters.
    pub node: NodeConfig,
    /// Cooling-plant parameters.
    pub cooling: CoolingConfig,
    /// Initial inlet-water setpoint, °C.
    pub initial_setpoint_c: f64,
    /// Power-distribution parameters.
    pub power: PowerConfig,
    /// Climate parameters.
    pub weather: WeatherConfig,
    /// Interconnect parameters.
    pub network: NetworkConfig,
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// Worker-pool width for analytics runtimes driven against this site
    /// (`oda_core::runtime::RuntimeConfig::workers`). The simulator
    /// itself stays single-threaded and deterministic; this field plumbs
    /// the site's analytics parallelism to soaks, benches and examples so
    /// site + runtime are configured in one place. `1` = serial.
    pub workers: usize,
    /// Collector-shard count for the distributed collector hierarchy.
    /// `0` (the default) runs unsharded: the site bus alone archives
    /// telemetry. `n > 0` additionally stands up a
    /// [`ClusterCoordinator`] with `n` shards that ingests the identical
    /// stream, so sharded and unsharded query paths answer bit-identically.
    pub shards: usize,
}

impl DataCenterConfig {
    /// A small site: 4 racks × 8 nodes = 32 nodes. The default experiment
    /// substrate — large enough for placement and contention effects, small
    /// enough for fast test suites.
    pub fn small() -> Self {
        DataCenterConfig {
            racks: 4,
            nodes_per_rack: 8,
            max_rack_inlet_offset_c: 3.0,
            tick_ms: 1_000,
            sample_every_ticks: 10,
            store_capacity: 100_000,
            rollups: RollupConfig::default(),
            storage: StorageConfig::default(),
            node: NodeConfig::default(),
            cooling: CoolingConfig::default(),
            initial_setpoint_c: 30.0,
            power: PowerConfig {
                ups_capacity_kw: 40.0,
                fixed_overhead_kw: 2.0,
                ..PowerConfig::default()
            },
            weather: WeatherConfig::default(),
            network: NetworkConfig::default(),
            workload: WorkloadConfig::default(),
            workers: 1,
            shards: 0,
        }
    }

    /// A tiny site for unit tests: 2 racks × 4 nodes.
    pub fn tiny() -> Self {
        DataCenterConfig {
            racks: 2,
            nodes_per_rack: 4,
            store_capacity: 20_000,
            power: PowerConfig {
                ups_capacity_kw: 10.0,
                fixed_overhead_kw: 0.5,
                ..PowerConfig::default()
            },
            workload: WorkloadConfig {
                mean_interarrival_s: 60.0,
                max_nodes: 4,
                ..WorkloadConfig::default()
            },
            ..Self::small()
        }
    }

    /// A mid-size site: 8 racks × 16 nodes = 128 nodes, for the heavier
    /// experiments and benches.
    pub fn medium() -> Self {
        DataCenterConfig {
            racks: 8,
            nodes_per_rack: 16,
            power: PowerConfig {
                ups_capacity_kw: 120.0,
                fixed_overhead_kw: 5.0,
                ..PowerConfig::default()
            },
            workload: WorkloadConfig {
                mean_interarrival_s: 45.0,
                max_nodes: 16,
                ..WorkloadConfig::default()
            },
            ..Self::small()
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.racks * self.nodes_per_rack
    }
}

/// Interned sensor ids for the whole site.
#[derive(Debug, Clone)]
pub struct Sensors {
    /// `/facility/outside_temp`
    pub outside_temp: SensorId,
    /// `/facility/cooling/power_kw`
    pub cooling_power: SensorId,
    /// `/facility/cooling/setpoint_c`
    pub cooling_setpoint: SensorId,
    /// `/facility/cooling/inlet_c` (delivered water temperature)
    pub cooling_inlet: SensorId,
    /// `/facility/cooling/mode` (0 = free cooling, 1 = chiller)
    pub cooling_mode: SensorId,
    /// `/facility/cooling/cop`
    pub cooling_cop: SensorId,
    /// `/facility/power/utility_kw`
    pub utility_power: SensorId,
    /// `/facility/power/it_kw`
    pub it_power: SensorId,
    /// `/facility/power/loss_kw`
    pub loss_power: SensorId,
    /// `/facility/pue`
    pub pue: SensorId,
    /// `/hw/node{i}/power_w`
    pub node_power: Vec<SensorId>,
    /// `/hw/node{i}/temp_c`
    pub node_temp: Vec<SensorId>,
    /// `/hw/node{i}/util`
    pub node_util: Vec<SensorId>,
    /// `/hw/node{i}/freq_ghz`
    pub node_freq: Vec<SensorId>,
    /// `/hw/node{i}/mem_gib`
    pub node_mem: Vec<SensorId>,
    /// `/hw/node{i}/fan`
    pub node_fan: Vec<SensorId>,
    /// `/sw/node{i}/sys_mem_gib` — memory held by the system software
    /// stack (daemons, kernel slabs), reported separately from job memory
    /// as production node exporters do. This is where software memory
    /// leaks show without job-churn interference.
    pub node_sys_mem: Vec<SensorId>,
    /// `/hw/rack{r}/uplink_offered_gbps`
    pub rack_offered: Vec<SensorId>,
    /// `/hw/rack{r}/uplink_contention`
    pub rack_contention: Vec<SensorId>,
    /// `/sw/sched/queue_len`
    pub queue_len: SensorId,
    /// `/sw/sched/running`
    pub running: SensorId,
    /// `/sw/sched/utilization`
    pub sched_util: SensorId,
    /// `/sw/sched/completed_total`
    pub completed_total: SensorId,
    /// `/sw/sched/killed_total`
    pub killed_total: SensorId,
    /// `/app/active_jobs`
    pub active_jobs: SensorId,
    /// `/app/arrivals_total`
    pub arrivals_total: SensorId,
}

impl Sensors {
    fn register(reg: &SensorRegistry, nodes: usize, racks: usize) -> Self {
        let s = |name: &str, kind, unit| reg.register(name, kind, unit);
        Sensors {
            outside_temp: s(
                "/facility/outside_temp",
                SensorKind::Temperature,
                Unit::Celsius,
            ),
            cooling_power: s(
                "/facility/cooling/power_kw",
                SensorKind::Power,
                Unit::Kilowatts,
            ),
            cooling_setpoint: s(
                "/facility/cooling/setpoint_c",
                SensorKind::Temperature,
                Unit::Celsius,
            ),
            cooling_inlet: s(
                "/facility/cooling/inlet_c",
                SensorKind::Temperature,
                Unit::Celsius,
            ),
            cooling_mode: s(
                "/facility/cooling/mode",
                SensorKind::Count,
                Unit::Dimensionless,
            ),
            cooling_cop: s(
                "/facility/cooling/cop",
                SensorKind::Indicator,
                Unit::Dimensionless,
            ),
            utility_power: s(
                "/facility/power/utility_kw",
                SensorKind::Power,
                Unit::Kilowatts,
            ),
            it_power: s("/facility/power/it_kw", SensorKind::Power, Unit::Kilowatts),
            loss_power: s(
                "/facility/power/loss_kw",
                SensorKind::Power,
                Unit::Kilowatts,
            ),
            pue: s("/facility/pue", SensorKind::Indicator, Unit::Dimensionless),
            node_power: (0..nodes)
                .map(|i| {
                    s(
                        &format!("/hw/node{i}/power_w"),
                        SensorKind::Power,
                        Unit::Watts,
                    )
                })
                .collect(),
            node_temp: (0..nodes)
                .map(|i| {
                    s(
                        &format!("/hw/node{i}/temp_c"),
                        SensorKind::Temperature,
                        Unit::Celsius,
                    )
                })
                .collect(),
            node_util: (0..nodes)
                .map(|i| {
                    s(
                        &format!("/hw/node{i}/util"),
                        SensorKind::Utilization,
                        Unit::Fraction,
                    )
                })
                .collect(),
            node_freq: (0..nodes)
                .map(|i| {
                    s(
                        &format!("/hw/node{i}/freq_ghz"),
                        SensorKind::Frequency,
                        Unit::Megahertz,
                    )
                })
                .collect(),
            node_mem: (0..nodes)
                .map(|i| {
                    s(
                        &format!("/hw/node{i}/mem_gib"),
                        SensorKind::Count,
                        Unit::Dimensionless,
                    )
                })
                .collect(),
            node_fan: (0..nodes)
                .map(|i| {
                    s(
                        &format!("/hw/node{i}/fan"),
                        SensorKind::Utilization,
                        Unit::Fraction,
                    )
                })
                .collect(),
            node_sys_mem: (0..nodes)
                .map(|i| {
                    s(
                        &format!("/sw/node{i}/sys_mem_gib"),
                        SensorKind::Count,
                        Unit::Dimensionless,
                    )
                })
                .collect(),
            rack_offered: (0..racks)
                .map(|r| {
                    s(
                        &format!("/hw/rack{r}/uplink_offered_gbps"),
                        SensorKind::Rate,
                        Unit::BytesPerSecond,
                    )
                })
                .collect(),
            rack_contention: (0..racks)
                .map(|r| {
                    s(
                        &format!("/hw/rack{r}/uplink_contention"),
                        SensorKind::Indicator,
                        Unit::Fraction,
                    )
                })
                .collect(),
            queue_len: s(
                "/sw/sched/queue_len",
                SensorKind::Count,
                Unit::Dimensionless,
            ),
            running: s("/sw/sched/running", SensorKind::Count, Unit::Dimensionless),
            sched_util: s(
                "/sw/sched/utilization",
                SensorKind::Utilization,
                Unit::Fraction,
            ),
            completed_total: s(
                "/sw/sched/completed_total",
                SensorKind::Count,
                Unit::Dimensionless,
            ),
            killed_total: s(
                "/sw/sched/killed_total",
                SensorKind::Count,
                Unit::Dimensionless,
            ),
            active_jobs: s("/app/active_jobs", SensorKind::Count, Unit::Dimensionless),
            arrivals_total: s(
                "/app/arrivals_total",
                SensorKind::Count,
                Unit::Dimensionless,
            ),
        }
    }
}

/// Aggregated behavioural record of a job, built up while it runs.
///
/// This is what Applications-pillar analytics consume for per-job feature
/// work (fingerprinting, duration prediction): the telemetry-equivalent of
/// a job-level monitoring summary, without needing one sensor per job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Submitting user.
    pub user: u32,
    /// Ground-truth class (withheld from classifiers during inference).
    pub class: JobClass,
    /// Nodes allocated.
    pub nodes: u32,
    /// Submission time.
    pub submit: Timestamp,
    /// Start time.
    pub start: Option<Timestamp>,
    /// End time.
    pub end: Option<Timestamp>,
    /// Terminal state.
    pub state: JobState,
    /// Requested walltime, seconds.
    pub requested_walltime_s: f64,
    /// Total work, node-seconds.
    pub work_node_seconds: f64,
    /// Mean CPU utilization demanded over the job's life.
    pub mean_cpu: f64,
    /// Variance of the demanded CPU utilization (population).
    pub var_cpu: f64,
    /// Mean per-node memory footprint, GiB.
    pub mean_mem_gib: f64,
    /// Mean per-node network demand, GB/s.
    pub mean_net_gbps: f64,
    /// Total energy consumed by the job's nodes, joules.
    pub energy_j: f64,
    /// Number of samples accumulated.
    pub samples: u64,
}

impl JobRecord {
    fn accumulate(&mut self, cpu: f64, mem: f64, net: f64, power_w: f64, dt_s: f64) {
        // Welford update for the cpu stream.
        self.samples += 1;
        let n = self.samples as f64;
        let d = cpu - self.mean_cpu;
        self.mean_cpu += d / n;
        self.var_cpu += d * (cpu - self.mean_cpu);
        self.mean_mem_gib += (mem - self.mean_mem_gib) / n;
        self.mean_net_gbps += (net - self.mean_net_gbps) / n;
        self.energy_j += power_w * dt_s;
    }

    /// Population variance of the cpu stream.
    pub fn cpu_variance(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.var_cpu / self.samples as f64
        }
    }

    /// Actual runtime, seconds (end − start).
    pub fn runtime_s(&self) -> Option<f64> {
        match (self.start, self.end) {
            (Some(s), Some(e)) => Some(e.millis_since(s) as f64 / 1_000.0),
            _ => None,
        }
    }
}

/// Point-in-time operational summary (what a wallboard would show).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Simulated time.
    pub now: Timestamp,
    /// Outside air temperature, °C.
    pub outside_c: f64,
    /// Cooling setpoint, °C.
    pub setpoint_c: f64,
    /// Delivered loop temperature, °C.
    pub inlet_c: f64,
    /// `true` when the chiller (not free cooling) served the loop.
    pub on_chiller: bool,
    /// IT power, kW.
    pub it_power_kw: f64,
    /// Cooling-plant power, kW.
    pub cooling_power_kw: f64,
    /// Utility feed, kW.
    pub total_power_kw: f64,
    /// Power usage effectiveness.
    pub pue: f64,
    /// Mean node temperature, °C.
    pub avg_node_temp_c: f64,
    /// Hottest node temperature, °C.
    pub max_node_temp_c: f64,
    /// Scheduler queue length.
    pub queue_len: usize,
    /// Running job count.
    pub running: usize,
    /// Node allocation fraction.
    pub utilization: f64,
    /// Jobs completed so far.
    pub completed: u64,
    /// Jobs killed so far.
    pub killed: u64,
    /// IT energy since start, kWh.
    pub it_energy_kwh: f64,
    /// Utility energy since start, kWh.
    pub utility_energy_kwh: f64,
}

/// The simulated data center.
pub struct DataCenter {
    config: DataCenterConfig,
    clock: SimClock,
    weather_rng: SimRng,
    workload_rng: SimRng,
    weather: Weather,
    cooling: CoolingPlant,
    power: PowerDistribution,
    nodes: Vec<Node>,
    racks: Vec<Rack>,
    network: Network,
    scheduler: Scheduler,
    workload: WorkloadGenerator,
    injector: FaultInjector,
    telemetry_faults: Option<TelemetryFaultState>,
    registry: SensorRegistry,
    bus: Arc<TelemetryBus>,
    /// Sharded collector hierarchy (built when `config.shards > 0`). Fed
    /// the same post-corruption stream as the site bus, so either plane
    /// answers any query with the same digest.
    cluster: Option<Arc<ClusterCoordinator>>,
    /// Filesystem the archive backend lives on; held so the archive can be
    /// restarted (recovery drill) over the same durable state.
    archive_fs: Arc<dyn StorageFs>,
    /// Serving-layer configuration applied by [`DataCenter::serve`].
    serving: ServingConfig,
    sensors: Sensors,
    // Fault state applied to models each tick.
    leak_extra_gib: Vec<f64>,
    leak_rate_gib_per_min: Vec<f64>,
    contention_severity: Vec<f64>,
    hog_demand: Vec<f64>,
    // Live + finished job records.
    records: HashMap<JobId, JobRecord>,
    finished: Vec<JobRecord>,
    arrivals_total: u64,
    next_custom_id: u64,
    // Last-tick plant outputs (telemetry + snapshot).
    last_cooling: CoolingOutput,
    last_it_kw: f64,
    last_utility_kw: f64,
    last_loss_kw: f64,
    it_energy_kwh: f64,
    utility_energy_kwh: f64,
}

/// Staged constructor for [`DataCenter`] — the one way to build a site.
///
/// Every knob that used to be a positional constructor argument is a
/// chained setter with a sensible default, so call sites state only what
/// they care about:
///
/// ```
/// use oda_sim::prelude::*;
///
/// // A default site, deterministic under its seed.
/// let dc = DataCenter::builder(DataCenterConfig::tiny()).seed(42).build();
/// assert_eq!(dc.config().workers, DataCenterConfig::tiny().workers);
/// ```
///
/// Defaults: seed `0`, the process-wide [`MetricsRegistry::global`], a
/// fresh deterministic [`SimFs`] for durable storage, and the
/// [`ServingConfig`] defaults for [`DataCenter::serve`]. The `workers`,
/// `rollups` and `storage` setters override the corresponding
/// [`DataCenterConfig`] fields in place.
pub struct DataCenterBuilder {
    config: DataCenterConfig,
    seed: u64,
    metrics: Option<MetricsRegistry>,
    archive_fs: Option<Arc<dyn StorageFs>>,
    serving: ServingConfig,
}

impl DataCenterBuilder {
    /// Starts a builder over `config`.
    pub fn new(config: DataCenterConfig) -> Self {
        DataCenterBuilder {
            config,
            seed: 0,
            metrics: None,
            archive_fs: None,
            serving: ServingConfig::default(),
        }
    }

    /// Seeds every stochastic model (weather, workload, faults). Two sites
    /// built from the same config and seed evolve identically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses an explicit metrics registry for the telemetry plane (store
    /// write path + bus publish path + serving frontend) instead of the
    /// process-wide [`MetricsRegistry::global`] — isolates self-metrics per
    /// instance for tests and side-by-side soaks.
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Runs the archive backend over an explicit storage filesystem, so
    /// recovery tests can reopen a site over pre-existing durable state (or
    /// a fault-injecting [`SimFs`]). Defaults to a fresh [`SimFs`].
    pub fn storage_fs(mut self, fs: Arc<dyn StorageFs>) -> Self {
        self.archive_fs = Some(fs);
        self
    }

    /// Overrides `config.workers` — the analytics-plane parallelism hint.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Overrides `config.shards` — the collector-shard count. `0` keeps
    /// the site unsharded; `n > 0` stands up a [`ClusterCoordinator`]
    /// with `n` message-passing shards alongside the site bus.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Overrides `config.rollups` — the store's pre-aggregation tiers.
    pub fn rollups(mut self, rollups: RollupConfig) -> Self {
        self.config.rollups = rollups;
        self
    }

    /// Overrides `config.storage` — the durable archive backend selection.
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.config.storage = storage;
        self
    }

    /// Sets the quota/cache/fan-out configuration used by
    /// [`DataCenter::serve`].
    pub fn serving(mut self, serving: ServingConfig) -> Self {
        self.serving = serving;
        self
    }

    /// Builds the site.
    pub fn build(self) -> DataCenter {
        let DataCenterBuilder {
            config,
            seed,
            metrics,
            archive_fs,
            serving,
        } = self;
        let metrics = metrics.unwrap_or_else(MetricsRegistry::global);
        let archive_fs = archive_fs.unwrap_or_else(|| Arc::new(SimFs::new()));
        DataCenter::build(config, seed, metrics, archive_fs, serving)
    }
}

impl DataCenter {
    /// Starts a [`DataCenterBuilder`] over `config`.
    pub fn builder(config: DataCenterConfig) -> DataCenterBuilder {
        DataCenterBuilder::new(config)
    }

    /// Constructor body shared by every builder path.
    fn build(
        config: DataCenterConfig,
        seed: u64,
        metrics: MetricsRegistry,
        archive_fs: Arc<dyn StorageFs>,
        serving: ServingConfig,
    ) -> Self {
        let mut root_rng = SimRng::new(seed);
        let weather_rng = root_rng.fork();
        let mut workload_rng = root_rng.fork();
        let node_count = config.node_count();
        let registry = SensorRegistry::new();
        let sensors = Sensors::register(&registry, node_count, config.racks);
        let bus = Self::build_bus(&config, registry.clone(), metrics, Arc::clone(&archive_fs));
        let cluster = Self::build_cluster(&config, &registry);
        let racks = build_racks(
            config.racks,
            config.nodes_per_rack,
            config.max_rack_inlet_offset_c,
        );
        let nodes = (0..node_count)
            .map(|i| {
                Node::new(
                    NodeId(i as u32),
                    config.node.clone(),
                    config.initial_setpoint_c,
                )
            })
            .collect();
        let workload = WorkloadGenerator::new(config.workload.clone(), &mut workload_rng);
        DataCenter {
            clock: SimClock::new(config.tick_ms),
            weather: Weather::new(config.weather.clone()),
            cooling: CoolingPlant::new(config.cooling.clone(), config.initial_setpoint_c),
            power: PowerDistribution::new(config.power.clone()),
            network: Network::new(config.network.clone(), config.racks),
            scheduler: Scheduler::new(node_count, Box::new(FirstFit)),
            injector: FaultInjector::new(),
            telemetry_faults: None,
            leak_extra_gib: vec![0.0; node_count],
            leak_rate_gib_per_min: vec![0.0; node_count],
            contention_severity: vec![0.0; node_count],
            hog_demand: vec![0.0; config.racks],
            records: HashMap::new(),
            finished: Vec::new(),
            arrivals_total: 0,
            next_custom_id: 0,
            last_cooling: CoolingOutput {
                power_kw: 0.0,
                delivered_inlet_c: config.initial_setpoint_c,
                active_mode: CoolingMode::FreeCooling,
                chiller_cop: 0.0,
            },
            last_it_kw: 0.0,
            last_utility_kw: 0.0,
            last_loss_kw: 0.0,
            it_energy_kwh: 0.0,
            utility_energy_kwh: 0.0,
            weather_rng,
            workload_rng,
            nodes,
            racks,
            workload,
            registry,
            bus,
            cluster,
            archive_fs,
            sensors,
            config,
            serving,
        }
    }

    /// Stands up the collector-shard hierarchy when `config.shards > 0`.
    /// The shards archive on durable backends even when the site itself is
    /// in-memory, so a node-failure rebalance can replay the failed
    /// shard's slice losslessly.
    fn build_cluster(
        config: &DataCenterConfig,
        registry: &SensorRegistry,
    ) -> Option<Arc<ClusterCoordinator>> {
        if config.shards == 0 {
            return None;
        }
        let storage = match config.storage.backend {
            BackendKind::InMemory => StorageConfig::hybrid(),
            _ => config.storage.clone(),
        };
        let cluster = ClusterCoordinator::new(
            ClusterConfig {
                shards: config.shards,
                per_sensor_capacity: config.store_capacity,
                rollups: config.rollups.clone(),
                storage,
                ..ClusterConfig::default()
            },
            registry.clone(),
        )
        .expect("cluster shards must open over fresh in-memory filesystems");
        Some(Arc::new(cluster))
    }

    /// Builds a multi-tenant query/subscription frontend over `net`, wired
    /// to this site's registry, hot store, telemetry bus and metrics
    /// registry. Quotas and cache sizing come from
    /// [`DataCenterBuilder::serving`]. Drive it with
    /// [`Server::poll`] from the experiment loop (or a
    /// [`oda_serve::net::RealNet`] listener thread).
    pub fn serve<N: ServerNet>(&self, net: Arc<N>) -> Server<N> {
        let server = Server::new(
            net,
            self.serving.clone(),
            self.registry.clone(),
            Arc::clone(self.store()),
        )
        .with_bus(Arc::clone(&self.bus))
        .with_metrics(self.metrics().clone());
        match &self.cluster {
            Some(cluster) => server.with_cluster(Arc::clone(cluster)),
            None => server,
        }
    }

    /// Builds the archive backend selected by `config.storage` over `fs`
    /// (replaying any durable state into a fresh hot store) and attaches it
    /// to a new bus.
    fn build_bus(
        config: &DataCenterConfig,
        registry: SensorRegistry,
        metrics: MetricsRegistry,
        fs: Arc<dyn StorageFs>,
    ) -> Arc<TelemetryBus> {
        let store = Arc::new(TimeSeriesStore::with_rollups(
            config.store_capacity,
            TimeSeriesStore::DEFAULT_SHARDS,
            metrics.clone(),
            config.rollups.clone(),
        ));
        let backend = open_backend(&config.storage, fs, store)
            .expect("archive backend must open over the site's storage fs");
        Arc::new(TelemetryBus::with_archive(registry, backend, metrics))
    }

    /// Simulates an analytics-plane process restart: flushes the archive,
    /// drops the bus and hot store, and rebuilds them over the same storage
    /// filesystem — durable backends recover from WAL + segments, the
    /// in-memory backend comes back empty. Existing bus subscriptions are
    /// disconnected and must be re-established. Returns the recovery report
    /// for durable backends.
    pub fn restart_archive(&mut self) -> Option<RecoveryReport> {
        if let Some(archive) = self.bus.archive() {
            let _ = archive.flush();
        }
        let metrics = self.bus.metrics().clone();
        self.bus = Self::build_bus(
            &self.config,
            self.registry.clone(),
            metrics,
            Arc::clone(&self.archive_fs),
        );
        self.bus.archive().and_then(|a| a.recovery().cloned())
    }

    // ----- accessors -------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Site configuration.
    pub fn config(&self) -> &DataCenterConfig {
        &self.config
    }

    /// The sensor registry (shared with the bus).
    pub fn registry(&self) -> &SensorRegistry {
        &self.registry
    }

    /// The telemetry bus (subscribe here).
    pub fn bus(&self) -> &Arc<TelemetryBus> {
        &self.bus
    }

    /// The sharded collector hierarchy, when the site was built with
    /// [`DataCenterBuilder::shards`] (or `config.shards`) > 0.
    pub fn cluster(&self) -> Option<&Arc<ClusterCoordinator>> {
        self.cluster.as_ref()
    }

    /// The archive store behind the bus.
    pub fn store(&self) -> &Arc<TimeSeriesStore> {
        self.bus
            .store()
            .expect("data center bus always has a store")
    }

    /// The archive backend behind the bus (in-memory, persistent or hybrid).
    pub fn archive(&self) -> &Arc<dyn StorageBackend> {
        self.bus
            .archive()
            .expect("data center bus always has an archive")
    }

    /// The metrics registry the telemetry plane records into.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.bus.metrics()
    }

    /// Interned sensor ids.
    pub fn sensors(&self) -> &Sensors {
        &self.sensors
    }

    /// The scheduler (read access for experiments).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Node state (read access; analytics should prefer telemetry).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Rack layout.
    pub fn racks(&self) -> &[Rack] {
        &self.racks
    }

    /// Ground truth: the fault schedule.
    pub fn fault_schedule(&self) -> &[Fault] {
        self.injector.schedule()
    }

    /// Ground truth: whether `node` has an active fault at `t`.
    pub fn node_is_faulty(&self, node: NodeId, t: Timestamp) -> bool {
        self.injector.node_is_faulty(node, t)
    }

    /// Records of all finished jobs, in completion order.
    pub fn finished_jobs(&self) -> &[JobRecord] {
        &self.finished
    }

    /// Records of currently-running jobs.
    pub fn running_jobs(&self) -> Vec<&JobRecord> {
        self.records.values().collect()
    }

    /// Total jobs submitted so far.
    pub fn arrivals_total(&self) -> u64 {
        self.arrivals_total
    }

    // ----- actuation (the knobs prescriptive ODA turns) --------------------

    /// Sets one node's DVFS frequency, GHz.
    pub fn set_node_freq(&mut self, node: NodeId, ghz: f64) {
        self.nodes[node.index()].set_freq_ghz(ghz);
    }

    /// Sets every node's DVFS frequency, GHz.
    pub fn set_all_freq(&mut self, ghz: f64) {
        for n in &mut self.nodes {
            n.set_freq_ghz(ghz);
        }
    }

    /// Sets one node's fan speed (fraction).
    pub fn set_node_fan(&mut self, node: NodeId, speed: f64) {
        self.nodes[node.index()].set_fan_speed(speed);
    }

    /// Sets the cooling-loop inlet setpoint, °C.
    pub fn set_cooling_setpoint(&mut self, c: f64) {
        self.cooling.set_setpoint_c(c);
    }

    /// Current cooling setpoint, °C.
    pub fn cooling_setpoint(&self) -> f64 {
        self.cooling.setpoint_c()
    }

    /// Sets the cooling mode knob.
    pub fn set_cooling_mode(&mut self, mode: CoolingMode) {
        self.cooling.set_mode(mode);
    }

    /// Swaps the placement policy.
    pub fn set_placement_policy(&mut self, policy: Box<dyn PlacementPolicy>) {
        self.scheduler.set_policy(policy);
    }

    /// Schedules a fault.
    pub fn inject_fault(&mut self, fault: Fault) {
        self.injector.inject(fault);
    }

    /// Installs a telemetry fault schedule, replacing any previous one.
    ///
    /// Patterns are resolved against the site's sensor registry immediately;
    /// corruption starts affecting published readings from the next tick in
    /// a schedule window. The plant itself is untouched — only what the
    /// analytics layer observes degrades.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.telemetry_faults = Some(TelemetryFaultState::new(schedule, &self.registry));
    }

    /// The installed telemetry fault state, if any (degradation ground
    /// truth: suppression/corruption counters and the active schedule).
    pub fn telemetry_faults(&self) -> Option<&TelemetryFaultState> {
        self.telemetry_faults.as_ref()
    }

    /// Submits a custom job directly (bypassing the workload generator).
    ///
    /// The job id is remapped into a reserved range so it cannot collide
    /// with generated ids; the remapped id is returned. Used for stress
    /// testing and plan-based/what-if scheduling experiments.
    pub fn submit_job(&mut self, mut job: crate::scheduler::job::Job) -> JobId {
        self.next_custom_id += 1;
        job.id = JobId(CUSTOM_JOB_ID_BASE + self.next_custom_id);
        job.submit = self.clock.now();
        job.state = JobState::Queued;
        job.assigned.clear();
        job.start = None;
        job.end = None;
        let id = job.id;
        self.arrivals_total += 1;
        self.scheduler.submit(job);
        id
    }

    /// Submits a fleet-wide stress test: `nodes` single-node compute-bound
    /// jobs of `duration_s` seconds each (at nominal clock).
    ///
    /// Periodic stress testing is the technique the paper's survey cites
    /// for improving infrastructure anomaly detection (Bortot et al.):
    /// pushing the plant and the nodes to a *known* operating point makes
    /// thermal and cooling deviations stand out far above their idle-load
    /// signal. Returns the submitted job ids.
    pub fn submit_stress_test(&mut self, nodes: u32, duration_s: f64) -> Vec<JobId> {
        (0..nodes)
            .map(|_| {
                let job = crate::scheduler::job::Job::new(
                    JobId(0), // remapped by submit_job
                    u32::MAX, // reserved "operator" user
                    JobClass::ComputeBound,
                    1,
                    duration_s,
                    duration_s * 1.5,
                    self.clock.now(),
                );
                self.submit_job(job)
            })
            .collect()
    }

    // ----- simulation loop --------------------------------------------------

    /// Advances one tick.
    pub fn step(&mut self) {
        let now = self.clock.advance();
        let dt_s = self.clock.tick_secs();

        // 1. Weather.
        let outside_c = self.weather.step(now, &mut self.weather_rng);

        // 2. Faults.
        let (on, off) = self.injector.step(now);
        for f in on {
            self.apply_fault(&f.kind, true);
        }
        for f in off {
            self.apply_fault(&f.kind, false);
        }
        // Telemetry faults: activations may carry load (BurstLoad).
        if self.telemetry_faults.is_some() {
            let activated: Vec<TelemetryFault> = self
                .telemetry_faults
                .as_mut()
                .map(|tf| tf.step(now))
                .unwrap_or_default();
            for f in activated {
                match f.kind {
                    TelemetryFaultKind::BurstLoad { jobs, duration_s } => {
                        self.submit_stress_test(jobs, duration_s);
                    }
                    TelemetryFaultKind::NodeFailure { node } => {
                        // Chaos-harness node failure: fail the collector
                        // shard hosted on that node and rebalance its slice
                        // onto the survivors from the durable tier.
                        if let Some(cluster) = &self.cluster {
                            cluster.apply_node_failure(node.index());
                        }
                    }
                    _ => {}
                }
            }
        }
        // Memory leaks grow while active.
        for i in 0..self.nodes.len() {
            if self.leak_rate_gib_per_min[i] > 0.0 {
                self.leak_extra_gib[i] += self.leak_rate_gib_per_min[i] * dt_s / 60.0;
            }
        }

        // 3. Arrivals.
        for job in self.workload.arrivals(now, &mut self.workload_rng) {
            self.arrivals_total += 1;
            self.scheduler.submit(job);
        }

        // 4. Reap finished jobs, then schedule.
        for id in self.scheduler.reap(now) {
            if let Some(mut rec) = self.records.remove(&id) {
                let job = self.scheduler.job(id).expect("reaped job exists");
                rec.end = job.end;
                rec.state = job.state;
                self.finished.push(rec);
            }
        }
        let ctx = self.placement_context();
        for id in self.scheduler.schedule(now, &ctx) {
            let job = self.scheduler.job(id).expect("started job exists");
            self.records.insert(
                id,
                JobRecord {
                    id,
                    user: job.user,
                    class: job.class,
                    nodes: job.assigned.len() as u32,
                    submit: job.submit,
                    start: job.start,
                    end: None,
                    state: JobState::Running,
                    requested_walltime_s: job.requested_walltime_s,
                    work_node_seconds: job.work_node_seconds,
                    mean_cpu: 0.0,
                    var_cpu: 0.0,
                    mean_mem_gib: 0.0,
                    mean_net_gbps: 0.0,
                    energy_j: 0.0,
                    samples: 0,
                },
            );
        }

        // 5. Job demands → network → progress; set node loads.
        let running = self.scheduler.running_ids();
        let mut demands: HashMap<JobId, (f64, f64, f64)> = HashMap::new(); // cpu, mem, net
        for &id in &running {
            let job = self.scheduler.job(id).expect("running job exists");
            let x = job.phase_position(job.elapsed_s(now));
            let cpu = job.class.cpu_util(x);
            let mem = job.class.memory_gib(x);
            let net = job.class.net_gbps(x);
            demands.insert(id, (cpu, mem, net));
            // Inter-rack traffic: only jobs spanning >1 rack hit uplinks.
            let mut job_racks: Vec<RackId> = job
                .assigned
                .iter()
                .map(|&n| rack_of(n, self.config.nodes_per_rack))
                .collect();
            job_racks.sort();
            job_racks.dedup();
            if job_racks.len() > 1 {
                let total_net = net * job.assigned.len() as f64;
                self.network.offer(id.0, job_racks, total_net);
            }
        }
        // Network hogs inject external demand.
        for (r, &demand) in self.hog_demand.iter().enumerate() {
            if demand > 0.0 {
                self.network
                    .offer(u64::MAX - r as u64, vec![RackId(r as u32)], demand);
            }
        }
        let net_factors = self.network.resolve();

        // Reset loads; running jobs will set them below.
        let mut node_cpu = vec![0.0f64; self.nodes.len()];
        let mut node_mem = vec![0.0f64; self.nodes.len()];
        for &id in &running {
            let (cpu, mem, net) = demands[&id];
            let net_factor = net_factors.get(&id.0).copied().unwrap_or(1.0);
            let job = self.scheduler.job(id).expect("running job exists");
            // Mean effective compute speed across assigned nodes, including
            // CPU-contention theft.
            let mut speed_sum = 0.0;
            let mut power_sum = 0.0;
            for &n in &job.assigned {
                let steal = self.contention_severity[n.index()];
                speed_sum += self.nodes[n.index()].compute_speed() * (1.0 - steal);
                power_sum += self.nodes[n.index()].power_w();
                // A leaking node thrashes once memory saturates.
                node_cpu[n.index()] = (cpu + steal).min(1.0);
                node_mem[n.index()] = mem + self.leak_extra_gib[n.index()];
            }
            let mean_speed = speed_sum / job.assigned.len() as f64;
            // Swap thrash: if any assigned node's memory is saturated,
            // progress collapses.
            let mem_cap = self.config.node.memory_gib;
            let thrash = job
                .assigned
                .iter()
                .any(|&n| node_mem[n.index()] > mem_cap * 0.95);
            let rate =
                job.class.progress_rate(mean_speed, net_factor) * if thrash { 0.25 } else { 1.0 };
            let nodes_count = job.assigned.len() as f64;
            if let Some(j) = self.scheduler.job_mut(id) {
                j.progress_node_seconds += rate * dt_s * nodes_count;
            }
            if let Some(rec) = self.records.get_mut(&id) {
                rec.accumulate(cpu, mem, net, power_sum, dt_s);
            }
        }
        // Idle nodes with contention faults still show the rogue process.
        for (cpu, &steal) in node_cpu.iter_mut().zip(&self.contention_severity) {
            // odalint: allow(float-eq) -- exact zero is the 'no job scheduled' sentinel, not a computed value
            if *cpu == 0.0 && steal > 0.0 {
                *cpu = steal;
            }
        }
        // A leaking daemon consumes memory whether or not a job is
        // scheduled on the node.
        for (mem, &leak) in node_mem.iter_mut().zip(&self.leak_extra_gib) {
            // odalint: allow(float-eq) -- exact zero is the 'no job scheduled' sentinel, not a computed value
            if *mem == 0.0 && leak > 0.0 {
                *mem = leak;
            }
        }

        // 6. Node physics.
        let inlet = self.last_cooling.delivered_inlet_c;
        let mut it_w = 0.0;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.set_load(node_cpu[i], node_mem[i]);
            let rack = rack_of(NodeId(i as u32), self.config.nodes_per_rack);
            let offset = self.racks[rack.index()].inlet_offset_c;
            it_w += node.step(dt_s, inlet + offset);
        }
        let it_kw = it_w / 1_000.0;

        // 7. Plant + distribution + KPIs.
        let cooling_out = self.cooling.step(it_kw, outside_c);
        let power_out = self.power.step(it_kw, cooling_out.power_kw);
        self.last_cooling = cooling_out;
        self.last_it_kw = it_kw;
        self.last_utility_kw = power_out.utility_kw;
        self.last_loss_kw = power_out.distribution_loss_kw;
        let dt_h = dt_s / 3_600.0;
        self.it_energy_kwh += it_kw * dt_h;
        self.utility_energy_kwh += power_out.utility_kw * dt_h;

        // 8. Telemetry.
        if self
            .clock
            .ticks()
            .is_multiple_of(self.config.sample_every_ticks)
        {
            self.publish(now, outside_c);
        }
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs for `hours` of simulated time.
    pub fn run_for_hours(&mut self, hours: f64) {
        let ticks = (hours * 3_600_000.0 / self.config.tick_ms as f64).ceil() as u64;
        self.run_ticks(ticks);
    }

    /// Current PUE (utility / IT), `1.0` when idle.
    pub fn pue(&self) -> f64 {
        if self.last_it_kw > 1e-9 {
            self.last_utility_kw / self.last_it_kw
        } else {
            1.0
        }
    }

    /// Operational snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let temps: Vec<f64> = self.nodes.iter().map(|n| n.temp_c()).collect();
        let stats = self.scheduler.stats();
        Snapshot {
            now: self.clock.now(),
            outside_c: self.weather.current_c(),
            setpoint_c: self.cooling.setpoint_c(),
            inlet_c: self.last_cooling.delivered_inlet_c,
            on_chiller: self.last_cooling.active_mode == CoolingMode::Chiller,
            it_power_kw: self.last_it_kw,
            cooling_power_kw: self.last_cooling.power_kw,
            total_power_kw: self.last_utility_kw,
            pue: self.pue(),
            avg_node_temp_c: temps.iter().sum::<f64>() / temps.len().max(1) as f64,
            max_node_temp_c: temps.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            queue_len: self.scheduler.queue_len(),
            running: self.scheduler.running_len(),
            utilization: self.scheduler.utilization(self.nodes.len()),
            completed: stats.completed,
            killed: stats.killed,
            it_energy_kwh: self.it_energy_kwh,
            utility_energy_kwh: self.utility_energy_kwh,
        }
    }

    // ----- internals --------------------------------------------------------

    fn placement_context(&self) -> PlacementContext {
        PlacementContext {
            node_temps_c: self.nodes.iter().map(|n| n.temp_c()).collect(),
            node_power_w: self.nodes.iter().map(|n| n.power_w()).collect(),
            rack_inlet_offsets_c: self.racks.iter().map(|r| r.inlet_offset_c).collect(),
            nodes_per_rack: self.config.nodes_per_rack,
        }
    }

    fn apply_fault(&mut self, kind: &FaultKind, activate: bool) {
        match *kind {
            FaultKind::FanFailure { node } => {
                self.nodes[node.index()].set_fan_failed(activate);
                if !activate {
                    self.nodes[node.index()].set_fan_speed(0.3);
                }
            }
            FaultKind::ThermalDegradation { node, factor } => {
                self.nodes[node.index()].set_thermal_degradation(if activate {
                    factor
                } else {
                    1.0
                });
            }
            FaultKind::MemoryLeak { node, gib_per_min } => {
                self.leak_rate_gib_per_min[node.index()] = if activate { gib_per_min } else { 0.0 };
                if !activate {
                    self.leak_extra_gib[node.index()] = 0.0;
                }
            }
            FaultKind::CpuContention { node, severity } => {
                self.contention_severity[node.index()] = if activate {
                    severity.clamp(0.0, 1.0)
                } else {
                    0.0
                };
            }
            FaultKind::NetworkHog { rack, demand_gbps } => {
                self.hog_demand[rack.index()] = if activate { demand_gbps } else { 0.0 };
            }
            FaultKind::CoolingDegradation { factor } => {
                self.cooling
                    .set_degradation(if activate { factor } else { 1.0 });
            }
        }
    }

    fn publish(&mut self, now: Timestamp, outside_c: f64) {
        // Collect the nominal readings first, then pass each through the
        // telemetry-fault corruptor (if installed) on its way to the bus.
        let mut nominal: Vec<(SensorId, f64)> = Vec::with_capacity(64);
        let mut one = |sensor, value| nominal.push((sensor, value));
        let s = &self.sensors;
        one(s.outside_temp, outside_c);
        one(s.cooling_power, self.last_cooling.power_kw);
        one(s.cooling_setpoint, self.cooling.setpoint_c());
        one(s.cooling_inlet, self.last_cooling.delivered_inlet_c);
        one(
            s.cooling_mode,
            if self.last_cooling.active_mode == CoolingMode::Chiller {
                1.0
            } else {
                0.0
            },
        );
        one(s.cooling_cop, self.last_cooling.chiller_cop);
        one(s.utility_power, self.last_utility_kw);
        one(s.it_power, self.last_it_kw);
        one(s.loss_power, self.last_loss_kw);
        one(s.pue, self.pue());
        for (i, node) in self.nodes.iter().enumerate() {
            one(s.node_power[i], node.power_w());
            one(s.node_temp[i], node.temp_c());
            one(s.node_util[i], node.utilization());
            one(s.node_freq[i], node.freq_ghz());
            one(s.node_mem[i], node.memory_used_gib());
            one(s.node_sys_mem[i], 2.0 + self.leak_extra_gib[i]);
            one(s.node_fan[i], node.fan_speed());
        }
        for r in 0..self.racks.len() {
            let link = self.network.link(RackId(r as u32));
            one(s.rack_offered[r], link.offered_gbps);
            one(s.rack_contention[r], link.contention_factor);
        }
        let stats = self.scheduler.stats();
        one(s.queue_len, self.scheduler.queue_len() as f64);
        one(s.running, self.scheduler.running_len() as f64);
        one(s.sched_util, self.scheduler.utilization(self.nodes.len()));
        one(s.completed_total, stats.completed as f64);
        one(s.killed_total, stats.killed as f64);
        one(s.active_jobs, self.scheduler.running_len() as f64);
        one(s.arrivals_total, self.arrivals_total as f64);
        for (sensor, value) in nominal {
            let reading = Reading::new(now, value);
            let reading = match self.telemetry_faults.as_mut() {
                Some(tf) => match tf.corrupt(sensor, reading) {
                    Some(r) => r,
                    None => continue,
                },
                None => reading,
            };
            self.bus.publish(ReadingBatch::single(sensor, reading));
            // The shard hierarchy ingests the identical (post-corruption)
            // stream, so sharded and unsharded queries answer bit-identically.
            if let Some(cluster) = &self.cluster {
                cluster.ingest(ReadingBatch::single(sensor, reading));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quiet_hour_produces_sane_physics() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(1)
            .build();
        dc.run_for_hours(1.0);
        let s = dc.snapshot();
        assert!(
            s.it_power_kw > 0.5,
            "8 idle nodes still draw power: {}",
            s.it_power_kw
        );
        assert!(s.total_power_kw > s.it_power_kw);
        assert!(s.pue > 1.0 && s.pue < 2.5, "pue {}", s.pue);
        assert!(s.avg_node_temp_c > 20.0 && s.avg_node_temp_c < 95.0);
        assert!(s.it_energy_kwh > 0.0);
    }

    #[test]
    fn workload_flows_through_scheduler() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(2)
            .build();
        dc.run_for_hours(6.0);
        assert!(dc.arrivals_total() > 50);
        let s = dc.snapshot();
        assert!(
            s.completed + s.killed > 10,
            "{} finished",
            s.completed + s.killed
        );
        assert!(!dc.finished_jobs().is_empty());
        // Records carry accumulated features.
        let rec = &dc.finished_jobs()[0];
        assert!(rec.samples > 0);
        assert!(rec.mean_cpu > 0.0);
        assert!(rec.energy_j > 0.0);
    }

    #[test]
    fn telemetry_is_archived() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(3)
            .build();
        dc.run_for_hours(0.5);
        let store = dc.store();
        let s = dc.sensors();
        assert!(store.series_len(s.pue) > 100);
        assert!(store.series_len(s.node_power[0]) > 100);
        assert!(store.latest(s.outside_temp).is_some());
    }

    #[test]
    fn archive_maintains_rollup_tiers_online() {
        use oda_telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};

        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(11)
            .build();
        dc.run_for_hours(0.5);
        // The default rollup layout is wired through DataCenterConfig, so the
        // archive reports non-empty tier occupancy after half an hour.
        let report = dc.store().health_report();
        assert!(!report.rollups.is_empty(), "rollup occupancy missing");
        assert!(
            report.rollups.iter().any(|t| t.buckets > 0),
            "no rollup buckets folded: {:?}",
            report.rollups
        );
        // A long-window fleet mean over PUE is served from tiers: the planner
        // records a hit and avoids rescanning most raw readings.
        let engine = QueryEngine::new(dc.store());
        let before = dc.metrics().snapshot();
        let mean = Query::sensors(dc.sensors().pue)
            .range(TimeRange::all())
            .aggregate(Aggregation::Mean)
            .run(&engine)
            .scalar()
            .expect("pue series is populated");
        assert!(mean > 1.0 && mean < 2.5, "fleet pue mean {mean}");
        let after = dc.metrics().snapshot();
        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        assert_eq!(
            delta("query_tier_hit_total"),
            1,
            "long window should tier-hit"
        );
        assert!(delta("query_readings_avoided_total") > 0);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let run = |seed| {
            let mut dc = DataCenter::builder(DataCenterConfig::tiny())
                .seed(seed)
                .build();
            dc.run_for_hours(2.0);
            let s = dc.snapshot();
            (s.it_power_kw, s.completed, s.pue)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fan_failure_fault_heats_the_node() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(4)
            .build();
        dc.inject_fault(Fault::new(
            FaultKind::FanFailure { node: NodeId(0) },
            Timestamp::from_mins(10),
            Timestamp::from_mins(120),
        ));
        dc.run_for_hours(1.0);
        let victim = dc.node(NodeId(0)).temp_c();
        // Compare against the same node position in a fault-free twin.
        let mut clean = DataCenter::builder(DataCenterConfig::tiny())
            .seed(4)
            .build();
        clean.run_for_hours(1.0);
        let healthy = clean.node(NodeId(0)).temp_c();
        assert!(
            victim > healthy + 3.0,
            "victim {victim} vs healthy {healthy}"
        );
        assert!(dc.node_is_faulty(NodeId(0), Timestamp::from_mins(30)));
    }

    #[test]
    fn dvfs_knob_reduces_it_power() {
        let mut fast = DataCenter::builder(DataCenterConfig::tiny())
            .seed(5)
            .build();
        fast.run_for_hours(2.0);
        let mut slow = DataCenter::builder(DataCenterConfig::tiny())
            .seed(5)
            .build();
        slow.set_all_freq(1.5);
        slow.run_for_hours(2.0);
        assert!(
            slow.snapshot().it_energy_kwh < fast.snapshot().it_energy_kwh * 0.95,
            "slow {} vs fast {}",
            slow.snapshot().it_energy_kwh,
            fast.snapshot().it_energy_kwh
        );
    }

    #[test]
    fn cooling_degradation_fault_raises_pue() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(5)
            .build();
        dc.inject_fault(Fault::new(
            FaultKind::CoolingDegradation { factor: 3.0 },
            Timestamp::from_mins(30),
            Timestamp::from_mins(240),
        ));
        dc.run_for_hours(0.25); // before fault
        let before = dc.snapshot().pue;
        dc.run_for_hours(1.75); // fault active
        let during = dc.snapshot().pue;
        assert!(during > before, "pue {before} -> {during}");
    }

    #[test]
    fn custom_jobs_and_stress_tests_run() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(12)
            .build();
        let ids = dc.submit_stress_test(8, 300.0);
        assert_eq!(ids.len(), 8);
        // Ids are in the reserved range and unique.
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(ids.iter().all(|id| id.0 >= CUSTOM_JOB_ID_BASE));
        dc.run_for_hours(0.25);
        // All stress jobs finished and drove the fleet to high utilization
        // while running.
        for id in &ids {
            let job = dc.scheduler().job(*id).expect("stress job exists");
            assert_eq!(job.state, JobState::Completed, "{id:?}");
        }
        // Stress load is visible in telemetry: peak IT power well above
        // idle.
        let q = oda_telemetry::query::QueryEngine::new(dc.store());
        let it = dc.registry().lookup("/facility/power/it_kw").unwrap();
        let peak = oda_telemetry::query::Query::sensors(it)
            .aggregate(oda_telemetry::query::Aggregation::Max)
            .run(&q)
            .scalar()
            .unwrap();
        let idle_estimate = dc.node_count() as f64 * 0.1; // ~100 W/node
        assert!(peak > idle_estimate * 2.0, "peak {peak} kW");
    }

    #[test]
    fn stress_test_sharpens_thermal_fault_signal() {
        // The Bortot-style claim: a known high-load operating point makes
        // a thermal fault's absolute temperature deviation much larger
        // than at idle.
        let delta_at = |stress: bool| {
            let mut dc = DataCenter::builder(DataCenterConfig {
                workload: WorkloadConfig {
                    mean_interarrival_s: 1e9, // no background jobs
                    ..WorkloadConfig::default()
                },
                ..DataCenterConfig::tiny()
            })
            .seed(13)
            .build();
            dc.inject_fault(Fault::new(
                FaultKind::FanFailure { node: NodeId(0) },
                Timestamp::ZERO,
                Timestamp::from_hours(2),
            ));
            if stress {
                dc.submit_stress_test(8, 1_800.0);
            }
            dc.run_for_hours(0.5);
            dc.node(NodeId(0)).temp_c() - dc.node(NodeId(1)).temp_c()
        };
        let idle_delta = delta_at(false);
        let stress_delta = delta_at(true);
        assert!(
            stress_delta > idle_delta * 2.0,
            "stress {stress_delta:.1} °C vs idle {idle_delta:.1} °C"
        );
    }

    #[test]
    fn network_hog_congests_the_rack_uplink() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(14)
            .build();
        dc.inject_fault(Fault::new(
            FaultKind::NetworkHog {
                rack: RackId(0),
                demand_gbps: 100.0,
            },
            Timestamp::from_mins(5),
            Timestamp::from_hours(2),
        ));
        dc.run_for_hours(1.0);
        let q = oda_telemetry::query::QueryEngine::new(dc.store());
        let contention = dc.registry().lookup("/hw/rack0/uplink_contention").unwrap();
        let min = oda_telemetry::query::Query::sensors(contention)
            .aggregate(oda_telemetry::query::Aggregation::Min)
            .run(&q)
            .scalar()
            .unwrap();
        assert!(min < 0.4, "uplink must be heavily congested: {min}");
        // The other rack sees at most ordinary job-driven contention, far
        // milder than the hogged uplink.
        let other = dc.registry().lookup("/hw/rack1/uplink_contention").unwrap();
        let other_min = oda_telemetry::query::Query::sensors(other)
            .aggregate(oda_telemetry::query::Aggregation::Min)
            .run(&q)
            .scalar()
            .unwrap();
        assert!(
            min < other_min * 0.6,
            "hogged {min} vs ordinary {other_min}"
        );
    }

    #[test]
    fn cpu_contention_fault_shows_in_utilization_floor() {
        let mut dc = DataCenter::builder(DataCenterConfig {
            workload: WorkloadConfig {
                mean_interarrival_s: 1e9,
                ..WorkloadConfig::default()
            },
            ..DataCenterConfig::tiny()
        })
        .seed(15)
        .build();
        dc.inject_fault(Fault::new(
            FaultKind::CpuContention {
                node: NodeId(2),
                severity: 0.4,
            },
            Timestamp::from_mins(5),
            Timestamp::from_hours(2),
        ));
        dc.run_for_hours(0.5);
        // The idle victim shows the rogue process's utilization.
        assert!((dc.node(NodeId(2)).utilization() - 0.4).abs() < 1e-9);
        assert_eq!(dc.node(NodeId(3)).utilization(), 0.0);
    }

    #[test]
    fn memory_leak_grows_system_memory_telemetry() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(16)
            .build();
        dc.inject_fault(Fault::new(
            FaultKind::MemoryLeak {
                node: NodeId(1),
                gib_per_min: 1.0,
            },
            Timestamp::ZERO,
            Timestamp::from_hours(2),
        ));
        dc.run_for_hours(1.0);
        let q = oda_telemetry::query::QueryEngine::new(dc.store());
        let sys = dc.registry().lookup("/sw/node1/sys_mem_gib").unwrap();
        let last = oda_telemetry::query::Query::sensors(sys)
            .aggregate(oda_telemetry::query::Aggregation::Last)
            .run(&q)
            .scalar()
            .unwrap();
        // 1 GiB/min for 60 min, base 2 GiB.
        assert!((last - 62.0).abs() < 3.0, "sys mem {last}");
        // The healthy node stays at the daemon baseline.
        let healthy = dc.registry().lookup("/sw/node0/sys_mem_gib").unwrap();
        let h = oda_telemetry::query::Query::sensors(healthy)
            .aggregate(oda_telemetry::query::Aggregation::Max)
            .run(&q)
            .scalar()
            .unwrap();
        assert!((h - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fault_schedule_degrades_telemetry_not_physics() {
        let sched = |seed| {
            FaultSchedule::new(seed)
                .with(
                    TelemetryFaultKind::SensorDropout {
                        pattern: "/hw/node0/temp_c".into(),
                    },
                    Timestamp::from_mins(10),
                    Timestamp::from_mins(50),
                )
                .with(
                    TelemetryFaultKind::BurstLoad {
                        jobs: 4,
                        duration_s: 600.0,
                    },
                    Timestamp::from_mins(20),
                    Timestamp::from_mins(30),
                )
        };
        let mut clean = DataCenter::builder(DataCenterConfig::tiny())
            .seed(9)
            .build();
        clean.run_for_hours(1.0);
        let mut faulty = DataCenter::builder(DataCenterConfig::tiny())
            .seed(9)
            .build();
        faulty.set_fault_schedule(sched(9));
        faulty.run_for_hours(1.0);
        // The dropout leaves a hole in the archived series but the physics
        // still ran: the store simply saw fewer samples for that sensor.
        let temp0 = faulty.registry().lookup("/hw/node0/temp_c").unwrap();
        let in_window = |dc: &DataCenter| {
            dc.store()
                .range(temp0, Timestamp::from_mins(10), Timestamp::from_mins(50))
                .len()
        };
        assert_eq!(in_window(&faulty), 0, "dropout window must be empty");
        assert!(in_window(&clean) > 0, "clean run archives the window");
        let tf = faulty.telemetry_faults().unwrap();
        assert!(tf.suppressed() > 0);
        // The burst load reached the scheduler as extra operator jobs.
        assert!(
            faulty.scheduler().stats().completed + faulty.scheduler().running_len() as u64
                >= clean.scheduler().stats().completed,
        );
        // Same seed + same schedule replays identically.
        let mut again = DataCenter::builder(DataCenterConfig::tiny())
            .seed(9)
            .build();
        again.set_fault_schedule(sched(9));
        again.run_for_hours(1.0);
        assert_eq!(
            again.telemetry_faults().unwrap().suppressed(),
            tf.suppressed()
        );
        let a: Vec<_> = faulty.store().last_n(temp0, 20);
        let b: Vec<_> = again.store().last_n(temp0, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_fields_are_consistent() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(9)
            .build();
        dc.run_for_hours(1.0);
        let s = dc.snapshot();
        assert!(s.max_node_temp_c >= s.avg_node_temp_c);
        assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
        assert!(s.utility_energy_kwh >= s.it_energy_kwh);
    }
}
