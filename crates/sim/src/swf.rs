//! Standard Workload Format (SWF) import/export.
//!
//! SWF is the Parallel Workloads Archive's exchange format (Feitelson et
//! al.) and the lingua franca of the scheduler-simulation community the
//! paper's survey cites (AccaSim, Batsim, Alea all consume it). Support
//! for it makes the simulated site replayable against published traces
//! and makes its accounting exportable to the standard tooling.
//!
//! Each non-comment line holds 18 whitespace-separated fields; `-1` marks
//! unknown values. The fields this implementation reads/writes:
//!
//! | # | field | mapping here |
//! |---|---|---|
//! | 1 | job number | [`crate::scheduler::job::JobId`] |
//! | 2 | submit time (s) | submit timestamp |
//! | 3 | wait time (s) | derived on export |
//! | 4 | run time (s) | actual runtime on export; sizes work on import |
//! | 5 | allocated processors | node count |
//! | 7 | used memory (KB/proc) | mean per-node memory on export |
//! | 8 | requested processors | node count on import |
//! | 9 | requested time (s) | walltime |
//! | 11 | status | 1 = completed, 0 = killed/failed |
//! | 12 | user id | user |
//! | 14 | executable number | selects the job class on import |
//!
//! Remaining fields are written as `-1` and ignored on import.
//!
//! ```
//! use oda_sim::prelude::*;
//! use oda_sim::swf;
//!
//! let trace = swf::parse_swf(
//!     "1 30 -1 120 2 -1 -1 2 600 -1 1 7 -1 0 -1 -1 -1 -1\n",
//! );
//! assert_eq!(trace.len(), 1);
//! let mut dc = DataCenter::builder(DataCenterConfig::tiny()).seed(1).build();
//! let submitted = swf::replay(&mut dc, &trace, 0.2);
//! assert_eq!(submitted, 1);
//! ```

use crate::datacenter::{DataCenter, JobRecord};
use crate::scheduler::job::{Job, JobClass, JobId, JobState};
use oda_telemetry::reading::Timestamp;

/// Exports finished-job records as SWF text (with a header comment).
pub fn export_swf(records: &[JobRecord]) -> String {
    let mut out = String::new();
    out.push_str("; SWF export from hpc-oda simulated site\n");
    out.push_str("; UnixStartTime: 0\n");
    for r in records {
        let submit_s = r.submit.as_secs();
        let wait_s = match r.start {
            Some(s) => s.millis_since(r.submit) / 1_000,
            None => 0,
        };
        let run_s = r.runtime_s().map(|x| x.round() as i64).unwrap_or(-1);
        let status = match r.state {
            JobState::Completed => 1,
            _ => 0,
        };
        let mem_kb_per_proc = (r.mean_mem_gib * 1024.0 * 1024.0).round() as i64;
        out.push_str(&format!(
            "{} {} {} {} {} -1 {} {} {} -1 {} {} -1 -1 -1 -1 -1 -1\n",
            r.id.0,
            submit_s,
            wait_s,
            run_s,
            r.nodes,
            mem_kb_per_proc,
            r.nodes,
            r.requested_walltime_s.round() as i64,
            status,
            r.user,
        ));
    }
    out
}

/// A parsed SWF job ready for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfJob {
    /// Job number from the trace.
    pub id: u64,
    /// Submit time, seconds from trace start.
    pub submit_s: u64,
    /// Run time, seconds (used to size the work).
    pub run_s: f64,
    /// Processors/nodes requested.
    pub nodes: u32,
    /// Requested walltime, seconds.
    pub requested_s: f64,
    /// User id.
    pub user: u32,
    /// Behavioural class assigned from the executable number.
    pub class: JobClass,
}

/// Parses SWF text. Comment lines (`;`) and malformed lines are skipped;
/// jobs with unknown (≤0) runtime or processor counts are dropped, as the
/// scheduler simulators do.
pub fn parse_swf(text: &str) -> Vec<SwfJob> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 12 {
            continue;
        }
        let get = |i: usize| -> f64 { f.get(i).and_then(|s| s.parse().ok()).unwrap_or(-1.0) };
        let id = get(0);
        let submit = get(1);
        let run = get(3);
        let alloc = get(4);
        let req_procs = get(7);
        let req_time = get(8);
        let user = get(11);
        let exec = get(13);
        let nodes = if req_procs > 0.0 { req_procs } else { alloc };
        if id < 0.0 || submit < 0.0 || run <= 0.0 || nodes <= 0.0 {
            continue;
        }
        // Class from the executable number: the trace does not carry
        // behaviour, so executables map deterministically onto the class
        // vocabulary (stable across runs, varied across applications).
        // The cryptominer class is excluded — published traces are benign.
        let benign = [
            JobClass::ComputeBound,
            JobClass::MemoryBound,
            JobClass::IoBound,
            JobClass::Balanced,
        ];
        let class = benign[(exec.max(0.0) as usize) % benign.len()];
        out.push(SwfJob {
            id: id as u64,
            submit_s: submit as u64,
            run_s: run,
            nodes: nodes as u32,
            requested_s: if req_time > 0.0 { req_time } else { run * 1.5 },
            user: if user >= 0.0 { user as u32 } else { 0 },
            class,
        });
    }
    out.sort_by_key(|j| j.submit_s);
    out
}

/// Replays a parsed trace on a site: steps the simulation, submitting each
/// job when its submit time arrives, until `hours` have elapsed. Jobs are
/// sized so a full-speed machine reproduces the trace's runtimes. Returns
/// how many jobs were submitted.
///
/// One-shot: the whole window is simulated in one call. To interleave
/// replay with control actions (runtime passes, knob changes), use
/// [`Replayer`], which keeps its position in the trace across calls.
pub fn replay(dc: &mut DataCenter, trace: &[SwfJob], hours: f64) -> usize {
    let mut r = Replayer::new(trace.to_vec());
    r.advance(dc, hours)
}

/// Stateful trace replayer: remembers which jobs were already submitted,
/// so simulation can be advanced in slices with control logic in between.
#[derive(Debug, Clone)]
pub struct Replayer {
    trace: Vec<SwfJob>,
    idx: usize,
}

impl Replayer {
    /// Creates a replayer over `trace` (sorted by submit time internally).
    pub fn new(mut trace: Vec<SwfJob>) -> Self {
        trace.sort_by_key(|j| j.submit_s);
        Replayer { trace, idx: 0 }
    }

    /// Jobs not yet submitted.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.idx
    }

    /// Advances the site by `hours`, submitting trace jobs as their submit
    /// times arrive. Returns how many jobs were submitted this call.
    pub fn advance(&mut self, dc: &mut DataCenter, hours: f64) -> usize {
        let tick_ms = dc.config().tick_ms;
        let ticks = (hours * 3_600_000.0 / tick_ms as f64).ceil() as u64;
        let mut submitted = 0usize;
        for _ in 0..ticks {
            dc.step();
            let now_s = dc.now().as_secs();
            while self.idx < self.trace.len() && self.trace[self.idx].submit_s <= now_s {
                let t = &self.trace[self.idx];
                let job = Job::new(
                    JobId(0), // remapped on submission
                    t.user,
                    t.class,
                    t.nodes,
                    t.run_s * t.nodes as f64,
                    t.requested_s,
                    Timestamp::ZERO, // stamped on submission
                );
                dc.submit_job(job);
                submitted += 1;
                self.idx += 1;
            }
        }
        submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DataCenterConfig;
    use crate::workload::WorkloadConfig;

    fn quiet_site(seed: u64) -> DataCenter {
        DataCenter::builder(DataCenterConfig {
            workload: WorkloadConfig {
                mean_interarrival_s: 1e9, // replay only
                ..WorkloadConfig::default()
            },
            ..DataCenterConfig::tiny()
        })
        .seed(seed)
        .build()
    }

    #[test]
    fn export_then_parse_round_trips_the_essentials() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(61)
            .build();
        dc.run_for_hours(4.0);
        let records = dc.finished_jobs().to_vec();
        assert!(records.len() > 10);
        let text = export_swf(&records);
        assert!(text.starts_with("; SWF"));
        let parsed = parse_swf(&text);
        // Completed jobs with positive runtime survive the round trip.
        let expected = records
            .iter()
            .filter(|r| r.runtime_s().map(|x| x.round() > 0.0).unwrap_or(false))
            .count();
        assert_eq!(parsed.len(), expected);
        // Field-level spot check against the first exported record.
        let rec = records
            .iter()
            .find(|r| r.runtime_s().map(|x| x.round() > 0.0).unwrap_or(false))
            .unwrap();
        let job = parsed.iter().find(|j| j.id == rec.id.0).unwrap();
        assert_eq!(job.nodes, rec.nodes);
        assert_eq!(job.user, rec.user);
        assert_eq!(job.submit_s, rec.submit.as_secs());
        assert!((job.requested_s - rec.requested_walltime_s.round()).abs() < 1.0);
    }

    #[test]
    fn parser_skips_comments_and_garbage() {
        let text = "\
; header comment
1 0 5 100 2 -1 -1 2 200 -1 1 7 -1 0 -1 -1 -1 -1
not a job line at all
2 50 0 -1 4 -1 -1 4 100 -1 0 3 -1 1 -1 -1 -1 -1
; trailing comment
3 10 0 60 -1 -1 -1 1 90 -1 1 2 -1 2 -1 -1 -1 -1
";
        let jobs = parse_swf(text);
        // Job 2 has unknown runtime → dropped; jobs sorted by submit time.
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[1].id, 3);
        assert_eq!(jobs[0].nodes, 2);
        assert_eq!(jobs[1].requested_s, 90.0);
        assert_eq!(jobs[0].user, 7);
    }

    #[test]
    fn executable_number_maps_to_benign_classes() {
        let text = "\
1 0 0 100 1 -1 -1 1 200 -1 1 0 -1 0 -1 -1 -1 -1
2 0 0 100 1 -1 -1 1 200 -1 1 0 -1 1 -1 -1 -1 -1
3 0 0 100 1 -1 -1 1 200 -1 1 0 -1 2 -1 -1 -1 -1
4 0 0 100 1 -1 -1 1 200 -1 1 0 -1 3 -1 -1 -1 -1
5 0 0 100 1 -1 -1 1 200 -1 1 0 -1 4 -1 -1 -1 -1
";
        let jobs = parse_swf(text);
        assert_eq!(jobs[0].class, JobClass::ComputeBound);
        assert_eq!(jobs[1].class, JobClass::MemoryBound);
        assert_eq!(jobs[2].class, JobClass::IoBound);
        assert_eq!(jobs[3].class, JobClass::Balanced);
        assert_eq!(
            jobs[4].class,
            JobClass::ComputeBound,
            "wraps, never a miner"
        );
    }

    #[test]
    fn replay_runs_the_trace_with_faithful_runtimes() {
        let text = "\
1 60 0 300 2 -1 -1 2 600 -1 1 1 -1 0 -1 -1 -1 -1
2 120 0 200 1 -1 -1 1 400 -1 1 2 -1 0 -1 -1 -1 -1
";
        let trace = parse_swf(text);
        let mut dc = quiet_site(62);
        let submitted = replay(&mut dc, &trace, 1.0);
        assert_eq!(submitted, 2);
        let finished = dc.finished_jobs();
        assert_eq!(finished.len(), 2);
        for r in finished {
            assert_eq!(r.state, JobState::Completed);
        }
        // The 2-node 300 s compute-bound job runs ≈ 300 s at full clock.
        let big = finished.iter().find(|r| r.nodes == 2).unwrap();
        let rt = big.runtime_s().unwrap();
        assert!((rt - 300.0).abs() < 30.0, "runtime {rt}");
    }

    #[test]
    fn replayed_accounting_can_be_reexported() {
        let text = "1 10 0 120 1 -1 -1 1 240 -1 1 5 -1 0 -1 -1 -1 -1\n";
        let mut dc = quiet_site(63);
        replay(&mut dc, &parse_swf(text), 0.5);
        let exported = export_swf(dc.finished_jobs());
        let reparsed = parse_swf(&exported);
        assert_eq!(reparsed.len(), 1);
        assert_eq!(reparsed[0].nodes, 1);
        assert_eq!(reparsed[0].user, 5);
    }
}
