//! Synthetic workload generation: job arrivals with realistic structure.
//!
//! The generator produces the Applications-pillar ground truth: a stream of
//! jobs with class-correlated sizes, log-normal work distributions,
//! user-specific behaviour and diurnally-modulated Poisson arrivals. The
//! structure matters because the predictive Applications cells learn from
//! it — job-duration predictors exploit the fact that the same user tends
//! to submit similar jobs (the assumption behind Naghshnejad & Singhal,
//! Emeras et al.), and workload forecasters exploit the diurnal arrival
//! pattern.

use crate::engine::SimRng;
use crate::scheduler::job::{Job, JobClass, JobId};
use oda_telemetry::reading::Timestamp;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean inter-arrival time at the daily peak, seconds.
    pub mean_interarrival_s: f64,
    /// Ratio of the night-time arrival rate to the peak rate (0..=1).
    pub night_rate_ratio: f64,
    /// Mixture weights over [compute, memory, io, balanced, miner].
    pub class_weights: [f64; 5],
    /// Number of distinct users.
    pub users: u32,
    /// Mean of ln(work in node-seconds).
    pub work_log_mean: f64,
    /// Std dev of ln(work).
    pub work_log_std: f64,
    /// Maximum nodes a job may request (rounded to powers of two).
    pub max_nodes: u32,
    /// Walltime request = true estimate × U(1+ε, this factor).
    pub walltime_overestimate_max: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mean_interarrival_s: 120.0,
            night_rate_ratio: 0.35,
            class_weights: [0.3, 0.25, 0.2, 0.24, 0.01],
            users: 24,
            work_log_mean: 7.6, // e^7.6 ≈ 2000 node-seconds
            work_log_std: 1.0,
            max_nodes: 8,
            walltime_overestimate_max: 3.0,
        }
    }
}

/// Per-user habit: users resubmit similar work, which is what makes
/// submission metadata predictive of duration.
#[derive(Debug, Clone, Copy)]
struct UserHabit {
    class: JobClass,
    work_log_mean: f64,
    size_bias: u32,
}

/// Stateful arrival generator.
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    habits: Vec<UserHabit>,
    next_id: u64,
    next_arrival: Timestamp,
}

impl WorkloadGenerator {
    /// Creates a generator; user habits are drawn deterministically from
    /// `rng`.
    pub fn new(config: WorkloadConfig, rng: &mut SimRng) -> Self {
        let habits = (0..config.users)
            .map(|_| {
                let class = JobClass::ALL[rng.weighted_index(&config.class_weights)];
                UserHabit {
                    class,
                    work_log_mean: config.work_log_mean + rng.normal(0.0, 0.5),
                    size_bias: 1 << rng.uniform_usize(0, (config.max_nodes as f64).log2() as usize),
                }
            })
            .collect();
        // The first arrival is itself exponentially distributed — a Poisson
        // process has no guaranteed event at t = 0.
        let first_gap_s = rng.exponential(config.mean_interarrival_s);
        WorkloadGenerator {
            next_arrival: Timestamp::ZERO + (first_gap_s * 1_000.0).max(1.0) as u64,
            config,
            habits,
            next_id: 1,
        }
    }

    /// Diurnal arrival-rate multiplier at time `t` (1.0 at the 14:00 peak,
    /// `night_rate_ratio` in the middle of the night).
    pub fn diurnal_factor(&self, t: Timestamp) -> f64 {
        let h = t.as_hours_f64() % 24.0;
        let phase = (2.0 * std::f64::consts::PI * (h - 14.0) / 24.0).cos();
        let lo = self.config.night_rate_ratio;
        lo + (1.0 - lo) * (phase + 1.0) / 2.0
    }

    /// Returns all jobs arriving in `(prev, now]`.
    pub fn arrivals(&mut self, now: Timestamp, rng: &mut SimRng) -> Vec<Job> {
        let mut out = Vec::new();
        while self.next_arrival <= now {
            let t = self.next_arrival;
            out.push(self.make_job(t, rng));
            // Thin the Poisson process by the diurnal factor: a lower factor
            // stretches the inter-arrival gap.
            let factor = self.diurnal_factor(t).max(1e-3);
            let gap_s = rng.exponential(self.config.mean_interarrival_s / factor);
            self.next_arrival = t + (gap_s * 1_000.0).max(1.0) as u64;
        }
        out
    }

    fn make_job(&mut self, submit: Timestamp, rng: &mut SimRng) -> Job {
        let user = rng.uniform_usize(0, self.habits.len() - 1) as u32;
        let habit = self.habits[user as usize];
        // Mostly the user's habitual class, occasionally something else.
        let class = if rng.chance(0.8) {
            habit.class
        } else {
            JobClass::ALL[rng.weighted_index(&self.config.class_weights)]
        };
        // Size: the user's habitual size, occasionally scaled, capped.
        let mut nodes = habit.size_bias;
        if rng.chance(0.3) {
            nodes = (nodes * 2).min(self.config.max_nodes);
        }
        let work = rng.log_normal(habit.work_log_mean, self.config.work_log_std);
        // True runtime estimate at nominal speed.
        let est_runtime_s = work / nodes as f64;
        let walltime =
            est_runtime_s * rng.uniform(1.15, self.config.walltime_overestimate_max.max(1.2));
        let id = JobId(self.next_id);
        self.next_id += 1;
        Job::new(id, user, class, nodes, work, walltime, submit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_with_seed(seed: u64) -> (WorkloadGenerator, SimRng) {
        let mut rng = SimRng::new(seed);
        let g = WorkloadGenerator::new(WorkloadConfig::default(), &mut rng);
        (g, rng)
    }

    #[test]
    fn arrivals_are_monotone_and_unique_ids() {
        let (mut g, mut rng) = gen_with_seed(1);
        let jobs = g.arrivals(Timestamp::from_hours(12), &mut rng);
        assert!(
            jobs.len() > 50,
            "12h at ~2min spacing should yield many jobs"
        );
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn incremental_and_bulk_arrivals_agree() {
        let (mut a, mut rng_a) = gen_with_seed(2);
        let bulk = a.arrivals(Timestamp::from_hours(6), &mut rng_a);
        let (mut b, mut rng_b) = gen_with_seed(2);
        let mut inc = Vec::new();
        for h in 1..=6 {
            inc.extend(b.arrivals(Timestamp::from_hours(h), &mut rng_b));
        }
        assert_eq!(bulk.len(), inc.len());
        for (x, y) in bulk.iter().zip(&inc) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.submit, y.submit);
        }
    }

    #[test]
    fn diurnal_factor_peaks_in_afternoon() {
        let (g, _) = gen_with_seed(3);
        let peak = g.diurnal_factor(Timestamp::from_hours(14));
        let night = g.diurnal_factor(Timestamp::from_hours(2));
        assert!((peak - 1.0).abs() < 1e-9);
        assert!(night < 0.4);
    }

    #[test]
    fn day_arrivals_outnumber_night_arrivals() {
        let (mut g, mut rng) = gen_with_seed(4);
        // Generate 4 full days and compare 10:00-18:00 vs 22:00-06:00 counts.
        let jobs = g.arrivals(Timestamp::from_hours(24 * 4), &mut rng);
        let (mut day, mut night) = (0, 0);
        for j in &jobs {
            let h = j.submit.as_hours_f64() % 24.0;
            if (10.0..18.0).contains(&h) {
                day += 1;
            } else if !(6.0..22.0).contains(&h) {
                night += 1;
            }
        }
        assert!(day > night, "day {day} vs night {night}");
    }

    #[test]
    fn sizes_are_powers_of_two_within_cap() {
        let (mut g, mut rng) = gen_with_seed(5);
        let jobs = g.arrivals(Timestamp::from_hours(24), &mut rng);
        for j in &jobs {
            assert!(j.nodes_requested.is_power_of_two());
            assert!(j.nodes_requested <= 8);
        }
    }

    #[test]
    fn walltimes_overestimate_nominal_runtime() {
        let (mut g, mut rng) = gen_with_seed(6);
        let jobs = g.arrivals(Timestamp::from_hours(24), &mut rng);
        for j in &jobs {
            let nominal = j.work_node_seconds / j.nodes_requested as f64;
            assert!(
                j.requested_walltime_s >= nominal * 1.1,
                "walltime {} vs nominal {nominal}",
                j.requested_walltime_s
            );
        }
    }

    #[test]
    fn miners_are_rare_but_present_in_expectation() {
        let (mut g, mut rng) = gen_with_seed(7);
        let jobs = g.arrivals(Timestamp::from_hours(24 * 14), &mut rng);
        let miners = jobs
            .iter()
            .filter(|j| j.class == JobClass::Cryptominer)
            .count();
        let frac = miners as f64 / jobs.len() as f64;
        assert!(frac < 0.15, "miner fraction {frac}");
    }

    #[test]
    fn same_seed_reproduces_workload() {
        let (mut a, mut ra) = gen_with_seed(8);
        let (mut b, mut rb) = gen_with_seed(8);
        let ja = a.arrivals(Timestamp::from_hours(10), &mut ra);
        let jb = b.arrivals(Timestamp::from_hours(10), &mut rb);
        assert_eq!(ja.len(), jb.len());
        for (x, y) in ja.iter().zip(&jb) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.work_node_seconds, y.work_node_seconds);
        }
    }
}
