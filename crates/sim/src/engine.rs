//! Simulation clock and deterministic randomness.
//!
//! The data center advances in fixed ticks (default 1 simulated second of
//! model integration, with telemetry sampled on a coarser interval). A
//! fixed-timestep loop — rather than a pure event queue — fits the plant
//! models, which are continuous dynamics (thermal RC networks, job progress
//! integrals) punctuated by discrete events (arrivals, completions) that are
//! naturally quantised to a tick.

use oda_telemetry::reading::Timestamp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The simulation clock: current time plus tick bookkeeping.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Timestamp,
    tick_ms: u64,
    ticks: u64,
}

impl SimClock {
    /// Creates a clock at t=0 advancing `tick_ms` per tick.
    ///
    /// # Panics
    /// Panics if `tick_ms == 0`.
    pub fn new(tick_ms: u64) -> Self {
        assert!(tick_ms > 0, "tick must be positive");
        SimClock {
            now: Timestamp::ZERO,
            tick_ms,
            ticks: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Tick width in milliseconds.
    #[inline]
    pub fn tick_ms(&self) -> u64 {
        self.tick_ms
    }

    /// Tick width in seconds (for integrating continuous models).
    #[inline]
    pub fn tick_secs(&self) -> f64 {
        self.tick_ms as f64 / 1_000.0
    }

    /// Number of ticks elapsed.
    #[inline]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Advances one tick and returns the new time.
    #[inline]
    pub fn advance(&mut self) -> Timestamp {
        self.now = self.now + self.tick_ms;
        self.ticks += 1;
        self.now
    }
}

/// Deterministic PRNG wrapper used by every stochastic model in the sim.
///
/// Thin façade over `SmallRng` adding the distributions the models need;
/// keeping them here means model code never touches rand traits directly.
#[derive(Debug)]
pub struct SimRng {
    rng: SmallRng,
}

impl SimRng {
    /// Seeds the generator. The same seed yields the same run.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator (used to give subsystems
    /// their own streams so adding draws in one does not perturb another).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.rng.gen::<u64>())
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Exponential with the given mean (inter-arrival sampling).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Log-normal parameterised by the mean/σ of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// Picks an index according to non-negative `weights` (must not all be
    /// zero).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_by_tick() {
        let mut c = SimClock::new(250);
        assert_eq!(c.now(), Timestamp::ZERO);
        c.advance();
        c.advance();
        assert_eq!(c.now().as_millis(), 500);
        assert_eq!(c.ticks(), 2);
        assert!((c.tick_secs() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32)
            .filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn normal_matches_moments_roughly() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn exponential_is_positive_with_right_mean() {
        let mut rng = SimRng::new(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.exponential(5.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(5);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }

    #[test]
    fn degenerate_uniform_bounds() {
        let mut rng = SimRng::new(6);
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
        assert_eq!(rng.uniform_usize(3, 3), 3);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::new(9);
        let mut child = parent.fork();
        // Child draws must not equal parent draws systematically.
        let overlaps = (0..32)
            .filter(|_| parent.uniform(0.0, 1.0) == child.uniform(0.0, 1.0))
            .count();
        assert!(overlaps < 4);
    }
}
