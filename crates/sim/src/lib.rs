#![warn(missing_docs)]

//! # oda-sim — a simulated HPC data center
//!
//! The paper's framework assumes an operating HPC site: a building with
//! cooling and power distribution (*Building Infrastructure*), compute
//! hardware (*System Hardware*), a resource manager (*System Software*) and a
//! workload of user jobs (*Applications*). A reproduction cannot ship a
//! data center, so this crate provides a physics-flavoured discrete-time
//! simulation of one — the substitute substrate documented in `DESIGN.md`.
//!
//! The simulation is organised exactly along the paper's four pillars:
//!
//! * [`facility`] — outside weather, cooling loop (free cooling vs chiller),
//!   power distribution losses. Exposes the *inlet temperature* and
//!   *cooling mode* knobs that prescriptive infrastructure ODA tunes.
//! * [`hardware`] — racks of nodes with utilization→power→temperature
//!   models, per-node DVFS frequency and fan-speed knobs, and a two-level
//!   tree network with link contention.
//! * [`scheduler`] — FCFS + EASY-backfill job scheduler with pluggable
//!   placement policies (the prescriptive system-software knob).
//! * [`workload`] — synthetic job classes (compute-, memory-, I/O-bound,
//!   balanced, plus a cryptominer signature for fingerprinting experiments)
//!   and stochastic arrival processes.
//!
//! [`faults`] injects anomalies into any pillar — the ground truth against
//! which diagnostic ODA is evaluated. [`datacenter::DataCenter`] ties the
//! pieces together and publishes every modelled quantity to an
//! [`oda_telemetry::bus::TelemetryBus`] each sampling tick, so analytics
//! code observes the simulated site exactly as it would observe a real one:
//! through sensor streams.
//!
//! Determinism: every stochastic element draws from one seeded PRNG, so a
//! `(config, seed)` pair fully determines a run — experiments are exactly
//! reproducible.
//!
//! ```
//! use oda_sim::prelude::*;
//!
//! let mut dc = DataCenter::builder(DataCenterConfig::small()).seed(42).build();
//! dc.run_for_hours(1.0);
//! let snap = dc.snapshot();
//! assert!(snap.total_power_kw > 0.0);
//! assert!(snap.pue >= 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod datacenter;
pub mod engine;
pub mod facility;
pub mod faults;
pub mod hardware;
pub mod scheduler;
pub mod swf;
pub mod workload;

/// Re-exports of the types most consumers need.
pub mod prelude {
    pub use crate::datacenter::{DataCenter, DataCenterBuilder, DataCenterConfig, Snapshot};
    pub use crate::engine::SimClock;
    pub use crate::facility::cooling::CoolingMode;
    pub use crate::faults::{
        Fault, FaultKind, FaultSchedule, TelemetryFault, TelemetryFaultKind, TelemetryFaultState,
    };
    pub use crate::hardware::node::NodeId;
    pub use crate::scheduler::job::{Job, JobClass, JobId, JobState};
    pub use crate::scheduler::placement::PlacementPolicy;
    pub use crate::workload::WorkloadConfig;
}
