//! The four pillars of energy-efficient HPC data centers (Wilde, Auweter &
//! Shoukourian, 2014) — the columns of the ODA framework and Fig. 1 of the
//! paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A data-center domain ("pillar").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Pillar {
    /// Every support infrastructure (cooling, power distribution) needed to
    /// run the HPC systems and the data center as a whole.
    BuildingInfrastructure,
    /// The hardware components of an HPC system: boards, CPUs/GPUs, memory,
    /// system-internal cooling, network equipment.
    SystemHardware,
    /// The system-level software stack: management software, resource
    /// manager and scheduler, node OS, tools and libraries.
    SystemSoftware,
    /// Individual workloads and the workload mix — the unit of work an HPC
    /// system exists to execute.
    Applications,
}

impl Pillar {
    /// All pillars, in the paper's column order.
    pub const ALL: [Pillar; 4] = [
        Pillar::BuildingInfrastructure,
        Pillar::SystemHardware,
        Pillar::SystemSoftware,
        Pillar::Applications,
    ];

    /// Dense index `0..4`, matching [`Self::ALL`] order.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Pillar::BuildingInfrastructure => 0,
            Pillar::SystemHardware => 1,
            Pillar::SystemSoftware => 2,
            Pillar::Applications => 3,
        }
    }

    /// Pillar from a dense index.
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    pub const fn from_index(i: usize) -> Pillar {
        Self::ALL[i]
    }

    /// Short display name, as used in the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            Pillar::BuildingInfrastructure => "Building Infrastructure",
            Pillar::SystemHardware => "System Hardware",
            Pillar::SystemSoftware => "System Software",
            Pillar::Applications => "Applications",
        }
    }

    /// The telemetry domain prefix this pillar's sensors live under in the
    /// workspace convention (`/facility/...`, `/hw/...`, ...).
    pub const fn telemetry_domain(self) -> &'static str {
        match self {
            Pillar::BuildingInfrastructure => "facility",
            Pillar::SystemHardware => "hw",
            Pillar::SystemSoftware => "sw",
            Pillar::Applications => "app",
        }
    }

    /// One-sentence definition from §III-A of the paper.
    pub const fn definition(self) -> &'static str {
        match self {
            Pillar::BuildingInfrastructure => {
                "Support infrastructure (cooling, power distribution) needed to run the HPC systems and the data center as a whole."
            }
            Pillar::SystemHardware => {
                "Hardware components of an HPC system: motherboards and firmware, CPUs, GPUs, memory, system-internal cooling, network equipment."
            }
            Pillar::SystemSoftware => {
                "System-level software stack: management software, resource manager and scheduler, compute-node OS, tools and libraries."
            }
            Pillar::Applications => {
                "Individual workloads and the workload mix executed on a system — the unit of work delivering scientific insight."
            }
        }
    }

    /// Whether this pillar is primarily under the control of system
    /// administrators (`true`) or users (`false`) — §IV-D notes that the
    /// Applications pillar is the only one partly in users' hands.
    pub const fn admin_controlled(self) -> bool {
        !matches!(self, Pillar::Applications)
    }
}

impl fmt::Display for Pillar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, p) in Pillar::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Pillar::from_index(i), *p);
        }
    }

    #[test]
    fn telemetry_domains_are_distinct() {
        let mut domains: Vec<&str> = Pillar::ALL.iter().map(|p| p.telemetry_domain()).collect();
        domains.sort_unstable();
        domains.dedup();
        assert_eq!(domains.len(), 4);
    }

    #[test]
    fn only_applications_is_user_controlled() {
        assert!(Pillar::BuildingInfrastructure.admin_controlled());
        assert!(Pillar::SystemHardware.admin_controlled());
        assert!(Pillar::SystemSoftware.admin_controlled());
        assert!(!Pillar::Applications.admin_controlled());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(
            Pillar::BuildingInfrastructure.to_string(),
            "Building Infrastructure"
        );
        assert_eq!(Pillar::Applications.to_string(), "Applications");
    }
}
