//! Staged pipelines: the hindsight→foresight staircase, executable.
//!
//! Fig. 2 of the paper orders the four analytics types by increasing value
//! and difficulty; §V-A argues that combining types is what makes ODA
//! powerful — a prescriptive component fed by predictive output acts
//! *proactively* instead of *reactively*. The pipeline implements exactly
//! that wiring: stages run in staged order, and every capability sees the
//! artifacts produced by the stages before it (`ctx.upstream`).
//!
//! The same mechanism expresses §V-B's multi-pillar orchestration: a
//! cooling-aware scheduler is simply a prescriptive System-Software
//! capability that reads Building-Infrastructure artifacts from upstream.

use crate::analytics_type::AnalyticsType;
use crate::capability::{Artifact, Capability, CapabilityContext};
use crate::runtime::{CapabilityScheduler, RuntimeConfig};
use oda_telemetry::metrics::MetricsRegistry;
use serde::Serialize;

/// Named span covering one capability execution within a pipeline run —
/// the per-plugin overhead accounting the paper's production references
/// treat as a deployment prerequisite.
#[derive(Debug, Clone, Serialize)]
pub struct StageSpan {
    /// Analytics stage the capability ran in.
    pub stage: AnalyticsType,
    /// Capability (span) name.
    pub capability: String,
    /// Wall time of the capability's `execute`, nanoseconds.
    pub wall_ns: u64,
    /// Number of artifacts the capability produced.
    pub artifacts: usize,
    /// Whether the capability panicked (the scheduler isolates the panic:
    /// the capability contributes no artifacts and the run continues).
    pub panicked: bool,
}

/// Execution trace of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Per-stage results: `(stage, capability name, artifacts)`.
    pub stages: Vec<(AnalyticsType, String, Vec<Artifact>)>,
    /// One span per capability execution, in run order.
    pub spans: Vec<StageSpan>,
    /// Wall time of the whole run, nanoseconds.
    pub wall_ns: u64,
}

impl PipelineRun {
    /// All artifacts in production order.
    pub fn artifacts(&self) -> Vec<&Artifact> {
        self.stages.iter().flat_map(|(_, _, a)| a.iter()).collect()
    }

    /// Artifacts produced by a given stage.
    pub fn stage_artifacts(&self, stage: AnalyticsType) -> Vec<&Artifact> {
        self.stages
            .iter()
            .filter(|(s, _, _)| *s == stage)
            .flat_map(|(_, _, a)| a.iter())
            .collect()
    }

    /// The span of the named capability, if it ran.
    pub fn span(&self, capability: &str) -> Option<&StageSpan> {
        self.spans.iter().find(|s| s.capability == capability)
    }

    /// Order-sensitive FNV-1a digest over everything the run *produced* —
    /// stage order, capability names, artifacts (floats by bit pattern) and
    /// panic flags — excluding wall times. Two runs of the same pipeline
    /// over the same telemetry must yield equal digests at any worker
    /// count; the scale bench and the determinism property tests gate on
    /// exactly this.
    pub fn output_digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (stage, name, artifacts) in &self.stages {
            fold(&[stage.index() as u8]);
            fold(name.as_bytes());
            fold(&(artifacts.len() as u64).to_le_bytes());
            for artifact in artifacts {
                match artifact {
                    Artifact::Report { title, body } => {
                        fold(b"report");
                        fold(title.as_bytes());
                        fold(body.as_bytes());
                    }
                    Artifact::Kpi { name, value } => {
                        fold(b"kpi");
                        fold(name.as_bytes());
                        fold(&value.to_bits().to_le_bytes());
                    }
                    Artifact::Diagnosis {
                        kind,
                        subject,
                        severity,
                        evidence,
                    } => {
                        fold(b"diagnosis");
                        fold(kind.as_bytes());
                        fold(subject.as_bytes());
                        fold(&severity.to_bits().to_le_bytes());
                        fold(evidence.as_bytes());
                    }
                    Artifact::Forecast {
                        quantity,
                        horizon_s,
                        value,
                    } => {
                        fold(b"forecast");
                        fold(quantity.as_bytes());
                        fold(&horizon_s.to_bits().to_le_bytes());
                        fold(&value.to_bits().to_le_bytes());
                    }
                    Artifact::Prescription {
                        action,
                        setting,
                        expected_impact,
                        automatable,
                    } => {
                        fold(b"prescription");
                        fold(action.as_bytes());
                        fold(setting.as_bytes());
                        fold(expected_impact.as_bytes());
                        fold(&[*automatable as u8]);
                    }
                }
            }
        }
        for span in &self.spans {
            fold(span.capability.as_bytes());
            fold(&[span.panicked as u8]);
        }
        hash
    }
}

/// One registered capability and its stage — the scheduler's unit of
/// dispatch. The capability box is taken out of the slot while a worker
/// executes it and reinstalled at the layer barrier, so the slot index is
/// a stable identity for the whole pipeline lifetime.
pub(crate) struct PipelineSlot {
    pub(crate) stage: AnalyticsType,
    pub(crate) cap: Option<Box<dyn Capability>>,
}

/// A pipeline of capabilities organised by analytics type.
///
/// Within one stage, capabilities run in insertion order and do *not* see
/// each other's artifacts (they are peers); across stages, later stages see
/// everything earlier stages produced.
///
/// Each capability execution is timed as a [`StageSpan`] and recorded as
/// `pipeline_stage_ns{capability}` / `pipeline_artifacts_total{capability}`
/// into the pipeline's metrics registry (the process-wide default unless
/// [`Self::with_metrics`] is used).
#[derive(Default)]
pub struct StagedPipeline {
    slots: Vec<PipelineSlot>,
    metrics: Option<MetricsRegistry>,
}

impl StagedPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capability at a stage. Builder-style.
    #[must_use]
    pub fn with_stage(mut self, stage: AnalyticsType, capability: Box<dyn Capability>) -> Self {
        self.add_stage(stage, capability);
        self
    }

    /// Records stage metrics into `metrics` instead of the process-wide
    /// default registry. Builder-style.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.set_metrics(metrics);
        self
    }

    /// Records stage metrics into `metrics` instead of the process-wide
    /// default registry.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = Some(metrics);
    }

    /// Adds a capability at a stage.
    pub fn add_stage(&mut self, stage: AnalyticsType, capability: Box<dyn Capability>) {
        self.slots.push(PipelineSlot {
            stage,
            cap: Some(capability),
        });
    }

    /// Number of capabilities in the pipeline.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The metrics registry stage spans are recorded into.
    pub(crate) fn resolved_metrics(&self) -> MetricsRegistry {
        self.metrics.clone().unwrap_or_else(MetricsRegistry::global)
    }

    /// The scheduler's view of the registered capabilities.
    pub(crate) fn slots(&self) -> &[PipelineSlot] {
        &self.slots
    }

    /// Mutable slot access for the scheduler's take/reinstall cycle.
    pub(crate) fn slots_mut(&mut self) -> &mut [PipelineSlot] {
        &mut self.slots
    }

    /// Runs the pipeline serially over `ctx` (whose `upstream` is used as
    /// the initial blackboard, normally empty).
    ///
    /// This is the one-worker degenerate case of the DAG scheduler in
    /// [`crate::runtime`]: stages run in staged order, peers within a stage
    /// in insertion order on the calling thread. Use
    /// [`CapabilityScheduler`] (or [`crate::runtime::OdaRuntime`], which
    /// embeds one) to fan a pass out across a worker pool.
    pub fn run(&mut self, ctx: CapabilityContext) -> PipelineRun {
        let metrics = self.resolved_metrics();
        CapabilityScheduler::with_metrics(RuntimeConfig::serial(), metrics).run(self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridCell, GridFootprint};
    use crate::pillar::Pillar;
    use oda_telemetry::query::TimeRange;
    use oda_telemetry::reading::Timestamp;
    use oda_telemetry::sensor::SensorRegistry;
    use oda_telemetry::store::TimeSeriesStore;
    use std::sync::Arc;

    fn ctx() -> CapabilityContext {
        CapabilityContext::new(
            Arc::new(TimeSeriesStore::with_capacity(8)),
            SensorRegistry::new(),
            TimeRange::all(),
            Timestamp::ZERO,
        )
    }

    /// Emits a forecast.
    struct Predictor;
    impl Capability for Predictor {
        fn name(&self) -> &str {
            "predictor"
        }
        fn description(&self) -> &str {
            "emits a power forecast"
        }
        fn footprint(&self) -> GridFootprint {
            GridFootprint::single(GridCell::new(
                AnalyticsType::Predictive,
                Pillar::SystemHardware,
            ))
        }
        fn execute(&mut self, _ctx: &CapabilityContext) -> Vec<Artifact> {
            vec![Artifact::Forecast {
                quantity: "it_power".into(),
                horizon_s: 60.0,
                value: 123.0,
            }]
        }
    }

    /// Prescribes based on upstream forecasts if present (proactive), else
    /// reactively.
    struct Governor {
        saw_forecast: bool,
    }
    impl Capability for Governor {
        fn name(&self) -> &str {
            "governor"
        }
        fn description(&self) -> &str {
            "acts on forecasts when available"
        }
        fn footprint(&self) -> GridFootprint {
            GridFootprint::single(GridCell::new(
                AnalyticsType::Prescriptive,
                Pillar::SystemHardware,
            ))
        }
        fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
            let forecasts = ctx.upstream_forecasts("it_power");
            self.saw_forecast = !forecasts.is_empty();
            vec![Artifact::Prescription {
                action: "dvfs".into(),
                setting: if self.saw_forecast {
                    "proactive"
                } else {
                    "reactive"
                }
                .into(),
                expected_impact: String::new(),
                automatable: true,
            }]
        }
    }

    #[test]
    fn later_stages_see_earlier_artifacts() {
        let mut p = StagedPipeline::new()
            .with_stage(
                AnalyticsType::Prescriptive,
                Box::new(Governor {
                    saw_forecast: false,
                }),
            )
            .with_stage(AnalyticsType::Predictive, Box::new(Predictor));
        // Insertion order deliberately reversed: the pipeline must order by
        // stage, not insertion.
        let run = p.run(ctx());
        let presc = run.stage_artifacts(AnalyticsType::Prescriptive);
        assert_eq!(presc.len(), 1);
        match presc[0] {
            Artifact::Prescription { setting, .. } => assert_eq!(setting, "proactive"),
            other => panic!("unexpected artifact {other:?}"),
        }
    }

    #[test]
    fn prescriptive_without_predictor_is_reactive() {
        let mut p = StagedPipeline::new().with_stage(
            AnalyticsType::Prescriptive,
            Box::new(Governor {
                saw_forecast: false,
            }),
        );
        let run = p.run(ctx());
        match run.stage_artifacts(AnalyticsType::Prescriptive)[0] {
            Artifact::Prescription { setting, .. } => assert_eq!(setting, "reactive"),
            other => panic!("unexpected artifact {other:?}"),
        }
    }

    /// Peers in the same stage must not see each other.
    struct Peer {
        name: &'static str,
    }
    impl Capability for Peer {
        fn name(&self) -> &str {
            self.name
        }
        fn description(&self) -> &str {
            "peer"
        }
        fn footprint(&self) -> GridFootprint {
            GridFootprint::single(GridCell::new(
                AnalyticsType::Descriptive,
                Pillar::Applications,
            ))
        }
        fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
            vec![Artifact::Kpi {
                name: format!("{}:saw_{}", self.name, ctx.upstream.len()),
                value: 0.0,
            }]
        }
    }

    #[test]
    fn peers_do_not_see_each_other() {
        let mut p = StagedPipeline::new()
            .with_stage(AnalyticsType::Descriptive, Box::new(Peer { name: "a" }))
            .with_stage(AnalyticsType::Descriptive, Box::new(Peer { name: "b" }));
        let run = p.run(ctx());
        let kpis: Vec<String> = run
            .artifacts()
            .iter()
            .filter_map(|a| match a {
                Artifact::Kpi { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(kpis, vec!["a:saw_0", "b:saw_0"]);
    }

    #[test]
    fn run_records_spans_and_stage_metrics() {
        let m = MetricsRegistry::new();
        let mut p = StagedPipeline::new()
            .with_metrics(m.clone())
            .with_stage(AnalyticsType::Predictive, Box::new(Predictor))
            .with_stage(
                AnalyticsType::Prescriptive,
                Box::new(Governor {
                    saw_forecast: false,
                }),
            );
        let run = p.run(ctx());
        assert_eq!(run.spans.len(), 2);
        let span = run.span("predictor").unwrap();
        assert_eq!(span.stage, AnalyticsType::Predictive);
        assert_eq!(span.artifacts, 1);
        assert!(run.wall_ns >= run.spans.iter().map(|s| s.wall_ns).sum::<u64>());
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("pipeline_artifacts_total{capability=\"governor\"}"),
            Some(1)
        );
        assert_eq!(
            snap.histogram("pipeline_stage_ns{capability=\"predictor\"}")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn run_trace_is_ordered_by_stage() {
        let mut p = StagedPipeline::new()
            .with_stage(
                AnalyticsType::Prescriptive,
                Box::new(Governor {
                    saw_forecast: false,
                }),
            )
            .with_stage(AnalyticsType::Predictive, Box::new(Predictor))
            .with_stage(AnalyticsType::Descriptive, Box::new(Peer { name: "p" }));
        let run = p.run(ctx());
        let order: Vec<AnalyticsType> = run.stages.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(
            order,
            vec![
                AnalyticsType::Descriptive,
                AnalyticsType::Predictive,
                AnalyticsType::Prescriptive
            ]
        );
        assert_eq!(run.artifacts().len(), 3);
    }
}
