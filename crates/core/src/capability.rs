//! The unit of ODA: a capability with a grid footprint.
//!
//! A capability is anything the paper's survey would classify — a PUE
//! dashboard, a node anomaly detector, a job-duration predictor, a cooling
//! optimizer. It declares *where it lives* on the grid (its
//! [`GridFootprint`]) and implements one operation: consume a telemetry
//! window, produce typed [`Artifact`]s. The artifact types mirror the four
//! analytics types' outputs, which is what lets [`crate::pipeline`] wire
//! stages together generically: a prescriptive capability can look for
//! `Forecast` artifacts from earlier stages and become proactive.

use crate::grid::GridFootprint;
use oda_telemetry::cluster::ClusterCoordinator;
use oda_telemetry::query::TimeRange;
use oda_telemetry::reading::Timestamp;
use oda_telemetry::sensor::SensorRegistry;
use oda_telemetry::store::TimeSeriesStore;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Typed output of a capability run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Artifact {
    /// Human-readable report text (dashboards, summaries).
    Report {
        /// Capability-chosen title.
        title: String,
        /// Rendered body.
        body: String,
    },
    /// A named scalar indicator (PUE, slowdown, utilization, ...).
    Kpi {
        /// Indicator name.
        name: String,
        /// Current value.
        value: f64,
    },
    /// A diagnostic finding.
    Diagnosis {
        /// Stable kind label (matches the recommendation rulebook).
        kind: String,
        /// Affected entity (node, rack, job).
        subject: String,
        /// Severity/confidence in `[0, 1]`.
        severity: f64,
        /// Free-text evidence summary.
        evidence: String,
    },
    /// A forecast of a named quantity.
    Forecast {
        /// Quantity name (usually a sensor name or KPI).
        quantity: String,
        /// Forecast horizon, seconds ahead of `now`.
        horizon_s: f64,
        /// Predicted value at the horizon.
        value: f64,
    },
    /// A recommended or enacted action.
    Prescription {
        /// Knob or action identifier.
        action: String,
        /// Proposed setting/description.
        setting: String,
        /// Expected impact description.
        expected_impact: String,
        /// Whether the pipeline may apply it without operator review.
        automatable: bool,
    },
}

impl Artifact {
    /// The KPI value, if this artifact is a KPI with the given name.
    pub fn kpi(&self, kpi_name: &str) -> Option<f64> {
        match self {
            Artifact::Kpi { name, value } if name == kpi_name => Some(*value),
            _ => None,
        }
    }

    /// Short label for logs.
    pub fn label(&self) -> &'static str {
        match self {
            Artifact::Report { .. } => "report",
            Artifact::Kpi { .. } => "kpi",
            Artifact::Diagnosis { .. } => "diagnosis",
            Artifact::Forecast { .. } => "forecast",
            Artifact::Prescription { .. } => "prescription",
        }
    }
}

/// Everything a capability may read during a run.
///
/// Capabilities see telemetry (store + registry) and the artifacts produced
/// by *earlier stages of the same pipeline run* — never simulator
/// internals. `window` is the analysis range; `now` its upper edge.
pub struct CapabilityContext {
    /// Archive to query.
    pub store: Arc<TimeSeriesStore>,
    /// Registry for name→id resolution.
    pub registry: SensorRegistry,
    /// The analysis window.
    pub window: TimeRange,
    /// Current time (upper edge of the window).
    pub now: Timestamp,
    /// Artifacts from earlier pipeline stages, in production order.
    pub upstream: Vec<Artifact>,
    /// Deterministic RNG seed for this capability execution.
    ///
    /// The scheduler derives one stream per task from the pass seed and
    /// the capability's registration slot — *never* from the worker that
    /// happens to execute the task — so a randomized capability produces
    /// bit-identical output at any worker count (work stealing moves
    /// tasks between workers nondeterministically; a per-worker stream
    /// would break replay). Capabilities that want randomness must seed
    /// their generator from this value and nothing else.
    pub rng_seed: u64,
    /// The sharded collector hierarchy, when the site runs one.
    ///
    /// Edge capabilities (per-node anomaly detection) push their logic
    /// to the shards with [`ClusterCoordinator::run_edge`] so each shard
    /// scans only its own slice; global capabilities (site forecasting)
    /// run [`ClusterCoordinator::query`] and consume the gathered
    /// aggregates. `None` on unsharded sites — capabilities must fall
    /// back to `store` then, and queries answer bit-identically either
    /// way.
    pub cluster: Option<Arc<ClusterCoordinator>>,
}

impl CapabilityContext {
    /// Creates a context with no upstream artifacts.
    pub fn new(
        store: Arc<TimeSeriesStore>,
        registry: SensorRegistry,
        window: TimeRange,
        now: Timestamp,
    ) -> Self {
        CapabilityContext {
            store,
            registry,
            window,
            now,
            upstream: Vec::new(),
            rng_seed: 0,
            cluster: None,
        }
    }

    /// Sets the deterministic RNG seed for this execution. Builder-style.
    #[must_use]
    pub fn with_rng_seed(mut self, rng_seed: u64) -> Self {
        self.rng_seed = rng_seed;
        self
    }

    /// Attaches the sharded collector hierarchy. Builder-style.
    #[must_use]
    pub fn with_cluster(mut self, cluster: Arc<ClusterCoordinator>) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Upstream forecasts of a given quantity.
    pub fn upstream_forecasts(&self, quantity: &str) -> Vec<(f64, f64)> {
        self.upstream
            .iter()
            .filter_map(|a| match a {
                Artifact::Forecast {
                    quantity: q,
                    horizon_s,
                    value,
                } if q == quantity => Some((*horizon_s, *value)),
                _ => None,
            })
            .collect()
    }

    /// Upstream diagnoses.
    pub fn upstream_diagnoses(&self) -> Vec<(&str, &str, f64)> {
        self.upstream
            .iter()
            .filter_map(|a| match a {
                Artifact::Diagnosis {
                    kind,
                    subject,
                    severity,
                    ..
                } => Some((kind.as_str(), subject.as_str(), *severity)),
                _ => None,
            })
            .collect()
    }
}

// Compile-time audit: contexts and artifacts cross worker-thread
// boundaries in the parallel scheduler.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CapabilityContext>();
    assert_send::<Artifact>();
    assert_send::<Box<dyn Capability>>();
};

/// A classified, runnable ODA component.
pub trait Capability: Send {
    /// Stable capability name.
    fn name(&self) -> &str;

    /// One-line description (what a survey table would print).
    fn description(&self) -> &str;

    /// The grid cells this capability covers.
    fn footprint(&self) -> GridFootprint;

    /// Runs the capability over the context's window.
    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics_type::AnalyticsType;
    use crate::grid::GridCell;
    use crate::pillar::Pillar;

    struct Dummy;

    impl Capability for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn description(&self) -> &str {
            "test capability"
        }
        fn footprint(&self) -> GridFootprint {
            GridFootprint::single(GridCell::new(
                AnalyticsType::Descriptive,
                Pillar::SystemHardware,
            ))
        }
        fn execute(&mut self, _ctx: &CapabilityContext) -> Vec<Artifact> {
            vec![Artifact::Kpi {
                name: "x".into(),
                value: 1.0,
            }]
        }
    }

    fn ctx() -> CapabilityContext {
        CapabilityContext::new(
            Arc::new(TimeSeriesStore::with_capacity(8)),
            SensorRegistry::new(),
            TimeRange::all(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn capability_trait_is_object_safe_and_runs() {
        let mut c: Box<dyn Capability> = Box::new(Dummy);
        let out = c.execute(&ctx());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kpi("x"), Some(1.0));
        assert_eq!(out[0].kpi("y"), None);
        assert_eq!(out[0].label(), "kpi");
    }

    #[test]
    fn context_filters_upstream_artifacts() {
        let mut ctx = ctx();
        ctx.upstream = vec![
            Artifact::Forecast {
                quantity: "power".into(),
                horizon_s: 60.0,
                value: 500.0,
            },
            Artifact::Forecast {
                quantity: "temp".into(),
                horizon_s: 60.0,
                value: 40.0,
            },
            Artifact::Diagnosis {
                kind: "fan-failure".into(),
                subject: "node3".into(),
                severity: 0.9,
                evidence: "temp rising".into(),
            },
        ];
        assert_eq!(ctx.upstream_forecasts("power"), vec![(60.0, 500.0)]);
        assert_eq!(ctx.upstream_forecasts("missing"), vec![]);
        let diags = ctx.upstream_diagnoses();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].0, "fan-failure");
    }
}
