//! The four types of data analytics (Gartner's staged model; Lepenioti
//! et al. 2020) — the rows of the ODA framework and Fig. 2 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stage of analytics sophistication.
///
/// The derived `Ord` follows the staircase of Fig. 2: descriptive <
/// diagnostic < predictive < prescriptive — increasing *value and
/// difficulty*, moving from hindsight through insight to foresight. No type
/// is "better": they answer different operational questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AnalyticsType {
    /// *"What happened?"* — visualization, dashboards, KPIs, alerts;
    /// aggregation and normalization but no complex knowledge extraction.
    Descriptive,
    /// *"Why did it happen?"* — systematic extraction of non-obvious
    /// insight from multi-dimensional data: anomaly detection, root cause
    /// analysis, fingerprinting.
    Diagnostic,
    /// *"What will happen?"* — forecasting a system's near-future state;
    /// foresight enabling proactive rather than reactive ODA.
    Predictive,
    /// *"What should we do?"* — converting state (and forecasts) into knob
    /// settings or recommended actions towards an efficiency goal.
    Prescriptive,
}

impl AnalyticsType {
    /// All types, in the staged order (bottom row of the paper's Table I
    /// upward).
    pub const ALL: [AnalyticsType; 4] = [
        AnalyticsType::Descriptive,
        AnalyticsType::Diagnostic,
        AnalyticsType::Predictive,
        AnalyticsType::Prescriptive,
    ];

    /// Dense index `0..4` in staged order.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            AnalyticsType::Descriptive => 0,
            AnalyticsType::Diagnostic => 1,
            AnalyticsType::Predictive => 2,
            AnalyticsType::Prescriptive => 3,
        }
    }

    /// Type from a dense index.
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    pub const fn from_index(i: usize) -> AnalyticsType {
        Self::ALL[i]
    }

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            AnalyticsType::Descriptive => "Descriptive",
            AnalyticsType::Diagnostic => "Diagnostic",
            AnalyticsType::Predictive => "Predictive",
            AnalyticsType::Prescriptive => "Prescriptive",
        }
    }

    /// The operational question the type answers (§III-B).
    pub const fn question(self) -> &'static str {
        match self {
            AnalyticsType::Descriptive => "What happened?",
            AnalyticsType::Diagnostic => "Why did it happen?",
            AnalyticsType::Predictive => "What will happen?",
            AnalyticsType::Prescriptive => "What is the best way to manage my resources?",
        }
    }

    /// Whether the type looks at the past (*hindsight*: descriptive,
    /// diagnostic) or the future (*foresight*: predictive, and
    /// prescriptive acting on it).
    pub const fn is_foresight(self) -> bool {
        matches!(
            self,
            AnalyticsType::Predictive | AnalyticsType::Prescriptive
        )
    }
}

impl fmt::Display for AnalyticsType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_ordering_matches_figure_2() {
        assert!(AnalyticsType::Descriptive < AnalyticsType::Diagnostic);
        assert!(AnalyticsType::Diagnostic < AnalyticsType::Predictive);
        assert!(AnalyticsType::Predictive < AnalyticsType::Prescriptive);
    }

    #[test]
    fn indices_round_trip() {
        for (i, t) in AnalyticsType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(AnalyticsType::from_index(i), *t);
        }
    }

    #[test]
    fn hindsight_vs_foresight_split() {
        assert!(!AnalyticsType::Descriptive.is_foresight());
        assert!(!AnalyticsType::Diagnostic.is_foresight());
        assert!(AnalyticsType::Predictive.is_foresight());
        assert!(AnalyticsType::Prescriptive.is_foresight());
    }

    #[test]
    fn questions_are_the_papers() {
        assert_eq!(AnalyticsType::Descriptive.question(), "What happened?");
        assert_eq!(AnalyticsType::Diagnostic.question(), "Why did it happen?");
    }
}
