#![warn(missing_docs)]

//! # oda-core — the conceptual framework for HPC Operational Data
//! Analytics, made executable
//!
//! This crate implements the contribution of *"A Conceptual Framework for
//! HPC Operational Data Analytics"* (Netti, Shin, Ott, Wilde, Bates —
//! IEEE CLUSTER 2021): a two-dimensional classification of ODA obtained by
//! crossing
//!
//! * the **four pillars** of energy-efficient HPC data centers
//!   ([`pillar::Pillar`]) — Building Infrastructure, System Hardware,
//!   System Software, Applications — with
//! * the **four types** of data analytics
//!   ([`analytics_type::AnalyticsType`]) — Descriptive, Diagnostic,
//!   Predictive, Prescriptive,
//!
//! yielding the 4×4 grid of [`grid::GridCell`]s that the paper's Table I
//! populates with surveyed use cases.
//!
//! Where the paper *classifies* systems, this crate also *runs* them:
//!
//! * [`capability::Capability`] is the unit of ODA — a component with a
//!   grid footprint that consumes telemetry and produces typed artifacts
//!   (reports, KPIs, diagnoses, forecasts, prescriptions);
//! * [`registry::CapabilityRegistry`] indexes capabilities by cell and
//!   computes the coverage/gap analysis the paper performs on the ODA
//!   landscape;
//! * [`pipeline::StagedPipeline`] wires capabilities along the
//!   hindsight→foresight staircase of Fig. 2, so diagnostic stages see
//!   descriptive output, prescriptive stages see forecasts, and the
//!   reactive/proactive distinction of §V-A becomes executable;
//! * [`cells`] provides a working reference capability for **each of the
//!   sixteen cells**, built from `oda-analytics` algorithms over an
//!   `oda-sim` data center;
//! * [`survey`] encodes the paper's Table I corpus and regenerates the
//!   table, plus the single- vs multi-pillar statistics of §V-B;
//! * [`systems`] composes the complex multi-cell systems of Fig. 3
//!   (the ENI anomaly-response system, Powerstack, and the LLNL
//!   power-fluctuation forecaster).

#![forbid(unsafe_code)]

pub mod analytics_type;
pub mod capability;
pub mod cells;
pub mod grid;
pub mod pillar;
pub mod pipeline;
pub mod registry;
pub mod runtime;
pub mod survey;
pub mod systems;

/// Re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::analytics_type::AnalyticsType;
    pub use crate::capability::{Artifact, Capability, CapabilityContext};
    pub use crate::grid::{CapabilityGrid, GridCell, GridFootprint};
    pub use crate::pillar::Pillar;
    pub use crate::pipeline::StagedPipeline;
    pub use crate::registry::CapabilityRegistry;
    pub use crate::runtime::{ControlPlane, OdaRuntime, SimControlPlane};
}
