//! Diagnostic-row reference capabilities.

use crate::analytics_type::AnalyticsType;
use crate::capability::{Artifact, Capability, CapabilityContext};
use crate::grid::{GridCell, GridFootprint};
use crate::pillar::Pillar;
use oda_analytics::descriptive::outlier::mad_z_scores;
use oda_analytics::descriptive::stats::linear_fit;
use oda_analytics::diagnostic::fingerprint::{JobFeatures, NearestCentroid};
use oda_sim::datacenter::JobRecord;
use oda_sim::scheduler::job::JobClass;
use oda_telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};

/// Median helper shared by the detectors in this module.
pub(crate) fn median_of(xs: &[f64]) -> Option<f64> {
    oda_analytics::descriptive::outlier::median(xs)
}

/// Diagnostic × Building Infrastructure: cooling-plant anomaly detection
/// (Table I: "Infrastructure anomaly detection \[54\]", "Fingerprinting data
/// center crises \[38\]").
///
/// Watches the plant's *specific power* — cooling kW per IT kW — which is
/// invariant to load, so a rise flags plant degradation rather than a busy
/// machine. Detection compares the recent window against the earlier
/// baseline with a robust z-score.
pub struct InfraAnomalyDetector {
    /// Robust-z threshold for flagging.
    pub z_threshold: f64,
    /// Fraction of the window treated as "recent" (the candidate anomaly).
    pub recent_fraction: f64,
}

impl Default for InfraAnomalyDetector {
    fn default() -> Self {
        InfraAnomalyDetector {
            z_threshold: 6.0,
            recent_fraction: 0.25,
        }
    }
}

impl InfraAnomalyDetector {
    /// Creates the detector with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for InfraAnomalyDetector {
    fn name(&self) -> &str {
        "infra-anomaly-detector"
    }

    fn description(&self) -> &str {
        "Cooling-plant anomaly detection from specific cooling power"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Diagnostic,
            Pillar::BuildingInfrastructure,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let (Some(cooling), Some(it)) = (
            ctx.registry.lookup("/facility/cooling/power_kw"),
            ctx.registry.lookup("/facility/power/it_kw"),
        ) else {
            return Vec::new();
        };
        // Specific power series on a common 1-minute grid.
        let (grid, m) = Query::sensors([cooling, it])
            .range(ctx.window)
            .align(60_000)
            .run(&q)
            .aligned();
        if grid.len() < 16 {
            return Vec::new();
        }
        let specific: Vec<f64> = m[0]
            .iter()
            .zip(&m[1])
            .map(|(&c, &i)| if i > 1e-6 { c / i } else { f64::NAN })
            .filter(|v| v.is_finite())
            .collect();
        if specific.len() < 16 {
            return Vec::new();
        }
        let split = ((1.0 - self.recent_fraction) * specific.len() as f64) as usize;
        let (baseline, recent) = specific.split_at(split.max(8).min(specific.len() - 1));
        // Robust z of the recent mean against the baseline distribution.
        let recent_mean = recent.iter().sum::<f64>() / recent.len() as f64;
        let mut with_candidate = baseline.to_vec();
        with_candidate.push(recent_mean);
        let Some(zs) = mad_z_scores(&with_candidate) else {
            return Vec::new();
        };
        let z = *zs.last().unwrap();
        if z > self.z_threshold {
            vec![Artifact::Diagnosis {
                kind: "cooling-degradation".into(),
                subject: "cooling-plant".into(),
                severity: (z / (2.0 * self.z_threshold)).min(1.0),
                evidence: format!(
                    "specific cooling power {recent_mean:.3} kW/kW, robust z {z:.1} vs baseline"
                ),
            }]
        } else {
            Vec::new()
        }
    }
}

/// Diagnostic × System Hardware: node-level anomaly detection with cause
/// attribution (Table I: "Node-level anomaly detection \[17\],\[26\],\[47\]",
/// "System-level root cause analysis \[9\]").
///
/// Comparing raw temperatures across a fleet fails: a loaded healthy node
/// runs far hotter than an idle faulty one. The detector therefore
/// compares the *thermal-path quality* of each node — its temperature rise
/// over the loop inlet per watt of power, `(T − T_inlet)/P` — which is a
/// physical constant of the node, invariant to load and weather. A fan
/// failure or degraded thermal interface multiplies it.
///
/// Two complementary tests flag a node:
///
/// * **fleet-relative** — robust z of the node's recent thermal resistance
///   against the fleet's (catches faults that predate the window, but is
///   diluted by legitimate heterogeneity such as rack cooling layout);
/// * **self-relative** — robust z of the node's recent resistance against
///   its *own* earlier baseline in the window (immune to heterogeneity;
///   catches any onset inside the window).
///
/// Attribution uses fan telemetry: high thermal resistance with a dead fan
/// is a fan failure; with a spinning fan it is thermal degradation.
pub struct NodeAnomalyDetector {
    /// Robust-z threshold against the fleet distribution.
    pub z_threshold: f64,
    /// Trailing sub-window used as "current state", milliseconds.
    pub recent_ms: u64,
    /// Minimum relative increase of thermal resistance to report — the
    /// effect-size guard. Legitimate operating-point changes (a node going
    /// idle moves its rack-offset term) shift the estimate by up to ~20%
    /// on the default layouts; real faults multiply it by 1.4× or more.
    pub min_relative_increase: f64,
}

impl Default for NodeAnomalyDetector {
    fn default() -> Self {
        NodeAnomalyDetector {
            // The relative-increase guard is the primary discriminator
            // (healthy nodes stay within ±10%, faults exceed +25%); the z
            // test only confirms the shift is large against the natural
            // (load-driven) variance, so it is deliberately loose.
            z_threshold: 2.5,
            recent_ms: 10 * 60 * 1_000,
            min_relative_increase: 0.25,
        }
    }
}

impl NodeAnomalyDetector {
    /// Creates the detector with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for NodeAnomalyDetector {
    fn name(&self) -> &str {
        "node-anomaly-detector"
    }

    fn description(&self) -> &str {
        "Fleet-relative node thermal anomaly detection with fan attribution"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Diagnostic,
            Pillar::SystemHardware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let temps = super::node_sensors(&ctx.registry, "temp_c");
        let powers = super::node_sensors(&ctx.registry, "power_w");
        let fans = super::node_sensors(&ctx.registry, "fan");
        if temps.len() < 4 {
            return Vec::new();
        }
        let recent = TimeRange::trailing(ctx.now, self.recent_ms);
        let inlet = ctx
            .registry
            .lookup("/facility/cooling/inlet_c")
            .and_then(|s| {
                Query::sensors(s)
                    .range(recent)
                    .aggregate(Aggregation::Mean)
                    .run(&q)
                    .scalar()
            })
            .unwrap_or(25.0);
        // Per-node thermal-resistance *series* over the full window, on a
        // 1-minute grid: r(t) = (T(t) − inlet)/P(t).
        let bucket_ms = 60_000u64;
        let r_series: Vec<Vec<f64>> = temps
            .iter()
            .zip(&powers)
            .map(|(&t, &p)| {
                let (grid, m) = Query::sensors([t, p])
                    .range(ctx.window)
                    .align(bucket_ms)
                    .run(&q)
                    .aligned();
                let _ = grid;
                m[0].iter()
                    .zip(&m[1])
                    .filter(|(t, p)| t.is_finite() && p.is_finite() && **p > 1.0)
                    .map(|(&t, &p)| (t - inlet).max(0.0) / p)
                    .collect()
            })
            .collect();
        let recent_r: Vec<Option<f64>> = r_series
            .iter()
            .map(|s| {
                let n = s.len();
                (n >= 10).then(|| {
                    let tail = &s[n - (n / 5).max(3)..];
                    tail.iter().sum::<f64>() / tail.len() as f64
                })
            })
            .collect();
        // Fleet-relative z over the recent resistances.
        let fleet_values: Vec<f64> = recent_r.iter().flatten().copied().collect();
        if fleet_values.len() < 4 {
            return Vec::new();
        }
        let fleet_z = mad_z_scores(&fleet_values).unwrap_or(vec![0.0; fleet_values.len()]);
        let fleet_median = crate::cells::diagnostic::median_of(&fleet_values).unwrap_or(f64::NAN);
        let f_recent = Query::sensors(&fans)
            .range(recent)
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalars();
        let mut out = Vec::new();
        let mut vi = 0usize;
        for (node_pos, r) in recent_r.iter().enumerate() {
            let Some(r) = r else { continue };
            let zf = fleet_z[vi];
            vi += 1;
            // Self-relative z: recent mean against the node's own *early*
            // baseline (first 25% of its series — before any mid-window
            // fault onset).
            let series = &r_series[node_pos];
            let split = ((series.len() as f64 * 0.25) as usize)
                .max(4)
                .min(series.len() - 1);
            let baseline_median = crate::cells::diagnostic::median_of(&series[..split]);
            let zs_self = {
                let mut baseline = series[..split].to_vec();
                baseline.push(*r);
                mad_z_scores(&baseline)
                    .map(|z| *z.last().unwrap())
                    .unwrap_or(0.0)
            };
            // Effect-size guard: the resistance must have actually *risen*
            // materially against whichever reference flagged it.
            let rel_fleet = if fleet_median > 1e-9 {
                r / fleet_median - 1.0
            } else {
                0.0
            };
            let rel_self = baseline_median
                .map(|b| if b > 1e-9 { r / b - 1.0 } else { 0.0 })
                .unwrap_or(0.0);
            let fleet_hit = zf > self.z_threshold && rel_fleet > self.min_relative_increase;
            let self_hit = zs_self > self.z_threshold && rel_self > self.min_relative_increase;
            let z = zf.max(zs_self);
            if fleet_hit || self_hit {
                let fan = f_recent.get(node_pos).copied().flatten().unwrap_or(1.0);
                let (kind, evidence) = if fan < 0.1 {
                    (
                        "fan-failure",
                        format!(
                            "thermal resistance {r:.3} °C/W (fleet z {zf:.1}, self z {zs_self:.1}), fan speed {fan:.2}"
                        ),
                    )
                } else {
                    (
                        "thermal-degradation",
                        format!(
                            "thermal resistance {r:.3} °C/W (fleet z {zf:.1}, self z {zs_self:.1}), fan spinning at {fan:.2}"
                        ),
                    )
                };
                out.push(Artifact::Diagnosis {
                    kind: kind.into(),
                    subject: format!("node{node_pos}"),
                    severity: (z / (2.0 * self.z_threshold)).min(1.0),
                    evidence,
                });
            }
        }
        out
    }
}

/// Diagnostic × System Hardware (second capability in the cell):
/// network-contention diagnosis from link-level counters (Table I:
/// "Diagnosing network contention issues \[19\],\[55\]", after Grant et al.'s
/// *overtime* and Jha et al.'s link-level analysis).
///
/// Reads each rack uplink's offered-vs-contention telemetry; sustained
/// contention below the threshold is reported per link, with severity
/// scaled by how much traffic was denied and how long.
pub struct NetworkContentionDiagnostics {
    /// Contention factor below which a link sample counts as congested.
    pub congested_below: f64,
    /// Fraction of the window that must be congested to report.
    pub min_congested_fraction: f64,
}

impl Default for NetworkContentionDiagnostics {
    fn default() -> Self {
        NetworkContentionDiagnostics {
            congested_below: 0.9,
            min_congested_fraction: 0.2,
        }
    }
}

impl NetworkContentionDiagnostics {
    /// Creates the diagnostic with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for NetworkContentionDiagnostics {
    fn name(&self) -> &str {
        "network-contention-diagnostics"
    }

    fn description(&self) -> &str {
        "Per-uplink congestion diagnosis from offered vs delivered counters"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Diagnostic,
            Pillar::SystemHardware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let pattern = oda_telemetry::pattern::SensorPattern::new("/hw/*/uplink_contention");
        let mut out = Vec::new();
        for sensor in ctx.registry.matching(&pattern) {
            let name = ctx.registry.name(sensor).unwrap_or_default();
            let rack = name
                .trim_start_matches("/hw/")
                .split('/')
                .next()
                .unwrap_or("rack?")
                .to_owned();
            let samples = Query::sensors(sensor).range(ctx.window).run(&q).readings();
            if samples.len() < 10 {
                continue;
            }
            let congested: Vec<f64> = samples
                .iter()
                .filter(|r| r.value < self.congested_below)
                .map(|r| r.value)
                .collect();
            let fraction = congested.len() as f64 / samples.len() as f64;
            if fraction >= self.min_congested_fraction {
                let mean_factor = congested.iter().sum::<f64>() / congested.len() as f64;
                out.push(Artifact::Diagnosis {
                    kind: "network-hog".into(),
                    subject: format!("{rack}-uplink"),
                    severity: ((1.0 - mean_factor) * fraction * 2.0).clamp(0.0, 1.0),
                    evidence: format!(
                        "congested {:.0}% of the window, mean delivery factor {mean_factor:.2}",
                        fraction * 100.0
                    ),
                });
            }
        }
        out
    }
}

/// Diagnostic × System Software: software anomaly detection (Table I:
/// "Detection of software anomalies \[16\],\[56\]", memory leaks and rogue
/// CPU consumers).
pub struct SoftwareAnomalyDetector {
    /// Minimum sustained memory growth to call a leak, GiB per hour.
    pub leak_gib_per_hour: f64,
    /// Node utilization floor that flags a rogue process on an otherwise
    /// idle machine.
    pub rogue_util_floor: f64,
}

impl Default for SoftwareAnomalyDetector {
    fn default() -> Self {
        SoftwareAnomalyDetector {
            leak_gib_per_hour: 6.0,
            rogue_util_floor: 0.15,
        }
    }
}

impl SoftwareAnomalyDetector {
    /// Creates the detector with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for SoftwareAnomalyDetector {
    fn name(&self) -> &str {
        "software-anomaly-detector"
    }

    fn description(&self) -> &str {
        "Memory-leak and rogue-process detection from node software telemetry"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Diagnostic,
            Pillar::SystemSoftware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        // System (daemon/kernel) memory is reported separately from job
        // memory, as production node exporters do — job churn would
        // otherwise mask a daemon leak completely.
        let pattern = oda_telemetry::pattern::SensorPattern::new("/sw/*/sys_mem_gib");
        let mut mems = ctx.registry.matching(&pattern);
        mems.sort_by_key(|id| {
            ctx.registry
                .name(*id)
                .and_then(|n| {
                    n.trim_start_matches("/sw/node")
                        .split('/')
                        .next()
                        .and_then(|s| s.parse::<u32>().ok())
                })
                .unwrap_or(u32::MAX)
        });
        let utils = super::node_sensors(&ctx.registry, "util");
        let mut out = Vec::new();
        // Memory leaks: *monotone* growth of the system-memory floor.
        // Discriminator: the minimum of each quarter of the window must be
        // strictly increasing, each by a margin consistent with the
        // leak-rate threshold — a one-off allocation raises one quarter
        // and then plateaus.
        for (i, &sensor) in mems.iter().enumerate() {
            let buckets = Query::sensors(sensor)
                .range(ctx.window)
                .downsample(60_000, Aggregation::Min)
                .run(&q)
                .buckets();
            if buckets.len() < 16 {
                continue;
            }
            let xs: Vec<f64> = buckets.iter().map(|b| b.start.as_hours_f64()).collect();
            let ys: Vec<f64> = buckets.iter().map(|b| b.value).collect();
            let Some((_, slope)) = linear_fit(&xs, &ys) else {
                continue;
            };
            let window_hours = xs.last().unwrap() - xs[0];
            let quarter_mins: Vec<f64> = ys
                .chunks(ys.len().div_ceil(4))
                .map(|c| c.iter().copied().fold(f64::INFINITY, f64::min))
                .collect();
            let margin = self.leak_gib_per_hour * window_hours / 8.0;
            let monotone =
                quarter_mins.len() == 4 && quarter_mins.windows(2).all(|w| w[1] > w[0] + margin);
            if slope > self.leak_gib_per_hour && monotone {
                out.push(Artifact::Diagnosis {
                    kind: "memory-leak".into(),
                    subject: format!("node{i}"),
                    severity: (slope / (4.0 * self.leak_gib_per_hour)).min(1.0),
                    evidence: format!(
                        "memory floor rising monotonically at {slope:.1} GiB/h (quarter minima {quarter_mins:.1?})"
                    ),
                });
            }
        }
        // Rogue CPU consumers: a node whose utilization *never* drops below
        // the floor across the window even though the fleet has idle
        // capacity. Scheduler-allocated work shows phase dips; a rogue
        // process is a constant floor.
        let fleet_util = ctx
            .registry
            .lookup("/sw/sched/utilization")
            .and_then(|s| {
                Query::sensors(s)
                    .range(ctx.window)
                    .aggregate(Aggregation::Mean)
                    .run(&q)
                    .scalar()
            })
            .unwrap_or(1.0);
        if fleet_util < 0.8 {
            for (i, &sensor) in utils.iter().enumerate() {
                let util = Query::sensors(sensor).range(ctx.window);
                let min = util.clone().aggregate(Aggregation::Min).run(&q).scalar();
                let mean = util.aggregate(Aggregation::Mean).run(&q).scalar();
                if let (Some(min), Some(mean)) = (min, mean) {
                    if min > self.rogue_util_floor && mean < 0.95 {
                        out.push(Artifact::Diagnosis {
                            kind: "cpu-contention".into(),
                            subject: format!("node{i}"),
                            severity: min.min(1.0),
                            evidence: format!(
                                "utilization never below {min:.2} over the window (fleet at {fleet_util:.2})"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Diagnostic × Applications: application fingerprinting (Table I:
/// "Application fingerprinting \[33\],\[36\]"), specifically the cryptominer
/// hunt of DeMasi et al. / Ates et al.
///
/// Trains a nearest-centroid classifier on labelled historical jobs, then
/// classifies new finished jobs; suspected miners are reported as
/// diagnoses with the classifier's margin as severity.
#[derive(Default)]
pub struct AppFingerprinter {
    training: Vec<JobRecord>,
    to_classify: Vec<JobRecord>,
}

impl AppFingerprinter {
    /// Creates the capability with empty feeds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Supplies labelled history (ground-truth classes known to operators).
    pub fn set_training(&mut self, records: Vec<JobRecord>) {
        self.training = records;
    }

    /// Supplies finished jobs to classify.
    pub fn set_records(&mut self, records: Vec<JobRecord>) {
        self.to_classify = records;
    }

    fn features(r: &JobRecord) -> JobFeatures {
        JobFeatures {
            mean_cpu: r.mean_cpu,
            var_cpu: r.cpu_variance(),
            mean_mem_gib: r.mean_mem_gib,
            mean_net_gbps: r.mean_net_gbps,
        }
    }
}

impl Capability for AppFingerprinter {
    fn name(&self) -> &str {
        "app-fingerprinter"
    }

    fn description(&self) -> &str {
        "Nearest-centroid application classification; flags cryptominers"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Diagnostic,
            Pillar::Applications,
        ))
    }

    fn execute(&mut self, _ctx: &CapabilityContext) -> Vec<Artifact> {
        if self.training.len() < 5 || self.to_classify.is_empty() {
            return Vec::new();
        }
        let examples: Vec<(JobClass, JobFeatures)> = self
            .training
            .iter()
            .map(|r| (r.class, Self::features(r)))
            .collect();
        let model = NearestCentroid::fit(&examples);
        let mut out = Vec::new();
        let mut correct = 0usize;
        for r in &self.to_classify {
            let (label, confidence) = model.predict(Self::features(r));
            if label == r.class {
                correct += 1;
            }
            if label == JobClass::Cryptominer {
                out.push(Artifact::Diagnosis {
                    kind: "cryptominer".into(),
                    subject: format!("job{}", r.id.0),
                    severity: confidence,
                    evidence: format!(
                        "flat max utilization (mean {:.2}, var {:.4}), {:.1} GiB, {:.2} GB/s",
                        r.mean_cpu,
                        r.cpu_variance(),
                        r.mean_mem_gib,
                        r.mean_net_gbps
                    ),
                });
            }
        }
        out.push(Artifact::Kpi {
            name: "fingerprint_accuracy".into(),
            value: correct as f64 / self.to_classify.len() as f64,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::testutil::sim_context;
    use oda_sim::prelude::*;
    use oda_telemetry::reading::Timestamp;

    #[test]
    fn node_detector_finds_injected_fan_failure() {
        let (mut dc, _) = sim_context(0.0, 21);
        dc.inject_fault(Fault::new(
            FaultKind::FanFailure { node: NodeId(2) },
            Timestamp::from_mins(10),
            Timestamp::from_hours(3),
        ));
        dc.run_for_hours(2.0);
        let ctx = crate::capability::CapabilityContext::new(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            oda_telemetry::query::TimeRange::new(Timestamp::ZERO, dc.now() + 1),
            dc.now(),
        );
        let out = NodeAnomalyDetector::new().execute(&ctx);
        let hit = out.iter().find_map(|a| match a {
            Artifact::Diagnosis { kind, subject, .. } => Some((kind.clone(), subject.clone())),
            _ => None,
        });
        let (kind, subject) = hit.expect("fan failure should be detected");
        assert_eq!(subject, "node2");
        assert_eq!(kind, "fan-failure");
    }

    #[test]
    fn node_detector_is_quiet_on_healthy_fleet() {
        let (_dc, ctx) = sim_context(2.0, 22);
        let out = NodeAnomalyDetector::new().execute(&ctx);
        let diags: Vec<_> = out
            .iter()
            .filter(|a| matches!(a, Artifact::Diagnosis { .. }))
            .collect();
        assert!(diags.is_empty(), "false alarms: {diags:?}");
    }

    #[test]
    fn network_diagnostics_find_a_hogged_uplink() {
        let (mut dc, _) = sim_context(0.0, 26);
        dc.inject_fault(Fault::new(
            FaultKind::NetworkHog {
                rack: oda_sim::hardware::rack::RackId(0),
                demand_gbps: 120.0,
            },
            Timestamp::from_mins(10),
            Timestamp::from_hours(3),
        ));
        dc.run_for_hours(2.0);
        let ctx = crate::capability::CapabilityContext::new(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            oda_telemetry::query::TimeRange::new(Timestamp::ZERO, dc.now() + 1),
            dc.now(),
        );
        let out = NetworkContentionDiagnostics::new().execute(&ctx);
        let hit = out
            .iter()
            .find_map(|a| match a {
                Artifact::Diagnosis {
                    kind,
                    subject,
                    severity,
                    ..
                } => Some((kind.clone(), subject.clone(), *severity)),
                _ => None,
            })
            .expect("hogged uplink must be diagnosed");
        assert_eq!(hit.0, "network-hog");
        assert_eq!(hit.1, "rack0-uplink");
        assert!(hit.2 > 0.5, "severity {}", hit.2);
        // A quiet twin produces no rack0 finding.
        let (_clean, clean_ctx) = sim_context(2.0, 26);
        let clean_out = NetworkContentionDiagnostics::new().execute(&clean_ctx);
        assert!(
            !clean_out.iter().any(
                |a| matches!(a, Artifact::Diagnosis { subject, .. } if subject == "rack0-uplink")
            ),
            "{clean_out:?}"
        );
    }

    #[test]
    fn infra_detector_finds_cooling_degradation() {
        let (mut dc, _) = sim_context(0.0, 22);
        dc.inject_fault(Fault::new(
            FaultKind::CoolingDegradation { factor: 2.5 },
            Timestamp::from_hours(3),
            Timestamp::from_hours(8),
        ));
        dc.run_for_hours(4.0);
        let ctx = crate::capability::CapabilityContext::new(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            oda_telemetry::query::TimeRange::new(Timestamp::ZERO, dc.now() + 1),
            dc.now(),
        );
        let out = InfraAnomalyDetector::new().execute(&ctx);
        assert!(
            out.iter().any(
                |a| matches!(a, Artifact::Diagnosis { kind, .. } if kind == "cooling-degradation")
            ),
            "degradation not detected: {out:?}"
        );
        // And quiet without the fault.
        let (_clean, clean_ctx) = sim_context(4.0, 22);
        assert!(InfraAnomalyDetector::new().execute(&clean_ctx).is_empty());
    }

    #[test]
    fn software_detector_finds_memory_leak() {
        let (mut dc, _) = sim_context(0.0, 24);
        dc.inject_fault(Fault::new(
            FaultKind::MemoryLeak {
                node: NodeId(1),
                gib_per_min: 0.5,
            },
            Timestamp::from_mins(10),
            Timestamp::from_hours(5),
        ));
        dc.run_for_hours(3.0);
        let ctx = crate::capability::CapabilityContext::new(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            oda_telemetry::query::TimeRange::new(Timestamp::ZERO, dc.now() + 1),
            dc.now(),
        );
        let out = SoftwareAnomalyDetector::new().execute(&ctx);
        assert!(
            out.iter()
                .any(|a| matches!(a, Artifact::Diagnosis { kind, subject, .. }
                if kind == "memory-leak" && subject == "node1")),
            "leak not detected: {out:?}"
        );
    }

    #[test]
    fn fingerprinter_flags_miners_and_reports_accuracy() {
        // Build records straight from class profiles (deterministic).
        let mk = |id: u64, class: JobClass| {
            let mut r = JobRecord {
                id: JobId(id),
                user: 0,
                class,
                nodes: 1,
                submit: Timestamp::ZERO,
                start: Some(Timestamp::ZERO),
                end: Some(Timestamp::from_mins(30)),
                state: JobState::Completed,
                requested_walltime_s: 3_600.0,
                work_node_seconds: 1_000.0,
                mean_cpu: 0.0,
                var_cpu: 0.0,
                mean_mem_gib: 0.0,
                mean_net_gbps: 0.0,
                energy_j: 1.0,
                samples: 0,
            };
            // Sample the class's profile like the simulator would.
            for tick in 0..200u64 {
                let x = (tick % 100) as f64 / 100.0;
                let cpu = class.cpu_util(x);
                let n = (tick + 1) as f64;
                let d = cpu - r.mean_cpu;
                r.mean_cpu += d / n;
                r.var_cpu += d * (cpu - r.mean_cpu);
                r.mean_mem_gib += (class.memory_gib(x) - r.mean_mem_gib) / n;
                r.mean_net_gbps += (class.net_gbps(x) - r.mean_net_gbps) / n;
                r.samples += 1;
            }
            r
        };
        let mut training = Vec::new();
        let mut id = 0;
        for class in JobClass::ALL {
            for _ in 0..4 {
                training.push(mk(id, class));
                id += 1;
            }
        }
        let suspects = vec![
            mk(100, JobClass::Cryptominer),
            mk(101, JobClass::ComputeBound),
        ];
        let mut cap = AppFingerprinter::new();
        cap.set_training(training);
        cap.set_records(suspects);
        let ctx = crate::capability::CapabilityContext::new(
            std::sync::Arc::new(oda_telemetry::store::TimeSeriesStore::with_capacity(4)),
            oda_telemetry::sensor::SensorRegistry::new(),
            oda_telemetry::query::TimeRange::all(),
            Timestamp::ZERO,
        );
        let out = cap.execute(&ctx);
        let miners: Vec<&Artifact> = out
            .iter()
            .filter(|a| matches!(a, Artifact::Diagnosis { kind, .. } if kind == "cryptominer"))
            .collect();
        assert_eq!(miners.len(), 1);
        match miners[0] {
            Artifact::Diagnosis { subject, .. } => assert_eq!(subject, "job100"),
            _ => unreachable!(),
        }
        let acc = out
            .iter()
            .find_map(|a| a.kpi("fingerprint_accuracy"))
            .unwrap();
        assert_eq!(acc, 1.0);
    }
}
