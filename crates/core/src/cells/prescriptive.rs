//! Prescriptive-row reference capabilities.
//!
//! Prescriptive cells emit [`Artifact::Prescription`]s; the control plane
//! (an experiment harness, or an operator) applies them to the data
//! center's knobs. Each capability becomes *proactive* automatically when
//! upstream predictive artifacts are present in the pipeline context —
//! the §V-A pattern.

use crate::analytics_type::AnalyticsType;
use crate::capability::{Artifact, Capability, CapabilityContext};
use crate::grid::{GridCell, GridFootprint};
use crate::pillar::Pillar;
use oda_analytics::prescriptive::autotune::{coordinate_descent, ParameterSpace};
use oda_analytics::prescriptive::cooling_mode::{CoolingModeSwitcher, ModeAdvice, PlantModel};
use oda_analytics::prescriptive::dvfs::FreqPolicy;
use oda_telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};

/// Prescriptive × Building Infrastructure: cooling setpoint and mode
/// tuning (Table I: "Switching between types of cooling \[12\]", "Tuning of
/// cooling machinery \[18\],\[37\]", "Responding to anomalies \[38\],\[39\]").
///
/// Strategy: track the outside temperature (forecast if a predictive stage
/// supplied one, otherwise the latest observation) and propose the lowest
/// setpoint that still admits free cooling, within a safety band; advise
/// the plant mode via the economics model. Upstream cooling-degradation
/// diagnoses trigger a conservative response (raise setpoint, flag for
/// service) — the anomaly-response use case.
pub struct CoolingOptimizer {
    /// Legal setpoint band, °C.
    pub setpoint_range_c: (f64, f64),
    /// Margin added over `outside + approach` to keep free cooling robust.
    pub margin_c: f64,
    plant: PlantModel,
    switcher: CoolingModeSwitcher,
}

impl Default for CoolingOptimizer {
    fn default() -> Self {
        CoolingOptimizer {
            setpoint_range_c: (18.0, 45.0),
            margin_c: 1.0,
            plant: PlantModel::default(),
            switcher: CoolingModeSwitcher::new(PlantModel::default(), 4),
        }
    }
}

impl CoolingOptimizer {
    /// Creates the optimizer with default plant economics.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for CoolingOptimizer {
    fn name(&self) -> &str {
        "cooling-optimizer"
    }

    fn description(&self) -> &str {
        "Setpoint and cooling-mode prescription; proactive with upstream weather forecasts"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Prescriptive,
            Pillar::BuildingInfrastructure,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let mut out = Vec::new();
        // Anomaly response dominates: with a degraded plant, run warm and
        // call service.
        let degraded = ctx
            .upstream_diagnoses()
            .iter()
            .any(|(kind, _, _)| *kind == "cooling-degradation");
        if degraded {
            out.push(Artifact::Prescription {
                action: "cooling_setpoint_c".into(),
                setting: format!("{:.1}", self.setpoint_range_c.1),
                expected_impact: "reduce load on degraded plant until serviced".into(),
                automatable: true,
            });
            out.push(Artifact::Prescription {
                action: "service_ticket".into(),
                setting: "cooling-plant inspection".into(),
                expected_impact: "restore plant efficiency".into(),
                automatable: false,
            });
            return out;
        }
        // Outside temperature: forecast if available (proactive), else
        // latest observation (reactive).
        let forecasts = ctx.upstream_forecasts("/facility/outside_temp");
        let proactive = !forecasts.is_empty();
        let outside = if proactive {
            forecasts
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max)
        } else {
            match ctx.registry.lookup("/facility/outside_temp").and_then(|s| {
                Query::sensors(s)
                    .range(TimeRange::trailing(ctx.now, 600_000))
                    .aggregate(Aggregation::Last)
                    .run(&q)
                    .scalar()
            }) {
                Some(v) => v,
                None => return out,
            }
        };
        let it_kw = ctx
            .registry
            .lookup("/facility/power/it_kw")
            .and_then(|s| {
                Query::sensors(s)
                    .range(TimeRange::trailing(ctx.now, 600_000))
                    .aggregate(Aggregation::Mean)
                    .run(&q)
                    .scalar()
            })
            .unwrap_or(0.0);
        // Lowest setpoint that keeps free cooling feasible against the
        // (worst-case forecast) outside temperature.
        let setpoint = (outside + self.plant.approach_c + self.margin_c)
            .clamp(self.setpoint_range_c.0, self.setpoint_range_c.1);
        let mode = self.switcher.advise(setpoint, outside, it_kw);
        out.push(Artifact::Prescription {
            action: "cooling_setpoint_c".into(),
            setting: format!("{setpoint:.1}"),
            expected_impact: format!(
                "{} free cooling at outside {outside:.1} °C",
                if proactive {
                    "proactively hold"
                } else {
                    "hold"
                }
            ),
            automatable: true,
        });
        out.push(Artifact::Prescription {
            action: "cooling_mode".into(),
            setting: match mode {
                ModeAdvice::FreeCooling => "free-cooling".into(),
                ModeAdvice::Chiller => "chiller".into(),
            },
            expected_impact: "cheapest feasible plant mode".into(),
            automatable: true,
        });
        out
    }
}

/// Prescriptive × System Hardware: fleet DVFS prescriptions (Table I:
/// "CPU frequency tuning \[11\],\[24\],\[40\]").
///
/// Maps each node's recent (or upstream-forecast) utilization through a
/// [`FreqPolicy`]; emits one prescription per node whose recommended clock
/// differs from its current clock by more than a deadband.
pub struct DvfsTuner {
    /// The utilization→frequency policy.
    pub policy: FreqPolicy,
    /// Minimum change worth prescribing, GHz.
    pub deadband_ghz: f64,
}

impl Default for DvfsTuner {
    fn default() -> Self {
        DvfsTuner {
            policy: FreqPolicy::default_for_range(1.2, 3.0),
            deadband_ghz: 0.05,
        }
    }
}

impl DvfsTuner {
    /// Creates the tuner with the default policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for DvfsTuner {
    fn name(&self) -> &str {
        "dvfs-tuner"
    }

    fn description(&self) -> &str {
        "Per-node CPU frequency prescriptions from utilization"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Prescriptive,
            Pillar::SystemHardware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let utils = super::node_sensors(&ctx.registry, "util");
        let freqs = super::node_sensors(&ctx.registry, "freq_ghz");
        let recent = TimeRange::trailing(ctx.now, 5 * 60 * 1_000);
        let u = Query::sensors(&utils)
            .range(recent)
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalars();
        let f = Query::sensors(&freqs)
            .range(recent)
            .aggregate(Aggregation::Last)
            .run(&q)
            .scalars();
        let mut out = Vec::new();
        for (i, (util, cur)) in u.iter().zip(&f).enumerate() {
            let (Some(util), Some(cur)) = (util, cur) else {
                continue;
            };
            // Proactive basis when the pipeline forecast this node's load.
            let basis = ctx
                .upstream_forecasts(&format!("/hw/node{i}/util"))
                .last()
                .map(|&(_, v)| v.clamp(0.0, 1.0))
                .unwrap_or(*util);
            let target = self.policy.frequency_for(basis);
            if (target - cur).abs() > self.deadband_ghz {
                out.push(Artifact::Prescription {
                    action: format!("node{i}/freq_ghz"),
                    setting: format!("{target:.2}"),
                    expected_impact: format!(
                        "match clock to utilization {basis:.2} (cubic dynamic-power saving)"
                    ),
                    automatable: true,
                });
            }
        }
        out
    }
}

/// Prescriptive × System Software: placement-policy prescription (Table I:
/// "Power and KPI-aware scheduling \[21\]-\[23\]", "Intelligent placement
/// \[42\]").
///
/// Chooses among the simulator's placement policies from observed
/// conditions: network contention favours packing, thermally skewed racks
/// favour cooling-aware placement, otherwise first-fit.
pub struct SchedulerTuner {
    /// Mean uplink contention below which packing is prescribed.
    pub contention_threshold: f64,
    /// Fleet temperature spread (max-min of rack means) above which
    /// cooling-aware placement is prescribed, °C.
    pub thermal_skew_c: f64,
}

impl Default for SchedulerTuner {
    fn default() -> Self {
        SchedulerTuner {
            contention_threshold: 0.98,
            thermal_skew_c: 4.0,
        }
    }
}

impl SchedulerTuner {
    /// Creates the tuner with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for SchedulerTuner {
    fn name(&self) -> &str {
        "scheduler-tuner"
    }

    fn description(&self) -> &str {
        "Prescribes the placement policy from contention and thermal telemetry"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Prescriptive,
            Pillar::SystemSoftware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        // Mean contention across rack uplinks.
        let pattern = oda_telemetry::pattern::SensorPattern::new("/hw/*/uplink_contention");
        let links = ctx.registry.matching(&pattern);
        let contention: Vec<f64> = Query::sensors(&links)
            .range(ctx.window)
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalars()
            .into_iter()
            .flatten()
            .collect();
        let mean_contention = if contention.is_empty() {
            1.0
        } else {
            contention.iter().sum::<f64>() / contention.len() as f64
        };
        // Thermal skew across nodes.
        let temps = super::node_sensors(&ctx.registry, "temp_c");
        let t_means: Vec<f64> = Query::sensors(&temps)
            .range(ctx.window)
            .aggregate(Aggregation::Mean)
            .run(&q)
            .scalars()
            .into_iter()
            .flatten()
            .collect();
        let skew = if t_means.is_empty() {
            0.0
        } else {
            t_means.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - t_means.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let (policy, why) = if mean_contention < self.contention_threshold {
            (
                "pack-racks",
                format!("uplink contention {mean_contention:.3} — minimise inter-rack traffic"),
            )
        } else if skew > self.thermal_skew_c {
            (
                "cooling-aware",
                format!("node temperature skew {skew:.1} °C — place heat where cooling is cheap"),
            )
        } else {
            ("first-fit", "no contention or thermal pressure".into())
        };
        vec![Artifact::Prescription {
            action: "placement_policy".into(),
            setting: policy.into(),
            expected_impact: why,
            automatable: true,
        }]
    }
}

/// Prescriptive × Applications: application auto-tuning (Table I:
/// "Auto-tuning of HPC applications \[28\],\[29\],\[41\]", "Code improvement
/// recommendations \[44\]").
///
/// Owns a modelled application (runtime as a function of thread count and
/// tile size, with machine-dependent constants) and tunes it by coordinate
/// descent, exactly as Active-Harmony-style tuners search measured
/// configurations. Emits the tuned parameters and, when the tuned optimum
/// still leaves the kernel memory-bound, a code recommendation.
pub struct AppAutoTuner {
    /// Candidate thread counts.
    pub threads: Vec<f64>,
    /// Candidate tile sizes.
    pub tiles: Vec<f64>,
    /// Probe budget per tuning session.
    pub budget: usize,
}

impl Default for AppAutoTuner {
    fn default() -> Self {
        AppAutoTuner {
            threads: (0..6).map(|i| (1u32 << i) as f64).collect(), // 1..32
            tiles: vec![16.0, 32.0, 64.0, 128.0, 256.0],
            budget: 60,
        }
    }
}

impl AppAutoTuner {
    /// Creates the tuner with the default parameter space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Modelled kernel runtime (seconds) at a configuration, for a machine
    /// whose relative clock is `clock` (1.0 = nominal).
    ///
    /// The shape is the usual one: compute time scales 1/threads until
    /// memory bandwidth saturates; tiles too small thrash the cache, too
    /// large spill it; parallel overhead grows with thread count.
    fn runtime_model(threads: f64, tile: f64, clock: f64) -> f64 {
        let compute = 64.0 / (threads.min(16.0) * clock); // bandwidth wall at 16
        let cache_penalty = {
            let ideal: f64 = 64.0;
            let ratio = (tile.max(1.0) / ideal).ln().abs();
            1.0 + 0.35 * ratio * ratio
        };
        let overhead = 0.08 * threads;
        compute * cache_penalty + overhead
    }
}

impl Capability for AppAutoTuner {
    fn name(&self) -> &str {
        "app-auto-tuner"
    }

    fn description(&self) -> &str {
        "Coordinate-descent tuning of application parameters on the target machine"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Prescriptive,
            Pillar::Applications,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        // Machine state affects measured runtimes: read the fleet's mean
        // clock so the tuned optimum reflects the deployment.
        let q = QueryEngine::new(&ctx.store);
        let freqs = super::node_sensors(&ctx.registry, "freq_ghz");
        let clocks: Vec<f64> = Query::sensors(&freqs)
            .range(TimeRange::trailing(ctx.now, 600_000))
            .aggregate(Aggregation::Last)
            .run(&q)
            .scalars()
            .into_iter()
            .flatten()
            .collect();
        let clock = if clocks.is_empty() {
            1.0
        } else {
            clocks.iter().sum::<f64>() / clocks.len() as f64 / 3.0
        };
        let space = ParameterSpace::new(vec![self.threads.clone(), self.tiles.clone()]);
        let result = coordinate_descent(&space, vec![0, 0], self.budget, |v| {
            Self::runtime_model(v[0], v[1], clock.max(0.1))
        });
        let mut out = vec![Artifact::Prescription {
            action: "app_parameters".into(),
            setting: format!(
                "threads={}, tile={}",
                result.best_values[0], result.best_values[1]
            ),
            expected_impact: format!(
                "modelled runtime {:.2} s after {} probes",
                result.best_cost, result.evaluations
            ),
            automatable: true,
        }];
        // Code recommendation: if adding threads past the bandwidth wall no
        // longer helps, the kernel is memory-bound.
        if result.best_values[0] >= 16.0 {
            out.push(Artifact::Prescription {
                action: "code_recommendation".into(),
                setting: "improve data locality / blocking".into(),
                expected_impact: "kernel saturates memory bandwidth at 16 threads".into(),
                automatable: false,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::testutil::sim_context;

    fn prescriptions(out: &[Artifact]) -> Vec<(String, String)> {
        out.iter()
            .filter_map(|a| match a {
                Artifact::Prescription {
                    action, setting, ..
                } => Some((action.clone(), setting.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cooling_optimizer_tracks_outside_temperature() {
        let (_dc, ctx) = sim_context(2.0, 41);
        let out = CoolingOptimizer::new().execute(&ctx);
        let p = prescriptions(&out);
        let sp: f64 = p
            .iter()
            .find(|(a, _)| a == "cooling_setpoint_c")
            .map(|(_, s)| s.parse().unwrap())
            .expect("setpoint prescription");
        assert!((18.0..=45.0).contains(&sp), "setpoint {sp}");
        assert!(p.iter().any(|(a, _)| a == "cooling_mode"));
    }

    #[test]
    fn cooling_optimizer_uses_upstream_forecast_proactively() {
        let (_dc, mut ctx) = sim_context(2.0, 42);
        // A predictive stage warns of a hot afternoon.
        ctx.upstream.push(Artifact::Forecast {
            quantity: "/facility/outside_temp".into(),
            horizon_s: 3_600.0,
            value: 38.0,
        });
        let out = CoolingOptimizer::new().execute(&ctx);
        let sp: f64 = prescriptions(&out)
            .iter()
            .find(|(a, _)| a == "cooling_setpoint_c")
            .map(|(_, s)| s.parse().unwrap())
            .unwrap();
        // Must hold free cooling against the *forecast* 38 °C: ≥ 43.
        assert!(sp >= 42.9, "proactive setpoint {sp}");
    }

    #[test]
    fn cooling_optimizer_responds_to_degradation_diagnosis() {
        let (_dc, mut ctx) = sim_context(1.0, 43);
        ctx.upstream.push(Artifact::Diagnosis {
            kind: "cooling-degradation".into(),
            subject: "cooling-plant".into(),
            severity: 0.8,
            evidence: String::new(),
        });
        let out = CoolingOptimizer::new().execute(&ctx);
        let p = prescriptions(&out);
        assert!(p.iter().any(|(a, _)| a == "service_ticket"));
        let sp: f64 = p
            .iter()
            .find(|(a, _)| a == "cooling_setpoint_c")
            .map(|(_, s)| s.parse().unwrap())
            .unwrap();
        assert_eq!(sp, 45.0, "conservative setpoint under degradation");
    }

    #[test]
    fn dvfs_tuner_downclocks_idle_nodes() {
        // A freshly-started site is idle: nodes at 3.0 GHz with ~0 util
        // should be prescribed the minimum clock.
        let (dc, ctx) = sim_context(0.5, 44);
        let out = DvfsTuner::new().execute(&ctx);
        let p = prescriptions(&out);
        assert!(!p.is_empty(), "idle nodes at max clock must be downclocked");
        for (action, setting) in &p {
            assert!(action.ends_with("/freq_ghz"));
            let f: f64 = setting.parse().unwrap();
            assert!((1.2..=3.0).contains(&f));
        }
        let _ = dc;
    }

    #[test]
    fn scheduler_tuner_prescribes_packing_under_contention() {
        let (mut dc, _) = sim_context(0.0, 45);
        dc.inject_fault(oda_sim::prelude::Fault::new(
            oda_sim::faults::FaultKind::NetworkHog {
                rack: oda_sim::hardware::rack::RackId(0),
                demand_gbps: 100.0,
            },
            oda_telemetry::reading::Timestamp::from_mins(5),
            oda_telemetry::reading::Timestamp::from_hours(3),
        ));
        dc.run_for_hours(2.0);
        let ctx = crate::capability::CapabilityContext::new(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            oda_telemetry::query::TimeRange::new(
                oda_telemetry::reading::Timestamp::ZERO,
                dc.now() + 1,
            ),
            dc.now(),
        );
        let out = SchedulerTuner::new().execute(&ctx);
        let p = prescriptions(&out);
        assert_eq!(p[0].0, "placement_policy");
        assert_eq!(p[0].1, "pack-racks", "congestion should prescribe packing");
    }

    #[test]
    fn app_tuner_finds_interior_optimum() {
        let (_dc, ctx) = sim_context(0.5, 46);
        let out = AppAutoTuner::new().execute(&ctx);
        let p = prescriptions(&out);
        let setting = &p.iter().find(|(a, _)| a == "app_parameters").unwrap().1;
        // The modelled kernel's best tile is 64; threads should hit the
        // bandwidth wall at 16 (not 32 — overhead) for any clock.
        assert!(setting.contains("tile=64"), "{setting}");
        assert!(setting.contains("threads=16"), "{setting}");
        // Memory-bound recommendation accompanies the wall.
        assert!(p.iter().any(|(a, _)| a == "code_recommendation"));
    }
}
