//! Working reference capabilities — one (at least) per grid cell.
//!
//! The paper classifies fifty published systems into sixteen cells; this
//! module makes the classification concrete by providing a runnable
//! capability for every cell, each built from `oda-analytics` algorithms
//! over ordinary telemetry. Together they turn Table I from a taxonomy
//! into a test suite: experiment E8 executes all sixteen against one
//! simulated trace.
//!
//! Conventions shared by all cells:
//!
//! * inputs are the telemetry archive (plus, for Applications-pillar
//!   cells, the resource manager's job-accounting feed — the equivalent of
//!   reading the SLURM database, provided via `set_records`);
//! * outputs are typed [`crate::capability::Artifact`]s;
//! * nothing reads simulator internals.

pub mod descriptive;
pub mod diagnostic;
pub mod predictive;
pub mod prescriptive;

use crate::capability::Capability;
use oda_telemetry::pattern::SensorPattern;
use oda_telemetry::sensor::{SensorId, SensorRegistry};

/// Resolves all `/hw/node*/<leaf>` sensors, ordered by node index.
pub(crate) fn node_sensors(registry: &SensorRegistry, leaf: &str) -> Vec<SensorId> {
    let pattern = SensorPattern::new(&format!("/hw/*/{leaf}"));
    let mut ids = registry.matching(&pattern);
    ids.sort_by_key(|id| {
        registry
            .name(*id)
            .and_then(|n| {
                n.trim_start_matches("/hw/node")
                    .split('/')
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
            })
            .unwrap_or(u32::MAX)
    });
    ids
}

/// Node index parsed back from a `/hw/node<i>/...` sensor name.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn node_index_of(registry: &SensorRegistry, id: SensorId) -> Option<u32> {
    registry.name(id).and_then(|n| {
        n.trim_start_matches("/hw/node")
            .split('/')
            .next()
            .and_then(|s| s.parse().ok())
    })
}

/// Builds the sixteen-plus-extras capability set: the sixteen reference
/// capabilities plus the additional per-cell capabilities (alert board,
/// network-contention diagnostics) — demonstrating that cells hold many
/// capabilities, as the paper's Table I cells hold many use cases.
pub fn extended_set() -> Vec<Box<dyn Capability>> {
    let mut set = all_sixteen();
    set.push(Box::new(descriptive::AlertBoard::new()));
    set.push(Box::new(diagnostic::NetworkContentionDiagnostics::new()));
    set
}

/// Builds the full set of sixteen reference capabilities with default
/// configurations (Applications-pillar cells start with empty accounting
/// feeds).
pub fn all_sixteen() -> Vec<Box<dyn Capability>> {
    vec![
        Box::new(descriptive::FacilityDashboard::new()),
        Box::new(descriptive::HardwareDashboard::new()),
        Box::new(descriptive::SchedulerDashboard::new()),
        Box::new(descriptive::JobDashboard::new()),
        Box::new(diagnostic::InfraAnomalyDetector::new()),
        Box::new(diagnostic::NodeAnomalyDetector::new()),
        Box::new(diagnostic::SoftwareAnomalyDetector::new()),
        Box::new(diagnostic::AppFingerprinter::new()),
        Box::new(predictive::InfraForecaster::new()),
        Box::new(predictive::HardwareForecaster::new()),
        Box::new(predictive::WorkloadForecaster::new()),
        Box::new(predictive::JobDurationPredictor::new()),
        Box::new(prescriptive::CoolingOptimizer::new()),
        Box::new(prescriptive::DvfsTuner::new()),
        Box::new(prescriptive::SchedulerTuner::new()),
        Box::new(prescriptive::AppAutoTuner::new()),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::capability::CapabilityContext;
    use oda_sim::prelude::*;
    use oda_telemetry::query::TimeRange;
    use std::sync::Arc;

    /// Runs a tiny data center for `hours` and wraps its telemetry in a
    /// capability context covering the full run.
    pub fn sim_context(hours: f64, seed: u64) -> (DataCenter, CapabilityContext) {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(seed)
            .build();
        dc.run_for_hours(hours);
        let ctx = CapabilityContext::new(
            Arc::clone(dc.store()),
            dc.registry().clone(),
            TimeRange::new(oda_telemetry::reading::Timestamp::ZERO, dc.now() + 1),
            dc.now(),
        );
        (dc, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCell;
    use crate::registry::CapabilityRegistry;

    #[test]
    fn sixteen_capabilities_cover_the_whole_grid() {
        let mut reg = CapabilityRegistry::new();
        for c in all_sixteen() {
            reg.register(c);
        }
        let cov = reg.coverage();
        assert!(cov.gaps.is_empty(), "uncovered cells: {:?}", cov.gaps);
        assert_eq!(reg.len(), 16);
        for cell in GridCell::all() {
            assert!(!reg.in_cell(cell).is_empty(), "nothing in {cell}");
        }
    }

    #[test]
    fn extended_set_deepens_cells_without_new_gaps() {
        let mut reg = CapabilityRegistry::new();
        for c in extended_set() {
            reg.register(c);
        }
        assert_eq!(reg.len(), 18);
        let cov = reg.coverage();
        assert!(cov.gaps.is_empty());
        // The deepened cells hold two capabilities each.
        use crate::analytics_type::AnalyticsType;
        use crate::pillar::Pillar;
        assert_eq!(
            *cov.per_cell.get(GridCell::new(
                AnalyticsType::Diagnostic,
                Pillar::SystemHardware
            )),
            2
        );
        assert_eq!(
            *cov.per_cell.get(GridCell::new(
                AnalyticsType::Descriptive,
                Pillar::BuildingInfrastructure
            )),
            2
        );
    }

    #[test]
    fn node_sensor_resolution_is_ordered() {
        let (dc, _) = testutil::sim_context(0.05, 1);
        let temps = node_sensors(dc.registry(), "temp_c");
        assert_eq!(temps.len(), dc.node_count());
        for (i, id) in temps.iter().enumerate() {
            assert_eq!(node_index_of(dc.registry(), *id), Some(i as u32));
        }
    }
}
