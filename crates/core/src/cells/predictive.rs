//! Predictive-row reference capabilities.

use crate::analytics_type::AnalyticsType;
use crate::capability::{Artifact, Capability, CapabilityContext};
use crate::grid::{GridCell, GridFootprint};
use crate::pillar::Pillar;
use oda_analytics::predictive::ar::ArModel;
use oda_analytics::predictive::forecast::{Forecaster, Holt, HoltWinters};
use oda_analytics::predictive::jobs::{JobPredictor, Outcome, Submission};
use oda_sim::datacenter::JobRecord;
use oda_telemetry::query::{Aggregation, Query, QueryEngine};

/// Diurnal-period Holt–Winters over a sensor downsampled to `bucket_ms`;
/// falls back to Holt's trend method while less than one full season of
/// history exists (a forecaster that refuses to forecast for its first day
/// in production would be useless).
fn seasonal_forecast(
    ctx: &CapabilityContext,
    sensor_name: &str,
    bucket_ms: u64,
    horizon_buckets: usize,
) -> Option<Vec<(f64, f64)>> {
    let sensor = ctx.registry.lookup(sensor_name)?;
    let q = QueryEngine::new(&ctx.store);
    let buckets = Query::sensors(sensor)
        .range(ctx.window)
        .downsample(bucket_ms, Aggregation::Mean)
        .run(&q)
        .buckets();
    let period = (24 * 3_600_000 / bucket_ms) as usize;
    let mut model: Box<dyn Forecaster> = if buckets.len() >= period + 4 {
        Box::new(HoltWinters::new(0.3, 0.02, 0.3, period))
    } else if buckets.len() >= 8 {
        Box::new(Holt::new(0.3, 0.05))
    } else {
        return None;
    };
    for b in &buckets {
        model.update(b.value);
    }
    Some(
        (1..=horizon_buckets)
            .filter_map(|h| {
                model
                    .forecast(h)
                    .map(|v| (h as f64 * bucket_ms as f64 / 1_000.0, v))
            })
            .collect(),
    )
}

/// Predictive × Building Infrastructure: forecasting facility conditions
/// (Table I: "Predicting cooling demand \[37\]", "Predicting data center
/// KPIs \[45\]").
///
/// Holt–Winters with a daily season over outside temperature and cooling
/// power — the structure facility series actually have.
pub struct InfraForecaster {
    /// Downsampling bucket for the fitted series, ms.
    pub bucket_ms: u64,
    /// Forecast horizon in buckets.
    pub horizon_buckets: usize,
}

impl Default for InfraForecaster {
    fn default() -> Self {
        InfraForecaster {
            bucket_ms: 15 * 60 * 1_000,
            horizon_buckets: 8,
        }
    }
}

impl InfraForecaster {
    /// Creates the forecaster with default windows.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for InfraForecaster {
    fn name(&self) -> &str {
        "infra-forecaster"
    }

    fn description(&self) -> &str {
        "Holt-Winters forecasting of outside temperature and cooling demand"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Predictive,
            Pillar::BuildingInfrastructure,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let mut out = Vec::new();
        for sensor in ["/facility/outside_temp", "/facility/cooling/power_kw"] {
            if let Some(fc) = seasonal_forecast(ctx, sensor, self.bucket_ms, self.horizon_buckets) {
                for (horizon_s, value) in fc {
                    out.push(Artifact::Forecast {
                        quantity: sensor.into(),
                        horizon_s,
                        value,
                    });
                }
            }
        }
        out
    }
}

/// Predictive × System Hardware: sensor forecasting (Table I: "Forecasting
/// hardware sensors \[32\],\[47\]").
///
/// AR(p) over each node's temperature; emits the forecast for every node
/// plus a fleet-max forecast (the operators' "will anything overheat?"
/// question).
pub struct HardwareForecaster {
    /// AR order.
    pub order: usize,
    /// Downsampling bucket, ms.
    pub bucket_ms: u64,
    /// Forecast horizon in buckets.
    pub horizon_buckets: usize,
}

impl Default for HardwareForecaster {
    fn default() -> Self {
        HardwareForecaster {
            order: 4,
            bucket_ms: 60_000,
            horizon_buckets: 10,
        }
    }
}

impl HardwareForecaster {
    /// Creates the forecaster with default parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for HardwareForecaster {
    fn name(&self) -> &str {
        "hardware-forecaster"
    }

    fn description(&self) -> &str {
        "AR(p) forecasting of node temperatures"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Predictive,
            Pillar::SystemHardware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let temps = super::node_sensors(&ctx.registry, "temp_c");
        let mut out = Vec::new();
        let mut fleet_max: Option<f64> = None;
        for (i, &sensor) in temps.iter().enumerate() {
            let buckets = Query::sensors(sensor)
                .range(ctx.window)
                .downsample(self.bucket_ms, Aggregation::Mean)
                .run(&q)
                .buckets();
            let series: Vec<f64> = buckets.iter().map(|b| b.value).collect();
            let Some(model) = ArModel::fit(&series, self.order) else {
                continue;
            };
            let mut recent: Vec<f64> = series.iter().rev().take(self.order).copied().collect();
            if recent.len() < self.order {
                continue;
            }
            recent.truncate(self.order);
            let fc = model.forecast(&recent, self.horizon_buckets);
            let value = *fc.last().unwrap();
            let horizon_s = self.horizon_buckets as f64 * self.bucket_ms as f64 / 1_000.0;
            out.push(Artifact::Forecast {
                quantity: format!("/hw/node{i}/temp_c"),
                horizon_s,
                value,
            });
            fleet_max = Some(fleet_max.map_or(value, |m: f64| m.max(value)));
        }
        if let Some(m) = fleet_max {
            out.push(Artifact::Forecast {
                quantity: "fleet_max_temp_c".into(),
                horizon_s: self.horizon_buckets as f64 * self.bucket_ms as f64 / 1_000.0,
                value: m,
            });
        }
        out
    }
}

/// Predictive × System Software: workload forecasting (Table I:
/// "Predicting HPC workloads \[23\]"); the companion cell "Simulating HPC
/// systems and schedulers \[49\]-\[51\]" is exercised by the what-if policy
/// experiment (E6), which replays identical workloads under different
/// placement policies using `oda-sim` as the simulator.
pub struct WorkloadForecaster {
    /// Downsampling bucket, ms.
    pub bucket_ms: u64,
    /// Forecast horizon in buckets.
    pub horizon_buckets: usize,
}

impl Default for WorkloadForecaster {
    fn default() -> Self {
        WorkloadForecaster {
            bucket_ms: 15 * 60 * 1_000,
            horizon_buckets: 8,
        }
    }
}

impl WorkloadForecaster {
    /// Creates the forecaster with default windows.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for WorkloadForecaster {
    fn name(&self) -> &str {
        "workload-forecaster"
    }

    fn description(&self) -> &str {
        "Holt-Winters forecasting of queue length and arrival pressure"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Predictive,
            Pillar::SystemSoftware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let mut out = Vec::new();
        for sensor in ["/sw/sched/queue_len", "/sw/sched/utilization"] {
            if let Some(fc) = seasonal_forecast(ctx, sensor, self.bucket_ms, self.horizon_buckets) {
                for (horizon_s, value) in fc {
                    out.push(Artifact::Forecast {
                        quantity: sensor.into(),
                        horizon_s,
                        value: value.max(0.0),
                    });
                }
            }
        }
        out
    }
}

/// Predictive × Applications: job duration prediction from submission
/// metadata (Table I: "Predicting job durations \[30\],\[34\],\[35\]",
/// "Predicting job resource usage \[31\],\[52\],\[53\]").
#[derive(Default)]
pub struct JobDurationPredictor {
    records: Vec<JobRecord>,
}

impl JobDurationPredictor {
    /// Creates the predictor with an empty accounting feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Supplies finished-job records (chronological).
    pub fn set_records(&mut self, records: Vec<JobRecord>) {
        self.records = records;
    }

    fn outcomes(&self) -> Vec<Outcome> {
        self.records
            .iter()
            .filter_map(|r| {
                let runtime_s = r.runtime_s()?;
                Some(Outcome {
                    submission: Submission {
                        user: r.user,
                        nodes: r.nodes,
                        requested_walltime_s: r.requested_walltime_s,
                    },
                    runtime_s,
                    mean_node_power_w: if r.samples > 0 {
                        r.energy_j / runtime_s.max(1.0) / r.nodes as f64
                    } else {
                        0.0
                    },
                })
            })
            .collect()
    }
}

impl Capability for JobDurationPredictor {
    fn name(&self) -> &str {
        "job-duration-predictor"
    }

    fn description(&self) -> &str {
        "Per-user history + k-NN prediction of job runtime and power from submission data"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Predictive,
            Pillar::Applications,
        ))
    }

    fn execute(&mut self, _ctx: &CapabilityContext) -> Vec<Artifact> {
        let outcomes = self.outcomes();
        if outcomes.len() < 10 {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Replay accuracy (each job predicted before being observed).
        if let Some(mape) = JobPredictor::replay_mape(&outcomes) {
            out.push(Artifact::Kpi {
                name: "job_runtime_mape".into(),
                value: mape,
            });
            // Baseline the paper-cited predictors beat: trusting the
            // requested walltime.
            let walltime_mape = outcomes
                .iter()
                .filter(|o| o.runtime_s > 1e-9)
                .map(|o| ((o.submission.requested_walltime_s - o.runtime_s) / o.runtime_s).abs())
                .sum::<f64>()
                / outcomes.len() as f64;
            out.push(Artifact::Kpi {
                name: "walltime_baseline_mape".into(),
                value: walltime_mape,
            });
        }
        // Forward prediction for the most recent submitter's next job.
        let mut model = JobPredictor::new();
        for &o in &outcomes {
            model.observe(o);
        }
        if let Some(last) = outcomes.last() {
            if let Some(pred) = model.predict(last.submission) {
                out.push(Artifact::Forecast {
                    quantity: format!("user{}_next_runtime_s", last.submission.user),
                    horizon_s: 0.0,
                    value: pred.runtime_s,
                });
                out.push(Artifact::Forecast {
                    quantity: format!("user{}_next_node_power_w", last.submission.user),
                    horizon_s: 0.0,
                    value: pred.mean_node_power_w,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::testutil::sim_context;

    #[test]
    fn infra_forecaster_trend_fallback_then_seasonal() {
        // A few hours: the trend fallback already forecasts.
        let (_dc, ctx) = sim_context(4.0, 31);
        let out = InfraForecaster::new().execute(&ctx);
        assert!(!out.is_empty(), "trend fallback should forecast");
        // Over a day: the seasonal model forecasts in a plausible band.
        let (_dc, ctx) = sim_context(30.0, 31);
        let out = InfraForecaster::new().execute(&ctx);
        let temps: Vec<f64> = out
            .iter()
            .filter_map(|a| match a {
                Artifact::Forecast {
                    quantity, value, ..
                } if quantity == "/facility/outside_temp" => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(temps.len(), 8);
        for t in temps {
            assert!((-20.0..60.0).contains(&t), "forecast {t}");
        }
    }

    #[test]
    fn hardware_forecaster_covers_every_node() {
        let (dc, ctx) = sim_context(2.0, 32);
        let out = HardwareForecaster::new().execute(&ctx);
        let per_node = out
            .iter()
            .filter(|a| matches!(a, Artifact::Forecast { quantity, .. } if quantity.starts_with("/hw/")))
            .count();
        assert_eq!(per_node, dc.node_count());
        let fleet = out.iter().find_map(|a| match a {
            Artifact::Forecast {
                quantity, value, ..
            } if quantity == "fleet_max_temp_c" => Some(*value),
            _ => None,
        });
        let m = fleet.expect("fleet max forecast");
        assert!((20.0..110.0).contains(&m), "fleet max {m}");
    }

    #[test]
    fn workload_forecaster_emits_non_negative_queue() {
        let (_dc, ctx) = sim_context(30.0, 33);
        let out = WorkloadForecaster::new().execute(&ctx);
        assert!(!out.is_empty());
        for a in &out {
            if let Artifact::Forecast { value, .. } = a {
                assert!(*value >= 0.0);
            }
        }
    }

    #[test]
    fn job_predictor_beats_walltime_baseline() {
        let (dc, ctx) = sim_context(10.0, 34);
        let mut cap = JobDurationPredictor::new();
        cap.set_records(dc.finished_jobs().to_vec());
        let out = cap.execute(&ctx);
        let mape = out.iter().find_map(|a| a.kpi("job_runtime_mape"));
        let base = out.iter().find_map(|a| a.kpi("walltime_baseline_mape"));
        let (mape, base) = (mape.expect("mape"), base.expect("baseline"));
        assert!(
            mape < base,
            "history-based prediction ({mape:.2}) must beat walltime guess ({base:.2})"
        );
    }

    #[test]
    fn job_predictor_silent_without_history() {
        let (_dc, ctx) = sim_context(0.05, 35);
        let out = JobDurationPredictor::new().execute(&ctx);
        assert!(out.is_empty());
    }
}
