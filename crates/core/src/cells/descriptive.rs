//! Descriptive-row reference capabilities: one dashboard/KPI capability per
//! pillar.

use crate::analytics_type::AnalyticsType;
use crate::capability::{Artifact, Capability, CapabilityContext};
use crate::grid::{GridCell, GridFootprint};
use crate::pillar::Pillar;
use oda_analytics::descriptive::dashboard::{gauge, sparkline, stat_line, Table};
use oda_analytics::descriptive::kpi::{self, SystemInformationEntropy};
use oda_sim::datacenter::JobRecord;
use oda_telemetry::query::{Aggregation, Query, QueryEngine};

fn resolve(ctx: &CapabilityContext, name: &str) -> Option<oda_telemetry::sensor::SensorId> {
    ctx.registry.lookup(name)
}

/// Descriptive × Building Infrastructure: PUE calculation and a facility
/// wallboard (Table I: "PUE calculation \[4\]", "Facility-level dashboards
/// \[1\],\[7\]").
#[derive(Default)]
pub struct FacilityDashboard;

impl FacilityDashboard {
    /// Creates the capability.
    pub fn new() -> Self {
        Self
    }
}

impl Capability for FacilityDashboard {
    fn name(&self) -> &str {
        "facility-dashboard"
    }

    fn description(&self) -> &str {
        "PUE calculation and facility-level wallboard over cooling/power telemetry"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Descriptive,
            Pillar::BuildingInfrastructure,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let mut out = Vec::new();
        let get_mean = |name: &str| {
            resolve(ctx, name).and_then(|s| {
                Query::sensors(s)
                    .range(ctx.window)
                    .aggregate(Aggregation::Mean)
                    .run(&q)
                    .scalar()
            })
        };
        let utility = get_mean("/facility/power/utility_kw");
        let it = get_mean("/facility/power/it_kw");
        let cooling = get_mean("/facility/cooling/power_kw");
        if let (Some(u), Some(i)) = (utility, it) {
            if let Some(p) = kpi::pue(u, i) {
                out.push(Artifact::Kpi {
                    name: "pue".into(),
                    value: p,
                });
            }
        }
        let mut body = String::new();
        if let Some(u) = utility {
            body.push_str(&stat_line("Utility feed", u, "kW"));
            body.push('\n');
        }
        if let Some(i) = it {
            body.push_str(&stat_line("IT load", i, "kW"));
            body.push('\n');
        }
        if let Some(c) = cooling {
            body.push_str(&stat_line("Cooling plant", c, "kW"));
            body.push('\n');
        }
        if let Some(s) = resolve(ctx, "/facility/outside_temp") {
            let buckets = Query::sensors(s)
                .range(ctx.window)
                .downsample(600_000, Aggregation::Mean)
                .run(&q)
                .buckets();
            let series: Vec<f64> = buckets
                .iter()
                .rev()
                .take(48)
                .rev()
                .map(|b| b.value)
                .collect();
            body.push_str(&format!("Outside temp  {}\n", sparkline(&series)));
        }
        out.push(Artifact::Report {
            title: "Facility wallboard".into(),
            body,
        });
        out
    }
}

/// Descriptive × System Hardware: ITUE, System Information Entropy and a
/// node fleet dashboard (Table I: "ITUE calculation \[59\]", "System
/// performance indicators \[14\]", "System-level dashboards \[7\],\[8\]").
pub struct HardwareDashboard {
    /// Fan power at full speed, used to separate "useful" compute power
    /// from node overhead in the ITUE denominator (deployment constant).
    pub fan_max_w: f64,
    /// Temperature above which a node counts as "hot" in the SIE state
    /// space.
    pub hot_threshold_c: f64,
}

impl Default for HardwareDashboard {
    fn default() -> Self {
        HardwareDashboard {
            fan_max_w: 60.0,
            hot_threshold_c: 80.0,
        }
    }
}

impl HardwareDashboard {
    /// Creates the capability with default deployment constants.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for HardwareDashboard {
    fn name(&self) -> &str {
        "hardware-dashboard"
    }

    fn description(&self) -> &str {
        "ITUE and SIE indicators plus a per-node fleet dashboard"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Descriptive,
            Pillar::SystemHardware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let mut out = Vec::new();
        let powers = super::node_sensors(&ctx.registry, "power_w");
        let temps = super::node_sensors(&ctx.registry, "temp_c");
        let utils = super::node_sensors(&ctx.registry, "util");
        let fans = super::node_sensors(&ctx.registry, "fan");
        let mean_of = |ids: &[oda_telemetry::sensor::SensorId]| {
            Query::sensors(ids)
                .range(ctx.window)
                .aggregate(Aggregation::Mean)
                .run(&q)
                .scalars()
        };
        let p_means = mean_of(&powers);
        let t_means = mean_of(&temps);
        let u_means = mean_of(&utils);
        let f_means = mean_of(&fans);
        // ITUE: total node power over power excluding node-internal cooling
        // (fans). Fan power model: fan_max · speed³.
        let total_w: f64 = p_means.iter().flatten().sum();
        let fan_w: f64 = f_means
            .iter()
            .flatten()
            .map(|s| self.fan_max_w * s.powi(3))
            .sum();
        if total_w > 0.0 {
            if let Some(itue) = kpi::itue(total_w, total_w - fan_w) {
                out.push(Artifact::Kpi {
                    name: "itue".into(),
                    value: itue,
                });
            }
        }
        // SIE over per-node (util, temp) states sampled at window means —
        // entropy of the fleet's state distribution.
        let mut sie = SystemInformationEntropy::new(6);
        for (u, t) in u_means.iter().zip(&t_means) {
            if let (Some(u), Some(t)) = (u, t) {
                sie.observe(kpi::node_state(*u, *t, self.hot_threshold_c));
            }
        }
        if sie.count() > 0 {
            out.push(Artifact::Kpi {
                name: "sie_bits".into(),
                value: sie.entropy_bits(),
            });
        }
        // Fleet table.
        let mut table = Table::new(["node", "power W", "temp °C", "util"]);
        for (i, ((p, t), u)) in p_means.iter().zip(&t_means).zip(&u_means).enumerate() {
            if let (Some(p), Some(t), Some(u)) = (p, t, u) {
                table.row([
                    format!("node{i}"),
                    format!("{p:.0}"),
                    format!("{t:.1}"),
                    gauge(*u, 10),
                ]);
            }
        }
        out.push(Artifact::Report {
            title: "Node fleet".into(),
            body: table.render(),
        });
        out
    }
}

/// Descriptive × System Software: slowdown and scheduler dashboard
/// (Table I: "Slowdown calculation \[60\]", "Scheduler-level dashboards
/// \[61\],\[62\]").
#[derive(Default)]
pub struct SchedulerDashboard {
    records: Vec<JobRecord>,
}

impl SchedulerDashboard {
    /// Creates the capability with an empty accounting feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Supplies the resource manager's accounting records (finished jobs).
    pub fn set_records(&mut self, records: Vec<JobRecord>) {
        self.records = records;
    }
}

impl Capability for SchedulerDashboard {
    fn name(&self) -> &str {
        "scheduler-dashboard"
    }

    fn description(&self) -> &str {
        "Job slowdown KPI and scheduler state dashboard"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Descriptive,
            Pillar::SystemSoftware,
        ))
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = QueryEngine::new(&ctx.store);
        let mut out = Vec::new();
        let scalar = |name: &str, agg: Aggregation| {
            resolve(ctx, name).and_then(|s| {
                Query::sensors(s)
                    .range(ctx.window)
                    .aggregate(agg)
                    .run(&q)
                    .scalar()
            })
        };
        let mean = |name: &str| scalar(name, Aggregation::Mean);
        let last = |name: &str| scalar(name, Aggregation::Last);
        if let Some(u) = mean("/sw/sched/utilization") {
            out.push(Artifact::Kpi {
                name: "utilization".into(),
                value: u,
            });
        }
        // Bounded slowdown from accounting records.
        let waits_runs: Vec<(f64, f64)> = self
            .records
            .iter()
            .filter_map(|r| {
                let run = r.runtime_s()?;
                let wait = r.start?.millis_since(r.submit) as f64 / 1_000.0;
                Some((wait, run))
            })
            .collect();
        if let Some(sd) = kpi::mean_bounded_slowdown(&waits_runs, 10.0) {
            out.push(Artifact::Kpi {
                name: "mean_bounded_slowdown".into(),
                value: sd,
            });
        }
        let mut body = String::new();
        for (label, sensor) in [
            ("Queue length", "/sw/sched/queue_len"),
            ("Running jobs", "/sw/sched/running"),
            ("Completed", "/sw/sched/completed_total"),
            ("Killed at walltime", "/sw/sched/killed_total"),
        ] {
            if let Some(v) = last(sensor) {
                body.push_str(&stat_line(label, v, ""));
                body.push('\n');
            }
        }
        if let Some(s) = resolve(ctx, "/sw/sched/queue_len") {
            let buckets = Query::sensors(s)
                .range(ctx.window)
                .downsample(600_000, Aggregation::Mean)
                .run(&q)
                .buckets();
            let series: Vec<f64> = buckets
                .iter()
                .rev()
                .take(48)
                .rev()
                .map(|b| b.value)
                .collect();
            body.push_str(&format!("Queue history {}\n", sparkline(&series)));
        }
        out.push(Artifact::Report {
            title: "Scheduler".into(),
            body,
        });
        out
    }
}

/// Descriptive × Applications: job-level dashboards and per-job accounting
/// (Table I: "Job performance models \[63\]", "Job data processing \[8\]",
/// "Job-level dashboards \[5\],\[6\],\[10\]").
#[derive(Default)]
pub struct JobDashboard {
    records: Vec<JobRecord>,
}

impl JobDashboard {
    /// Creates the capability with an empty accounting feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Supplies finished-job records.
    pub fn set_records(&mut self, records: Vec<JobRecord>) {
        self.records = records;
    }
}

impl Capability for JobDashboard {
    fn name(&self) -> &str {
        "job-dashboard"
    }

    fn description(&self) -> &str {
        "Per-job accounting dashboard: runtimes, energy, class mix"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            AnalyticsType::Descriptive,
            Pillar::Applications,
        ))
    }

    fn execute(&mut self, _ctx: &CapabilityContext) -> Vec<Artifact> {
        let mut out = Vec::new();
        out.push(Artifact::Kpi {
            name: "jobs_finished".into(),
            value: self.records.len() as f64,
        });
        if !self.records.is_empty() {
            let total_energy_kwh: f64 =
                self.records.iter().map(|r| r.energy_j).sum::<f64>() / 3.6e6;
            out.push(Artifact::Kpi {
                name: "job_energy_kwh_total".into(),
                value: total_energy_kwh,
            });
        }
        let mut table = Table::new(["job", "user", "nodes", "runtime s", "energy kWh", "cpu"]);
        for r in self.records.iter().rev().take(20) {
            table.row([
                format!("{}", r.id.0),
                format!("u{}", r.user),
                format!("{}", r.nodes),
                format!("{:.0}", r.runtime_s().unwrap_or(0.0)),
                format!("{:.2}", r.energy_j / 3.6e6),
                gauge(r.mean_cpu, 8),
            ]);
        }
        out.push(Artifact::Report {
            title: "Recent jobs".into(),
            body: table.render(),
        });
        out
    }
}

/// Descriptive × (Infrastructure + Hardware): threshold alerting — the
/// paper's "automated alerts upon exceeding human-defined thresholds of
/// monitored sensors", explicitly part of descriptive analytics (§III-B).
///
/// A second capability sharing cells with the dashboards, demonstrating
/// that the framework admits many capabilities per cell. Rules are
/// configured as sensor-name/threshold pairs; the board replays the
/// window through a debounced [`oda_telemetry::alert::AlertEngine`] and
/// reports the currently-firing alerts.
pub struct AlertBoard {
    /// `(rule name, sensor name, condition, severity)` tuples.
    pub rules: Vec<(
        String,
        String,
        oda_telemetry::alert::Condition,
        oda_telemetry::alert::AlertSeverity,
    )>,
    /// Consecutive violating samples required before firing.
    pub debounce: u32,
}

impl Default for AlertBoard {
    fn default() -> Self {
        use oda_telemetry::alert::{AlertSeverity, Condition};
        AlertBoard {
            rules: vec![
                (
                    "pue-high".into(),
                    "/facility/pue".into(),
                    Condition::Above(2.2),
                    AlertSeverity::Warning,
                ),
                (
                    "node-hot".into(),
                    "/hw/*/temp_c".into(),
                    Condition::Above(88.0),
                    AlertSeverity::Critical,
                ),
                (
                    "queue-deep".into(),
                    "/sw/sched/queue_len".into(),
                    Condition::Above(50.0),
                    AlertSeverity::Info,
                ),
            ],
            debounce: 3,
        }
    }
}

impl AlertBoard {
    /// Creates the board with the default operator rulebook.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Capability for AlertBoard {
    fn name(&self) -> &str {
        "alert-board"
    }

    fn description(&self) -> &str {
        "Debounced threshold alerts over configured sensors"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::from_cells(&[
            GridCell::new(AnalyticsType::Descriptive, Pillar::BuildingInfrastructure),
            GridCell::new(AnalyticsType::Descriptive, Pillar::SystemHardware),
        ])
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        use oda_telemetry::alert::{AlertEngine, AlertRule};
        use oda_telemetry::pattern::SensorPattern;
        let q = QueryEngine::new(&ctx.store);
        // Expand patterns to concrete sensors, build the engine.
        let mut rules = Vec::new();
        for (name, sensor_pat, condition, severity) in &self.rules {
            for sensor in ctx.registry.matching(&SensorPattern::new(sensor_pat)) {
                let label = if sensor_pat.contains('*') {
                    let full = ctx.registry.name(sensor).unwrap_or_default();
                    format!("{name} ({full})")
                } else {
                    name.clone()
                };
                rules.push(
                    AlertRule::new(label, sensor, *condition, *severity)
                        .with_debounce(self.debounce),
                );
            }
        }
        let sensors: Vec<oda_telemetry::sensor::SensorId> =
            rules.iter().map(|r| r.sensor).collect();
        let mut engine = AlertEngine::new(rules);
        // Replay the window per sensor (chronological per series is all the
        // level rules need).
        let mut fired_log = Vec::new();
        for sensor in sensors {
            let readings = Query::sensors(sensor).range(ctx.window).run(&q).readings();
            for reading in readings {
                for ev in engine.observe(sensor, reading) {
                    if ev.active {
                        fired_log.push(format!(
                            "[{}] {:?} {} (value {:.2})",
                            reading.ts, ev.severity, ev.rule, reading.value
                        ));
                    }
                }
            }
        }
        let active: Vec<String> = engine
            .active_rules()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        let mut body = String::new();
        body.push_str(&format!(
            "{} alerts fired over the window; {} active now\n",
            engine.fired_total(),
            active.len()
        ));
        for line in fired_log.iter().take(20) {
            body.push_str(line);
            body.push('\n');
        }
        for a in &active {
            body.push_str(&format!("ACTIVE: {a}\n"));
        }
        vec![
            Artifact::Kpi {
                name: "alerts_active".into(),
                value: active.len() as f64,
            },
            Artifact::Report {
                title: "Alert board".into(),
                body,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::testutil::sim_context;

    #[test]
    fn facility_dashboard_reports_pue() {
        let (_dc, ctx) = sim_context(1.0, 11);
        let out = FacilityDashboard::new().execute(&ctx);
        let pue = out.iter().find_map(|a| a.kpi("pue")).expect("pue kpi");
        assert!(pue > 1.0 && pue < 3.0, "pue {pue}");
        assert!(out
            .iter()
            .any(|a| matches!(a, Artifact::Report { body, .. } if body.contains("IT load"))));
    }

    #[test]
    fn hardware_dashboard_reports_itue_and_sie() {
        let (_dc, ctx) = sim_context(1.0, 12);
        let out = HardwareDashboard::new().execute(&ctx);
        let itue = out.iter().find_map(|a| a.kpi("itue")).expect("itue kpi");
        assert!((1.0..1.5).contains(&itue), "itue {itue}");
        assert!(out.iter().any(|a| a.kpi("sie_bits").is_some()));
        // The fleet table lists all 8 tiny-site nodes.
        let report = out
            .iter()
            .find_map(|a| match a {
                Artifact::Report { body, .. } => Some(body),
                _ => None,
            })
            .unwrap();
        assert!(report.contains("node7"));
    }

    #[test]
    fn scheduler_dashboard_uses_accounting_feed() {
        let (dc, ctx) = sim_context(4.0, 13);
        let mut cap = SchedulerDashboard::new();
        cap.set_records(dc.finished_jobs().to_vec());
        let out = cap.execute(&ctx);
        let sd = out
            .iter()
            .find_map(|a| a.kpi("mean_bounded_slowdown"))
            .expect("slowdown kpi");
        assert!(sd >= 1.0, "slowdown {sd}");
        assert!(out.iter().any(|a| a.kpi("utilization").is_some()));
    }

    #[test]
    fn job_dashboard_summarises_records() {
        let (dc, ctx) = sim_context(4.0, 14);
        let mut cap = JobDashboard::new();
        cap.set_records(dc.finished_jobs().to_vec());
        let out = cap.execute(&ctx);
        let n = out.iter().find_map(|a| a.kpi("jobs_finished")).unwrap();
        assert!(n > 0.0);
        assert!(out.iter().any(|a| a.kpi("job_energy_kwh_total").is_some()));
    }

    #[test]
    fn alert_board_quiet_on_healthy_site_fires_on_hot_node() {
        // Healthy: no active alerts.
        let (_dc, ctx) = sim_context(1.0, 15);
        let out = AlertBoard::new().execute(&ctx);
        assert_eq!(out.iter().find_map(|a| a.kpi("alerts_active")), Some(0.0));

        // Fan failure under stress load → node crosses the 88 °C rule.
        let (mut dc, _) = sim_context(0.0, 15);
        dc.inject_fault(oda_sim::prelude::Fault::new(
            oda_sim::faults::FaultKind::FanFailure {
                node: oda_sim::prelude::NodeId(0),
            },
            oda_telemetry::reading::Timestamp::ZERO,
            oda_telemetry::reading::Timestamp::from_hours(4),
        ));
        dc.submit_stress_test(8, 3_600.0);
        dc.run_for_hours(1.0);
        let ctx = crate::capability::CapabilityContext::new(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            oda_telemetry::query::TimeRange::new(
                oda_telemetry::reading::Timestamp::ZERO,
                dc.now() + 1,
            ),
            dc.now(),
        );
        let out = AlertBoard::new().execute(&ctx);
        let active = out.iter().find_map(|a| a.kpi("alerts_active")).unwrap();
        assert!(active >= 1.0, "hot node must raise an alert");
        let report = out
            .iter()
            .find_map(|a| match a {
                Artifact::Report { body, .. } => Some(body.clone()),
                _ => None,
            })
            .unwrap();
        assert!(report.contains("node-hot"), "{report}");
        assert!(report.contains("node0"), "{report}");
    }

    #[test]
    fn alert_board_shares_cells_with_dashboards() {
        use crate::registry::CapabilityRegistry;
        let mut reg = CapabilityRegistry::new();
        reg.register(Box::new(FacilityDashboard::new()));
        reg.register(Box::new(AlertBoard::new()));
        let cell = GridCell::new(AnalyticsType::Descriptive, Pillar::BuildingInfrastructure);
        assert_eq!(
            reg.coverage().per_cell.get(cell),
            &2usize,
            "two capabilities in one cell"
        );
    }

    #[test]
    fn dashboards_survive_empty_telemetry() {
        let ctx = crate::capability::CapabilityContext::new(
            std::sync::Arc::new(oda_telemetry::store::TimeSeriesStore::with_capacity(4)),
            oda_telemetry::sensor::SensorRegistry::new(),
            oda_telemetry::query::TimeRange::all(),
            oda_telemetry::reading::Timestamp::ZERO,
        );
        for mut cap in [
            Box::new(FacilityDashboard::new()) as Box<dyn Capability>,
            Box::new(HardwareDashboard::new()),
            Box::new(SchedulerDashboard::new()),
            Box::new(JobDashboard::new()),
        ] {
            let out = cap.execute(&ctx);
            // No KPIs fabricated from nothing, but a report is still
            // produced (possibly empty).
            assert!(out.iter().all(|a| a.kpi("pue").is_none()));
            assert!(out.iter().any(|a| matches!(a, Artifact::Report { .. })));
        }
    }
}
