//! The ODA runtime: periodic monitoring → analysis → actuation passes.
//!
//! The examples and experiments all share one loop: read the telemetry
//! window, run a staged pipeline, apply the automatable prescriptions to
//! the site's knobs, keep the rest for the operator. This module owns
//! that loop so a deployment configures it once:
//!
//! * [`ControlPlane`] abstracts "the thing that can actually turn knobs" —
//!   the simulator in this reproduction, a BMC/Redfish/SLURM adapter in a
//!   real deployment;
//! * [`OdaRuntime`] holds the pipeline, runs a pass over a window of
//!   telemetry, routes prescriptions, and keeps an audit log of every
//!   action taken or deferred (prescriptions are outward-facing: a system
//!   that cannot say what it did and why is not deployable).

use crate::analytics_type::AnalyticsType;
use crate::capability::{Artifact, Capability, CapabilityContext};
use crate::pipeline::{PipelineRun, StagedPipeline};
use oda_telemetry::metrics::MetricsRegistry;
use oda_telemetry::query::TimeRange;
use oda_telemetry::reading::Timestamp;
use oda_telemetry::sensor::SensorRegistry;
use oda_telemetry::store::TimeSeriesStore;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The actuation surface prescriptions are applied to.
pub trait ControlPlane {
    /// Attempts to apply `action := setting`. Returns `true` when the
    /// action was recognised and applied, `false` when the control plane
    /// does not own that knob (the prescription is then deferred to the
    /// operator).
    fn apply(&mut self, action: &str, setting: &str) -> bool;
}

/// What happened to one prescription during a pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionOutcome {
    /// Applied automatically by the control plane.
    Applied,
    /// Automatable, but the control plane does not own the knob.
    Unrecognised,
    /// Not automatable: left for operator review.
    NeedsOperator,
}

/// Audit record of one prescription.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// Simulated/real time of the pass.
    pub at: Timestamp,
    /// Capability that produced the prescription.
    pub source: String,
    /// Knob or action identifier.
    pub action: String,
    /// Proposed setting.
    pub setting: String,
    /// What the runtime did with it.
    pub outcome: ActionOutcome,
}

/// Summary of one runtime pass.
#[derive(Debug)]
pub struct PassReport {
    /// Full pipeline trace (including per-capability [`StageSpan`]s —
    /// see [`crate::pipeline::StageSpan`]).
    pub run: PipelineRun,
    /// Prescriptions applied this pass.
    pub applied: usize,
    /// Prescriptions deferred to the operator.
    pub deferred: usize,
    /// Diagnoses raised this pass.
    pub diagnoses: usize,
    /// Wall time of the whole pass (pipeline + prescription routing), ns.
    pub wall_ns: u64,
}

/// Periodic ODA driver.
///
/// ```
/// use oda_core::analytics_type::AnalyticsType;
/// use oda_core::cells;
/// use oda_core::runtime::{OdaRuntime, SimControlPlane};
/// use oda_sim::prelude::*;
///
/// let mut dc = DataCenter::new(DataCenterConfig::tiny(), 1);
/// dc.run_for_hours(0.5);
/// let mut runtime = OdaRuntime::new(3_600_000).with_capability(
///     AnalyticsType::Prescriptive,
///     Box::new(cells::prescriptive::DvfsTuner::new()),
/// );
/// let report = runtime.pass(
///     std::sync::Arc::clone(dc.store()),
///     dc.registry().clone(),
///     dc.now(),
///     &mut SimControlPlane { dc: &mut dc },
/// );
/// // Idle nodes at max clock get downclocked, and every action is audited.
/// assert_eq!(runtime.audit_log().len(), report.applied + report.deferred);
/// ```
pub struct OdaRuntime {
    pipeline: StagedPipeline,
    /// Width of the telemetry window each pass analyses, ms.
    pub window_ms: u64,
    /// Whether automatable prescriptions are applied (`false` = advisory
    /// mode: everything goes to the audit log as `NeedsOperator`).
    pub autopilot: bool,
    audit: Vec<ActionRecord>,
    metrics: MetricsRegistry,
}

impl OdaRuntime {
    /// Creates a runtime analysing trailing windows of `window_ms`.
    /// Records pass metrics into the process-wide default registry unless
    /// [`Self::with_metrics`] is used.
    pub fn new(window_ms: u64) -> Self {
        OdaRuntime {
            pipeline: StagedPipeline::new(),
            window_ms,
            autopilot: true,
            audit: Vec::new(),
            metrics: MetricsRegistry::global(),
        }
    }

    /// Records pass metrics (`runtime_pass_total`, `runtime_pass_ns`,
    /// `runtime_prescriptions_{applied,deferred}_total`,
    /// `runtime_diagnoses_total`) and the pipeline's per-capability stage
    /// metrics into `metrics`. Builder-style.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.pipeline.set_metrics(metrics.clone());
        self.metrics = metrics;
        self
    }

    /// Adds a capability at its stage. Builder-style.
    #[must_use]
    pub fn with_capability(mut self, stage: AnalyticsType, c: Box<dyn Capability>) -> Self {
        self.pipeline.add_stage(stage, c);
        self
    }

    /// Adds a capability at its stage.
    pub fn add_capability(&mut self, stage: AnalyticsType, c: Box<dyn Capability>) {
        self.pipeline.add_stage(stage, c);
    }

    /// The audit log of every prescription ever routed.
    pub fn audit_log(&self) -> &[ActionRecord] {
        &self.audit
    }

    /// Runs one pass at time `now` over the trailing window, applying
    /// automatable prescriptions through `control`.
    pub fn pass(
        &mut self,
        store: Arc<TimeSeriesStore>,
        registry: SensorRegistry,
        now: Timestamp,
        control: &mut dyn ControlPlane,
    ) -> PassReport {
        let pass_timer = self.metrics.histogram("runtime_pass_ns", &[]).start_timer();
        let pass_start = std::time::Instant::now();
        let ctx = CapabilityContext::new(
            store,
            registry,
            TimeRange::trailing(now, self.window_ms),
            now,
        );
        let run = self.pipeline.run(ctx);
        let mut applied = 0;
        let mut deferred = 0;
        let mut diagnoses = 0;
        for (_, source, artifacts) in &run.stages {
            for artifact in artifacts {
                match artifact {
                    Artifact::Prescription {
                        action,
                        setting,
                        automatable,
                        ..
                    } => {
                        let outcome = if *automatable && self.autopilot {
                            if control.apply(action, setting) {
                                applied += 1;
                                ActionOutcome::Applied
                            } else {
                                deferred += 1;
                                ActionOutcome::Unrecognised
                            }
                        } else {
                            deferred += 1;
                            ActionOutcome::NeedsOperator
                        };
                        self.audit.push(ActionRecord {
                            at: now,
                            source: source.clone(),
                            action: action.clone(),
                            setting: setting.clone(),
                            outcome,
                        });
                    }
                    Artifact::Diagnosis { .. } => diagnoses += 1,
                    _ => {}
                }
            }
        }
        self.metrics.counter("runtime_pass_total", &[]).inc();
        self.metrics
            .counter("runtime_prescriptions_applied_total", &[])
            .add(applied as u64);
        self.metrics
            .counter("runtime_prescriptions_deferred_total", &[])
            .add(deferred as u64);
        self.metrics
            .counter("runtime_diagnoses_total", &[])
            .add(diagnoses as u64);
        let histogram = self.metrics.histogram("runtime_pass_ns", &[]);
        histogram.observe_timer(pass_timer);
        PassReport {
            run,
            applied,
            deferred,
            diagnoses,
            wall_ns: pass_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        }
    }
}

/// Control plane over the simulated data center: owns the DVFS, fan,
/// cooling and placement knobs, addressed by the action vocabulary the
/// prescriptive cells emit.
pub struct SimControlPlane<'a> {
    /// The site being actuated.
    pub dc: &'a mut oda_sim::datacenter::DataCenter,
}

impl ControlPlane for SimControlPlane<'_> {
    fn apply(&mut self, action: &str, setting: &str) -> bool {
        use oda_sim::facility::cooling::CoolingMode;
        use oda_sim::hardware::node::NodeId;
        use oda_sim::scheduler::placement::{CoolingAware, FirstFit, PackRacks, PowerAware};
        if let Some(rest) = action.strip_suffix("/freq_ghz") {
            let Some(idx) = rest.strip_prefix("node").and_then(|s| s.parse::<u32>().ok()) else {
                return false;
            };
            let Ok(ghz) = setting.parse::<f64>() else {
                return false;
            };
            if (idx as usize) >= self.dc.node_count() {
                return false;
            }
            self.dc.set_node_freq(NodeId(idx), ghz);
            return true;
        }
        if let Some(rest) = action.strip_suffix("/fan") {
            let Some(idx) = rest.strip_prefix("node").and_then(|s| s.parse::<u32>().ok()) else {
                return false;
            };
            let Ok(speed) = setting.parse::<f64>() else {
                return false;
            };
            if (idx as usize) >= self.dc.node_count() {
                return false;
            }
            self.dc.set_node_fan(NodeId(idx), speed);
            return true;
        }
        match action {
            "cooling_setpoint_c" => match setting.parse::<f64>() {
                Ok(sp) => {
                    self.dc.set_cooling_setpoint(sp);
                    true
                }
                Err(_) => false,
            },
            "cooling_mode" => {
                let mode = match setting {
                    "free-cooling" => CoolingMode::FreeCooling,
                    "chiller" => CoolingMode::Chiller,
                    "auto" => CoolingMode::Auto,
                    _ => return false,
                };
                self.dc.set_cooling_mode(mode);
                true
            }
            "placement_policy" => {
                let policy: Box<dyn oda_sim::scheduler::placement::PlacementPolicy> =
                    match setting {
                        "first-fit" => Box::new(FirstFit),
                        "cooling-aware" => Box::new(CoolingAware),
                        "pack-racks" => Box::new(PackRacks),
                        "power-aware" => Box::new(PowerAware),
                        _ => return false,
                    };
                self.dc.set_placement_policy(policy);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use oda_sim::prelude::*;

    fn full_runtime() -> OdaRuntime {
        OdaRuntime::new(2 * 3_600_000)
            .with_capability(
                AnalyticsType::Diagnostic,
                Box::new(cells::diagnostic::InfraAnomalyDetector::new()),
            )
            .with_capability(
                AnalyticsType::Predictive,
                Box::new(cells::predictive::InfraForecaster::new()),
            )
            .with_capability(
                AnalyticsType::Prescriptive,
                Box::new(cells::prescriptive::CoolingOptimizer::new()),
            )
            .with_capability(
                AnalyticsType::Prescriptive,
                Box::new(cells::prescriptive::DvfsTuner::new()),
            )
    }

    #[test]
    fn runtime_closes_the_loop_on_the_simulator() {
        let mut dc = DataCenter::new(DataCenterConfig::tiny(), 51);
        dc.run_for_hours(1.0);
        let mut runtime = full_runtime();
        let store = std::sync::Arc::clone(dc.store());
        let registry = dc.registry().clone();
        let now = dc.now();
        let before_setpoint = dc.cooling_setpoint();
        let report = runtime.pass(store, registry, now, &mut SimControlPlane { dc: &mut dc });
        assert!(report.applied > 0, "idle nodes yield DVFS actions at least");
        // The setpoint tracked the actual weather (initial 30 °C is not the
        // free-cooling frontier in general).
        let after = dc.cooling_setpoint();
        let _ = before_setpoint;
        assert!((18.0..=45.0).contains(&after));
        // Audit log recorded everything with outcomes.
        assert_eq!(
            runtime.audit_log().len(),
            report.applied + report.deferred
        );
        assert!(runtime
            .audit_log()
            .iter()
            .all(|r| r.at == now && !r.source.is_empty()));
    }

    #[test]
    fn advisory_mode_applies_nothing() {
        let mut dc = DataCenter::new(DataCenterConfig::tiny(), 52);
        dc.run_for_hours(0.5);
        let mut runtime = full_runtime();
        runtime.autopilot = false;
        let store = std::sync::Arc::clone(dc.store());
        let registry = dc.registry().clone();
        let now = dc.now();
        let freq_before: Vec<f64> = (0..dc.node_count())
            .map(|i| dc.node(NodeId(i as u32)).freq_ghz())
            .collect();
        let report = runtime.pass(store, registry, now, &mut SimControlPlane { dc: &mut dc });
        assert_eq!(report.applied, 0);
        assert!(report.deferred > 0);
        let freq_after: Vec<f64> = (0..dc.node_count())
            .map(|i| dc.node(NodeId(i as u32)).freq_ghz())
            .collect();
        assert_eq!(freq_before, freq_after, "advisory mode must not actuate");
        assert!(runtime
            .audit_log()
            .iter()
            .all(|r| r.outcome == ActionOutcome::NeedsOperator));
    }

    #[test]
    fn unknown_actions_are_deferred_not_lost() {
        struct DeafControlPlane;
        impl ControlPlane for DeafControlPlane {
            fn apply(&mut self, _: &str, _: &str) -> bool {
                false
            }
        }
        let mut dc = DataCenter::new(DataCenterConfig::tiny(), 53);
        dc.run_for_hours(0.5);
        let mut runtime = full_runtime();
        let report = runtime.pass(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            dc.now(),
            &mut DeafControlPlane,
        );
        assert_eq!(report.applied, 0);
        assert!(runtime
            .audit_log()
            .iter()
            .all(|r| r.outcome != ActionOutcome::Applied));
    }

    #[test]
    fn sim_control_plane_validates_inputs() {
        let mut dc = DataCenter::new(DataCenterConfig::tiny(), 54);
        let mut cp = SimControlPlane { dc: &mut dc };
        assert!(cp.apply("node0/freq_ghz", "2.0"));
        assert!(!cp.apply("node999/freq_ghz", "2.0"), "out-of-range node");
        assert!(!cp.apply("node0/freq_ghz", "fast"), "non-numeric setting");
        assert!(cp.apply("cooling_mode", "chiller"));
        assert!(!cp.apply("cooling_mode", "magic"));
        assert!(cp.apply("placement_policy", "pack-racks"));
        assert!(!cp.apply("warp_drive", "on"));
        assert!(cp.apply("node1/fan", "0.8"));
        assert!((dc.node(oda_sim::prelude::NodeId(1)).fan_speed() - 0.8).abs() < 1e-9);
    }
}
