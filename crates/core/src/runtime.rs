//! The ODA runtime: periodic monitoring → analysis → actuation passes.
//!
//! The examples and experiments all share one loop: read the telemetry
//! window, run a staged pipeline, apply the automatable prescriptions to
//! the site's knobs, keep the rest for the operator. This module owns
//! that loop so a deployment configures it once:
//!
//! * [`ControlPlane`] abstracts "the thing that can actually turn knobs" —
//!   the simulator in this reproduction, a BMC/Redfish/SLURM adapter in a
//!   real deployment;
//! * [`CapabilityScheduler`] turns one pipeline pass into a dependency
//!   DAG over the registered capabilities, topologically layers it, and
//!   fans each layer out across a fixed-size work-stealing worker pool —
//!   deterministically (see the module docs below);
//! * [`OdaRuntime`] holds the pipeline and scheduler, runs a pass over a
//!   window of telemetry, routes prescriptions, and keeps an audit log of
//!   every action taken or deferred (prescriptions are outward-facing: a
//!   system that cannot say what it did and why is not deployable).
//!
//! # Determinism contract
//!
//! Production ODA evaluates many analytical models online and in parallel
//! (DCDB Wintermute and friends), but replayability is what makes a
//! control loop debuggable. The scheduler therefore guarantees that a
//! pass's *outputs* — the [`PipelineRun`] stage sequence, every artifact,
//! the audit log, and all count-valued metrics — are bit-identical at any
//! worker count:
//!
//! * workers record results into **pre-assigned slots** (one per
//!   registered capability), never into a shared append log;
//! * artifact/metric/audit emission is **sequenced by capability slot**
//!   after each layer barrier, so emission order never depends on which
//!   worker finished first;
//! * per-task RNG streams derive from `(pass seed, capability slot)` —
//!   not from the executing worker — so work stealing cannot perturb a
//!   randomized capability;
//! * capability panics are caught on the worker, surfaced as
//!   [`StageSpan::panicked`], and isolated (the pass continues), so one
//!   bad plugin cannot take down the telemetry plane.
//!
//! `workers = 1` executes on the calling thread in exactly the historical
//! serial order (stages in staged order, peers in insertion order).

use crate::analytics_type::AnalyticsType;
use crate::capability::{Artifact, Capability, CapabilityContext};
use crate::grid::GridFootprint;
use crate::pipeline::{PipelineRun, StageSpan, StagedPipeline};
use oda_telemetry::metrics::MetricsRegistry;
use oda_telemetry::query::TimeRange;
use oda_telemetry::reading::Timestamp;
use oda_telemetry::sensor::SensorRegistry;
use oda_telemetry::store::TimeSeriesStore;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of the capability scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Fixed worker-pool size. `1` (the [`Self::serial`] preset) runs
    /// every capability on the calling thread in the historical serial
    /// order; the default is [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Root seed for the per-task RNG streams handed to capabilities via
    /// [`CapabilityContext::rng_seed`]. Same seed ⇒ same streams, pass
    /// after pass.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 0,
        }
    }
}

impl RuntimeConfig {
    /// Single-worker preset: today's exact serial behavior.
    pub fn serial() -> Self {
        RuntimeConfig {
            workers: 1,
            ..Self::default()
        }
    }

    /// Sets the worker count (clamped to ≥ 1). Builder-style.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the RNG root seed. Builder-style.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// SplitMix64 — the stock seed-derivation permutation (Steele et al.),
/// used to derive pass seeds and per-slot RNG streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One concurrency layer of the capability DAG: every slot in `slots` may
/// execute concurrently once all earlier layers have completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagLayer {
    /// Analytics stage all of this layer's capabilities belong to (layers
    /// never span stages — stage boundaries are artifact-flow barriers).
    pub stage: AnalyticsType,
    /// Capability slot indices, ascending (= registration order).
    pub slots: Vec<usize>,
}

/// Dependency DAG over a pipeline's registered capabilities, topologically
/// layered for barrier execution.
///
/// Two edge rules, straight from the pipeline's visibility semantics:
///
/// 1. **Artifact flow** — every capability of stage *s* reads the
///    artifacts of *every* capability of stages < *s* (`ctx.upstream`),
///    so each non-empty stage depends wholesale on the previous non-empty
///    stage (transitively on all earlier ones).
/// 2. **Actuation-domain conflict** — two *prescriptive* capabilities
///    whose grid footprints intersect prescribe into the same sensor
///    domain; they are serialized in registration order (an edge from the
///    earlier to the later) so conflicting knob proposals are always
///    produced — and later routed — in a stable order. Hindsight stages
///    only read telemetry and never conflict.
///
/// Layering is the usual longest-path assignment: a capability's layer is
/// one past the deepest of its dependencies, which groups every stage
/// into one layer (plus conflict sub-layers inside the prescriptive
/// stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapabilityDag {
    /// Execution layers, in order.
    pub layers: Vec<DagLayer>,
    /// Total dependency edges (artifact-flow + conflict).
    pub edges: usize,
}

impl CapabilityDag {
    /// Builds the DAG for capabilities declared as `(stage, footprint)`
    /// pairs in registration order.
    pub fn build(slots: &[(AnalyticsType, GridFootprint)]) -> Self {
        let mut layers: Vec<DagLayer> = Vec::new();
        let mut edges = 0usize;
        let mut prev_stage_size = 0usize;
        for stage in AnalyticsType::ALL {
            let members: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, (s, _))| *s == stage)
                .map(|(i, _)| i)
                .collect();
            if members.is_empty() {
                continue;
            }
            // Artifact-flow edges: complete bipartite from the previous
            // non-empty stage.
            edges += prev_stage_size * members.len();
            prev_stage_size = members.len();
            if stage == AnalyticsType::Prescriptive {
                // Conflict sub-layers: longest chain of overlapping
                // footprints, registration order within a chain.
                let mut sublayer = vec![0usize; members.len()];
                for j in 0..members.len() {
                    for i in 0..j {
                        let fi = slots[members[i]].1;
                        let fj = slots[members[j]].1;
                        if fi.intersection(fj).count() > 0 {
                            edges += 1;
                            sublayer[j] = sublayer[j].max(sublayer[i] + 1);
                        }
                    }
                }
                let depth = sublayer.iter().max().copied().unwrap_or(0);
                for d in 0..=depth {
                    let slots_d: Vec<usize> = members
                        .iter()
                        .zip(&sublayer)
                        .filter(|(_, &l)| l == d)
                        .map(|(&m, _)| m)
                        .collect();
                    layers.push(DagLayer {
                        stage,
                        slots: slots_d,
                    });
                }
            } else {
                layers.push(DagLayer {
                    stage,
                    slots: members,
                });
            }
        }
        CapabilityDag { layers, edges }
    }

    /// Total capabilities across all layers.
    pub fn len(&self) -> usize {
        self.layers.iter().map(|l| l.slots.len()).sum()
    }

    /// `true` when the DAG has no capabilities.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The widest layer — the pass's maximum exploitable parallelism.
    pub fn max_width(&self) -> usize {
        self.layers.iter().map(|l| l.slots.len()).max().unwrap_or(0)
    }
}

/// A unit of work: one capability execution against a stage snapshot.
struct Task {
    slot: usize,
    stage: AnalyticsType,
    cap: Box<dyn Capability>,
    ctx: CapabilityContext,
}

/// The slot-addressed outcome of one capability execution.
struct SlotResult {
    stage: AnalyticsType,
    name: String,
    artifacts: Vec<Artifact>,
    wall_ns: u64,
    panicked: Option<String>,
}

/// What came back from executing a [`Task`]: the capability box (to be
/// reinstalled in its pipeline slot) plus the result for that slot.
struct TaskDone {
    slot: usize,
    cap: Box<dyn Capability>,
    result: SlotResult,
}

fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Executes one task, catching capability panics so a bad plugin is
/// isolated instead of poisoning the pool.
fn execute_task(task: Task) -> TaskDone {
    let Task {
        slot,
        stage,
        mut cap,
        ctx,
    } = task;
    // odalint: allow(wall-clock) -- worker timing telemetry only; never feeds output digests
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| cap.execute(&ctx)));
    let wall_ns = elapsed_ns(start);
    let name = cap.name().to_owned();
    let (artifacts, panicked) = match outcome {
        Ok(artifacts) => (artifacts, None),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            (Vec::new(), Some(msg))
        }
    };
    TaskDone {
        slot,
        cap,
        result: SlotResult {
            stage,
            name,
            artifacts,
            wall_ns,
            panicked,
        },
    }
}

/// Layer hand-off state shared between the submitting thread and workers.
#[derive(Default)]
struct Gate {
    /// Bumped once per submitted layer; workers drain queues when they
    /// observe a new epoch.
    epoch: u64,
    shutdown: bool,
}

/// State shared by every worker of a [`WorkerPool`].
struct PoolShared {
    /// One deque per worker; tasks are dealt round-robin by layer
    /// position, workers pop their own front and steal others' backs.
    queues: Vec<Mutex<VecDeque<Task>>>,
    gate: Mutex<Gate>,
    wake: Condvar,
    /// Tasks executed off another worker's deque.
    steals: AtomicU64,
    /// Per-worker busy nanoseconds since the last drain.
    busy_ns: Vec<AtomicU64>,
}

/// Pops the next task for worker `me`: own queue first (front), then
/// round-robin victim scan (back). Returns whether the task was stolen.
fn next_task(me: usize, shared: &PoolShared) -> Option<(Task, bool)> {
    if let Ok(mut q) = shared.queues[me].lock() {
        if let Some(t) = q.pop_front() {
            return Some((t, false));
        }
    }
    let n = shared.queues.len();
    for k in 1..n {
        let victim = (me + k) % n;
        if let Ok(mut q) = shared.queues[victim].lock() {
            if let Some(t) = q.pop_back() {
                return Some((t, true));
            }
        }
    }
    None
}

fn worker_loop(me: usize, shared: Arc<PoolShared>, done: mpsc::Sender<TaskDone>) {
    let mut seen = 0u64;
    loop {
        {
            let mut gate = shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if gate.shutdown {
                    return;
                }
                if gate.epoch != seen {
                    seen = gate.epoch;
                    break;
                }
                gate = shared.wake.wait(gate).unwrap_or_else(|e| e.into_inner());
            }
        }
        while let Some((task, stolen)) = next_task(me, &shared) {
            if stolen {
                shared.steals.fetch_add(1, Ordering::Relaxed);
            }
            // odalint: allow(wall-clock) -- worker busy-time telemetry only; never feeds output digests
            let start = Instant::now();
            let result = execute_task(task);
            shared.busy_ns[me].fetch_add(elapsed_ns(start), Ordering::Relaxed);
            if done.send(result).is_err() {
                return;
            }
        }
    }
}

/// A fixed-size pool of capability workers.
///
/// Workers are spawned once (named `oda-worker-N`) and live until the
/// pool is dropped; `Drop` signals shutdown and **joins every thread**,
/// so tearing down a runtime never leaks detached workers past e.g. a
/// `DataCenter` teardown.
struct WorkerPool {
    shared: Arc<PoolShared>,
    done_rx: mpsc::Receiver<TaskDone>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let (done_tx, done_rx) = mpsc::channel();
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(Gate::default()),
            wake: Condvar::new(),
            steals: AtomicU64::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let done = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("oda-worker-{i}"))
                    .spawn(move || worker_loop(i, shared, done))
                    // odalint: allow(panic-unwrap) -- thread spawn failure at pool construction is unrecoverable
                    .expect("spawn capability worker")
            })
            .collect();
        WorkerPool {
            shared,
            done_rx,
            handles,
        }
    }

    fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one layer to completion: deals the tasks round-robin onto the
    /// worker deques, opens the gate, and blocks until every result is
    /// back (the layer barrier).
    fn run_layer(&self, tasks: Vec<Task>) -> Vec<TaskDone> {
        let n = tasks.len();
        let w = self.shared.queues.len();
        for (i, task) in tasks.into_iter().enumerate() {
            self.shared.queues[i % w]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }
        {
            let mut gate = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            gate.epoch += 1;
        }
        self.shared.wake.notify_all();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            // odalint: allow(panic-unwrap) -- workers hold the sender for the pool's lifetime
            out.push(self.done_rx.recv().expect("worker pool alive"));
        }
        out
    }

    /// Steals since construction.
    fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Drains per-worker busy time accumulated since the last call.
    fn drain_busy_ns(&self) -> Vec<u64> {
        self.shared
            .busy_ns
            .iter()
            .map(|b| b.swap(0, Ordering::Relaxed))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut gate = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            gate.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Deterministic parallel executor for [`StagedPipeline`] passes.
///
/// Builds the [`CapabilityDag`] fresh each pass (capability registration
/// may change between passes), then executes it layer by layer. See the
/// module docs for the determinism contract. The pool is spawned lazily
/// on the first pass that can use it and reused afterwards; dropping the
/// scheduler joins every worker.
pub struct CapabilityScheduler {
    config: RuntimeConfig,
    metrics: MetricsRegistry,
    pool: Option<WorkerPool>,
    passes: u64,
    steals_recorded: u64,
}

impl CapabilityScheduler {
    /// Creates a scheduler recording into the process-wide default
    /// metrics registry.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_metrics(config, MetricsRegistry::global())
    }

    /// Creates a scheduler recording scheduler metrics
    /// (`runtime_layer_span`, `runtime_worker_busy_ns`,
    /// `runtime_steal_total`, `runtime_capability_panics_total`) into
    /// `metrics`.
    pub fn with_metrics(config: RuntimeConfig, metrics: MetricsRegistry) -> Self {
        CapabilityScheduler {
            config,
            metrics,
            pool: None,
            passes: 0,
            steals_recorded: 0,
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Redirects scheduler metrics to `metrics`.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Tasks executed off another worker's deque since construction.
    pub fn steals(&self) -> u64 {
        self.pool.as_ref().map(WorkerPool::steals).unwrap_or(0)
    }

    /// Runs one pipeline pass. Equivalent to [`StagedPipeline::run`] when
    /// `workers == 1`; fans layers out across the pool otherwise. Outputs
    /// are bit-identical either way.
    pub fn run(&mut self, pipeline: &mut StagedPipeline, ctx: CapabilityContext) -> PipelineRun {
        let pass_seed = splitmix64(self.config.seed ^ splitmix64(self.passes));
        self.passes += 1;
        // odalint: allow(wall-clock) -- pass duration telemetry only; never feeds output digests
        let run_start = Instant::now();
        let mut run = PipelineRun {
            stages: Vec::new(),
            spans: Vec::new(),
            wall_ns: 0,
        };
        let meta: Vec<(AnalyticsType, GridFootprint)> = pipeline
            .slots()
            .iter()
            .map(|s| {
                // odalint: allow(panic-unwrap) -- slots are re-occupied at the end of every pass
                let cap = s.cap.as_ref().expect("slot occupied between passes");
                (s.stage, cap.footprint())
            })
            .collect();
        let dag = CapabilityDag::build(&meta);
        let stage_metrics = pipeline.resolved_metrics();

        let mut results: Vec<Option<SlotResult>> = meta.iter().map(|_| None).collect();
        let mut upstream = ctx.upstream.clone();
        let mut snapshot = upstream.clone();
        let mut stage_done: Vec<usize> = Vec::new();
        let mut current_stage: Option<AnalyticsType> = None;

        let want_pool = self.config.workers > 1;
        if want_pool && self.pool.as_ref().map(WorkerPool::workers) != Some(self.config.workers) {
            self.pool = Some(WorkerPool::new(self.config.workers));
        }

        for layer in &dag.layers {
            if current_stage != Some(layer.stage) {
                // Stage barrier: emit the finished stage in slot order and
                // make its artifacts visible downstream.
                Self::emit_stage(
                    &mut run,
                    &mut upstream,
                    &mut stage_done,
                    &mut results,
                    &stage_metrics,
                );
                current_stage = Some(layer.stage);
                snapshot = upstream.clone();
            }
            // odalint: allow(wall-clock) -- layer duration telemetry only; never feeds output digests
            let layer_start = Instant::now();
            let tasks: Vec<Task> = layer
                .slots
                .iter()
                .map(|&slot| {
                    let cap = pipeline.slots_mut()[slot]
                        .cap
                        .take()
                        // odalint: allow(panic-unwrap) -- slots are re-occupied at the end of every pass
                        .expect("slot occupied between passes");
                    Task {
                        slot,
                        stage: layer.stage,
                        cap,
                        ctx: CapabilityContext {
                            store: Arc::clone(&ctx.store),
                            registry: ctx.registry.clone(),
                            window: ctx.window,
                            now: ctx.now,
                            upstream: snapshot.clone(),
                            rng_seed: splitmix64(pass_seed ^ (slot as u64 + 1)),
                            cluster: ctx.cluster.clone(),
                        },
                    }
                })
                .collect();
            let done: Vec<TaskDone> = match &self.pool {
                Some(pool) if want_pool && tasks.len() > 1 => pool.run_layer(tasks),
                _ => tasks.into_iter().map(execute_task).collect(),
            };
            for d in done {
                pipeline.slots_mut()[d.slot].cap = Some(d.cap);
                results[d.slot] = Some(d.result);
            }
            self.metrics
                .histogram("runtime_layer_span", &[])
                .record(elapsed_ns(layer_start));
            stage_done.extend(layer.slots.iter().copied());
            self.record_pool_metrics();
        }
        Self::emit_stage(
            &mut run,
            &mut upstream,
            &mut stage_done,
            &mut results,
            &stage_metrics,
        );
        run.wall_ns = elapsed_ns(run_start);
        run
    }

    /// Emits every completed capability of the stage that just finished —
    /// spans, per-capability metrics and artifact visibility — sequenced
    /// by capability slot, never by completion order.
    fn emit_stage(
        run: &mut PipelineRun,
        upstream: &mut Vec<Artifact>,
        stage_done: &mut Vec<usize>,
        results: &mut [Option<SlotResult>],
        stage_metrics: &MetricsRegistry,
    ) {
        stage_done.sort_unstable();
        for &slot in stage_done.iter() {
            // odalint: allow(panic-unwrap) -- the layer barrier completes every slot in stage_done
            let done = results[slot].take().expect("layer barrier completed slot");
            let name = done.name;
            let labels: &[(&str, &str)] = &[("capability", name.as_str())];
            stage_metrics
                .histogram("pipeline_stage_ns", labels)
                .record(done.wall_ns);
            stage_metrics
                .counter("pipeline_artifacts_total", labels)
                .add(done.artifacts.len() as u64);
            if done.panicked.is_some() {
                stage_metrics
                    .counter("runtime_capability_panics_total", labels)
                    .inc();
            }
            run.spans.push(StageSpan {
                stage: done.stage,
                capability: name.clone(),
                wall_ns: done.wall_ns,
                artifacts: done.artifacts.len(),
                panicked: done.panicked.is_some(),
            });
            upstream.extend(done.artifacts.iter().cloned());
            run.stages.push((done.stage, name, done.artifacts));
        }
        stage_done.clear();
    }

    /// Folds pool-side counters (steals, per-worker busy time) into the
    /// metrics registry. These are scheduling telemetry: they vary run to
    /// run and are explicitly *outside* the determinism contract.
    fn record_pool_metrics(&mut self) {
        let Some(pool) = &self.pool else { return };
        let steals = pool.steals();
        if steals > self.steals_recorded {
            self.metrics
                .counter("runtime_steal_total", &[])
                .add(steals - self.steals_recorded);
            self.steals_recorded = steals;
        }
        for (i, busy) in pool.drain_busy_ns().into_iter().enumerate() {
            if busy > 0 {
                let idx = i.to_string();
                self.metrics
                    .histogram("runtime_worker_busy_ns", &[("worker", idx.as_str())])
                    .record(busy);
            }
        }
    }
}

/// The actuation surface prescriptions are applied to.
pub trait ControlPlane {
    /// Attempts to apply `action := setting`. Returns `true` when the
    /// action was recognised and applied, `false` when the control plane
    /// does not own that knob (the prescription is then deferred to the
    /// operator).
    fn apply(&mut self, action: &str, setting: &str) -> bool;
}

/// What happened to one prescription during a pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionOutcome {
    /// Applied automatically by the control plane.
    Applied,
    /// Automatable, but the control plane does not own the knob.
    Unrecognised,
    /// Not automatable: left for operator review.
    NeedsOperator,
}

/// Audit record of one prescription.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// Simulated/real time of the pass.
    pub at: Timestamp,
    /// Capability that produced the prescription.
    pub source: String,
    /// Knob or action identifier.
    pub action: String,
    /// Proposed setting.
    pub setting: String,
    /// What the runtime did with it.
    pub outcome: ActionOutcome,
}

/// Summary of one runtime pass.
#[derive(Debug)]
pub struct PassReport {
    /// Full pipeline trace (including per-capability [`StageSpan`]s —
    /// see [`crate::pipeline::StageSpan`]).
    pub run: PipelineRun,
    /// Prescriptions applied this pass.
    pub applied: usize,
    /// Prescriptions deferred to the operator.
    pub deferred: usize,
    /// Diagnoses raised this pass.
    pub diagnoses: usize,
    /// Wall time of the whole pass (pipeline + prescription routing), ns.
    pub wall_ns: u64,
}

/// Periodic ODA driver.
///
/// ```
/// use oda_core::analytics_type::AnalyticsType;
/// use oda_core::cells;
/// use oda_core::runtime::{OdaRuntime, SimControlPlane};
/// use oda_sim::prelude::*;
///
/// let mut dc = DataCenter::builder(DataCenterConfig::tiny()).seed(1).build();
/// dc.run_for_hours(0.5);
/// let mut runtime = OdaRuntime::new(3_600_000).with_capability(
///     AnalyticsType::Prescriptive,
///     Box::new(cells::prescriptive::DvfsTuner::new()),
/// );
/// let report = runtime.pass(
///     std::sync::Arc::clone(dc.store()),
///     dc.registry().clone(),
///     dc.now(),
///     &mut SimControlPlane { dc: &mut dc },
/// );
/// // Idle nodes at max clock get downclocked, and every action is audited.
/// assert_eq!(runtime.audit_log().len(), report.applied + report.deferred);
/// ```
pub struct OdaRuntime {
    pipeline: StagedPipeline,
    scheduler: CapabilityScheduler,
    /// Width of the telemetry window each pass analyses, ms.
    pub window_ms: u64,
    /// Whether automatable prescriptions are applied (`false` = advisory
    /// mode: everything goes to the audit log as `NeedsOperator`).
    pub autopilot: bool,
    audit: Vec<ActionRecord>,
    metrics: MetricsRegistry,
}

impl OdaRuntime {
    /// Creates a runtime analysing trailing windows of `window_ms`, with
    /// the default scheduler configuration (one worker per available
    /// core). Records pass metrics into the process-wide default registry
    /// unless [`Self::with_metrics`] is used.
    pub fn new(window_ms: u64) -> Self {
        Self::with_config(window_ms, RuntimeConfig::default())
    }

    /// Creates a runtime with an explicit scheduler configuration.
    pub fn with_config(window_ms: u64, config: RuntimeConfig) -> Self {
        OdaRuntime {
            pipeline: StagedPipeline::new(),
            scheduler: CapabilityScheduler::new(config),
            window_ms,
            autopilot: true,
            audit: Vec::new(),
            metrics: MetricsRegistry::global(),
        }
    }

    /// Sets the worker-pool size (1 = serial). Builder-style.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        let config = self.scheduler.config().clone().with_workers(workers);
        self.scheduler = CapabilityScheduler::with_metrics(config, self.metrics.clone());
        self
    }

    /// The scheduler configuration in effect.
    pub fn config(&self) -> &RuntimeConfig {
        self.scheduler.config()
    }

    /// Records pass metrics (`runtime_pass_total`, `runtime_pass_ns`,
    /// `runtime_prescriptions_{applied,deferred}_total`,
    /// `runtime_diagnoses_total`), the scheduler's layer/steal/busy
    /// metrics, and the pipeline's per-capability stage metrics into
    /// `metrics`. Builder-style.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.pipeline.set_metrics(metrics.clone());
        self.scheduler.set_metrics(metrics.clone());
        self.metrics = metrics;
        self
    }

    /// Adds a capability at its stage. Builder-style.
    #[must_use]
    pub fn with_capability(mut self, stage: AnalyticsType, c: Box<dyn Capability>) -> Self {
        self.pipeline.add_stage(stage, c);
        self
    }

    /// Adds a capability at its stage.
    pub fn add_capability(&mut self, stage: AnalyticsType, c: Box<dyn Capability>) {
        self.pipeline.add_stage(stage, c);
    }

    /// The audit log of every prescription ever routed.
    pub fn audit_log(&self) -> &[ActionRecord] {
        &self.audit
    }

    /// Runs one pass at time `now` over the trailing window, applying
    /// automatable prescriptions through `control`.
    pub fn pass(
        &mut self,
        store: Arc<TimeSeriesStore>,
        registry: SensorRegistry,
        now: Timestamp,
        control: &mut dyn ControlPlane,
    ) -> PassReport {
        let pass_timer = self.metrics.histogram("runtime_pass_ns", &[]).start_timer();
        // odalint: allow(wall-clock) -- pass duration telemetry only; never feeds output digests
        let pass_start = std::time::Instant::now();
        let ctx = CapabilityContext::new(
            store,
            registry,
            TimeRange::trailing(now, self.window_ms),
            now,
        );
        let run = self.scheduler.run(&mut self.pipeline, ctx);
        let mut applied = 0;
        let mut deferred = 0;
        let mut diagnoses = 0;
        for (_, source, artifacts) in &run.stages {
            for artifact in artifacts {
                match artifact {
                    Artifact::Prescription {
                        action,
                        setting,
                        automatable,
                        ..
                    } => {
                        let outcome = if *automatable && self.autopilot {
                            if control.apply(action, setting) {
                                applied += 1;
                                ActionOutcome::Applied
                            } else {
                                deferred += 1;
                                ActionOutcome::Unrecognised
                            }
                        } else {
                            deferred += 1;
                            ActionOutcome::NeedsOperator
                        };
                        self.audit.push(ActionRecord {
                            at: now,
                            source: source.clone(),
                            action: action.clone(),
                            setting: setting.clone(),
                            outcome,
                        });
                    }
                    Artifact::Diagnosis { .. } => diagnoses += 1,
                    _ => {}
                }
            }
        }
        self.metrics.counter("runtime_pass_total", &[]).inc();
        self.metrics
            .counter("runtime_prescriptions_applied_total", &[])
            .add(applied as u64);
        self.metrics
            .counter("runtime_prescriptions_deferred_total", &[])
            .add(deferred as u64);
        self.metrics
            .counter("runtime_diagnoses_total", &[])
            .add(diagnoses as u64);
        let histogram = self.metrics.histogram("runtime_pass_ns", &[]);
        histogram.observe_timer(pass_timer);
        PassReport {
            run,
            applied,
            deferred,
            diagnoses,
            wall_ns: pass_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        }
    }
}

/// Control plane over the simulated data center: owns the DVFS, fan,
/// cooling and placement knobs, addressed by the action vocabulary the
/// prescriptive cells emit.
pub struct SimControlPlane<'a> {
    /// The site being actuated.
    pub dc: &'a mut oda_sim::datacenter::DataCenter,
}

impl ControlPlane for SimControlPlane<'_> {
    fn apply(&mut self, action: &str, setting: &str) -> bool {
        use oda_sim::facility::cooling::CoolingMode;
        use oda_sim::hardware::node::NodeId;
        use oda_sim::scheduler::placement::{CoolingAware, FirstFit, PackRacks, PowerAware};
        if let Some(rest) = action.strip_suffix("/freq_ghz") {
            let Some(idx) = rest
                .strip_prefix("node")
                .and_then(|s| s.parse::<u32>().ok())
            else {
                return false;
            };
            let Ok(ghz) = setting.parse::<f64>() else {
                return false;
            };
            if (idx as usize) >= self.dc.node_count() {
                return false;
            }
            self.dc.set_node_freq(NodeId(idx), ghz);
            return true;
        }
        if let Some(rest) = action.strip_suffix("/fan") {
            let Some(idx) = rest
                .strip_prefix("node")
                .and_then(|s| s.parse::<u32>().ok())
            else {
                return false;
            };
            let Ok(speed) = setting.parse::<f64>() else {
                return false;
            };
            if (idx as usize) >= self.dc.node_count() {
                return false;
            }
            self.dc.set_node_fan(NodeId(idx), speed);
            return true;
        }
        match action {
            "cooling_setpoint_c" => match setting.parse::<f64>() {
                Ok(sp) => {
                    self.dc.set_cooling_setpoint(sp);
                    true
                }
                Err(_) => false,
            },
            "cooling_mode" => {
                let mode = match setting {
                    "free-cooling" => CoolingMode::FreeCooling,
                    "chiller" => CoolingMode::Chiller,
                    "auto" => CoolingMode::Auto,
                    _ => return false,
                };
                self.dc.set_cooling_mode(mode);
                true
            }
            "placement_policy" => {
                let policy: Box<dyn oda_sim::scheduler::placement::PlacementPolicy> = match setting
                {
                    "first-fit" => Box::new(FirstFit),
                    "cooling-aware" => Box::new(CoolingAware),
                    "pack-racks" => Box::new(PackRacks),
                    "power-aware" => Box::new(PowerAware),
                    _ => return false,
                };
                self.dc.set_placement_policy(policy);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use oda_sim::prelude::*;

    fn full_runtime() -> OdaRuntime {
        OdaRuntime::new(2 * 3_600_000)
            .with_capability(
                AnalyticsType::Diagnostic,
                Box::new(cells::diagnostic::InfraAnomalyDetector::new()),
            )
            .with_capability(
                AnalyticsType::Predictive,
                Box::new(cells::predictive::InfraForecaster::new()),
            )
            .with_capability(
                AnalyticsType::Prescriptive,
                Box::new(cells::prescriptive::CoolingOptimizer::new()),
            )
            .with_capability(
                AnalyticsType::Prescriptive,
                Box::new(cells::prescriptive::DvfsTuner::new()),
            )
    }

    #[test]
    fn runtime_closes_the_loop_on_the_simulator() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(51)
            .build();
        dc.run_for_hours(1.0);
        let mut runtime = full_runtime();
        let store = std::sync::Arc::clone(dc.store());
        let registry = dc.registry().clone();
        let now = dc.now();
        let before_setpoint = dc.cooling_setpoint();
        let report = runtime.pass(store, registry, now, &mut SimControlPlane { dc: &mut dc });
        assert!(report.applied > 0, "idle nodes yield DVFS actions at least");
        // The setpoint tracked the actual weather (initial 30 °C is not the
        // free-cooling frontier in general).
        let after = dc.cooling_setpoint();
        let _ = before_setpoint;
        assert!((18.0..=45.0).contains(&after));
        // Audit log recorded everything with outcomes.
        assert_eq!(runtime.audit_log().len(), report.applied + report.deferred);
        assert!(runtime
            .audit_log()
            .iter()
            .all(|r| r.at == now && !r.source.is_empty()));
    }

    #[test]
    fn advisory_mode_applies_nothing() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(52)
            .build();
        dc.run_for_hours(0.5);
        let mut runtime = full_runtime();
        runtime.autopilot = false;
        let store = std::sync::Arc::clone(dc.store());
        let registry = dc.registry().clone();
        let now = dc.now();
        let freq_before: Vec<f64> = (0..dc.node_count())
            .map(|i| dc.node(NodeId(i as u32)).freq_ghz())
            .collect();
        let report = runtime.pass(store, registry, now, &mut SimControlPlane { dc: &mut dc });
        assert_eq!(report.applied, 0);
        assert!(report.deferred > 0);
        let freq_after: Vec<f64> = (0..dc.node_count())
            .map(|i| dc.node(NodeId(i as u32)).freq_ghz())
            .collect();
        assert_eq!(freq_before, freq_after, "advisory mode must not actuate");
        assert!(runtime
            .audit_log()
            .iter()
            .all(|r| r.outcome == ActionOutcome::NeedsOperator));
    }

    #[test]
    fn unknown_actions_are_deferred_not_lost() {
        struct DeafControlPlane;
        impl ControlPlane for DeafControlPlane {
            fn apply(&mut self, _: &str, _: &str) -> bool {
                false
            }
        }
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(53)
            .build();
        dc.run_for_hours(0.5);
        let mut runtime = full_runtime();
        let report = runtime.pass(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            dc.now(),
            &mut DeafControlPlane,
        );
        assert_eq!(report.applied, 0);
        assert!(runtime
            .audit_log()
            .iter()
            .all(|r| r.outcome != ActionOutcome::Applied));
    }

    #[test]
    fn dag_layers_stages_and_serializes_prescriptive_conflicts() {
        use crate::grid::GridCell;
        use crate::pillar::Pillar;
        let cell = |a, p| GridFootprint::single(GridCell::new(a, p));
        // Registration order: prescriptive (hw), descriptive ×2, predictive,
        // prescriptive (hw again → conflicts with slot 0), prescriptive (apps).
        let slots = vec![
            (
                AnalyticsType::Prescriptive,
                cell(AnalyticsType::Prescriptive, Pillar::SystemHardware),
            ),
            (
                AnalyticsType::Descriptive,
                cell(AnalyticsType::Descriptive, Pillar::SystemHardware),
            ),
            (
                AnalyticsType::Descriptive,
                cell(AnalyticsType::Descriptive, Pillar::Applications),
            ),
            (
                AnalyticsType::Predictive,
                cell(AnalyticsType::Predictive, Pillar::SystemHardware),
            ),
            (
                AnalyticsType::Prescriptive,
                cell(AnalyticsType::Prescriptive, Pillar::SystemHardware),
            ),
            (
                AnalyticsType::Prescriptive,
                cell(AnalyticsType::Prescriptive, Pillar::Applications),
            ),
        ];
        let dag = CapabilityDag::build(&slots);
        assert_eq!(dag.len(), 6);
        let layers: Vec<(AnalyticsType, Vec<usize>)> = dag
            .layers
            .iter()
            .map(|l| (l.stage, l.slots.clone()))
            .collect();
        assert_eq!(
            layers,
            vec![
                (AnalyticsType::Descriptive, vec![1, 2]),
                (AnalyticsType::Predictive, vec![3]),
                // Slot 4 overlaps slot 0's hardware domain → its own
                // sub-layer; slot 5 (apps) rides with slot 0.
                (AnalyticsType::Prescriptive, vec![0, 5]),
                (AnalyticsType::Prescriptive, vec![4]),
            ]
        );
        // Artifact flow: 2·1 + 1·3; conflict: 0→4. Max width is the
        // descriptive/first-prescriptive pair.
        assert_eq!(dag.edges, 2 + 3 + 1);
        assert_eq!(dag.max_width(), 2);
    }

    #[test]
    fn parallel_pass_is_bit_identical_to_serial() {
        let mut outputs = Vec::new();
        for workers in [1usize, 4] {
            let mut dc = DataCenter::builder(DataCenterConfig::tiny())
                .seed(77)
                .build();
            dc.run_for_hours(1.0);
            let mut runtime = full_runtime()
                .with_workers(workers)
                .with_metrics(MetricsRegistry::new());
            let report = runtime.pass(
                std::sync::Arc::clone(dc.store()),
                dc.registry().clone(),
                dc.now(),
                &mut SimControlPlane { dc: &mut dc },
            );
            outputs.push((
                report.run.output_digest(),
                report.applied,
                report.deferred,
                runtime.audit_log().to_vec(),
            ));
        }
        assert_eq!(outputs[0].0, outputs[1].0, "pipeline outputs must match");
        assert_eq!(outputs[0].1, outputs[1].1, "applied counts must match");
        assert_eq!(outputs[0].2, outputs[1].2, "deferred counts must match");
        assert_eq!(outputs[0].3, outputs[1].3, "audit logs must match");
    }

    /// A capability that always panics: the scheduler must isolate it.
    struct Exploder;
    impl Capability for Exploder {
        fn name(&self) -> &str {
            "exploder"
        }
        fn description(&self) -> &str {
            "panics on execute"
        }
        fn footprint(&self) -> crate::grid::GridFootprint {
            crate::grid::GridFootprint::single(crate::grid::GridCell::new(
                AnalyticsType::Diagnostic,
                crate::pillar::Pillar::SystemHardware,
            ))
        }
        fn execute(&mut self, _ctx: &CapabilityContext) -> Vec<Artifact> {
            panic!("deliberate test panic");
        }
    }

    #[test]
    fn capability_panic_is_isolated_and_recorded() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let metrics = MetricsRegistry::new();
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(55)
            .build();
        dc.run_for_hours(0.5);
        let mut runtime = full_runtime()
            .with_capability(AnalyticsType::Diagnostic, Box::new(Exploder))
            .with_metrics(metrics.clone());
        let report = runtime.pass(
            std::sync::Arc::clone(dc.store()),
            dc.registry().clone(),
            dc.now(),
            &mut SimControlPlane { dc: &mut dc },
        );
        std::panic::set_hook(hook);
        let span = report.run.span("exploder").expect("exploder span recorded");
        assert!(span.panicked);
        assert_eq!(span.artifacts, 0);
        // The rest of the pipeline still ran to completion.
        assert!(report.run.spans.len() > 1);
        assert!(report.applied + report.deferred > 0);
        assert_eq!(
            metrics
                .snapshot()
                .counter("runtime_capability_panics_total{capability=\"exploder\"}"),
            Some(1)
        );
    }

    /// Threads of this process, from /proc (Linux); 0 elsewhere.
    fn thread_count() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or(0)
    }

    #[test]
    fn dropping_runtimes_joins_worker_threads() {
        let baseline = thread_count();
        if baseline == 0 {
            return; // no /proc on this platform; covered on Linux CI
        }
        let store = std::sync::Arc::new(TimeSeriesStore::with_capacity_shards_metrics(
            8,
            1,
            MetricsRegistry::disabled(),
        ));
        struct Deaf;
        impl ControlPlane for Deaf {
            fn apply(&mut self, _: &str, _: &str) -> bool {
                false
            }
        }
        for i in 0..100 {
            let mut runtime = full_runtime()
                .with_workers(4)
                .with_metrics(MetricsRegistry::disabled());
            // Run a pass so the pool actually spawns before the drop.
            runtime.pass(
                std::sync::Arc::clone(&store),
                SensorRegistry::new(),
                Timestamp::from_millis(i),
                &mut Deaf,
            );
        }
        // Every pool joined on drop: thread count returns to baseline
        // (slack for unrelated test-harness threads coming and going).
        let after = thread_count();
        assert!(
            after <= baseline + 4,
            "worker threads leaked: {baseline} before, {after} after"
        );
    }

    #[test]
    fn sim_control_plane_validates_inputs() {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(54)
            .build();
        let mut cp = SimControlPlane { dc: &mut dc };
        assert!(cp.apply("node0/freq_ghz", "2.0"));
        assert!(!cp.apply("node999/freq_ghz", "2.0"), "out-of-range node");
        assert!(!cp.apply("node0/freq_ghz", "fast"), "non-numeric setting");
        assert!(cp.apply("cooling_mode", "chiller"));
        assert!(!cp.apply("cooling_mode", "magic"));
        assert!(cp.apply("placement_policy", "pack-racks"));
        assert!(!cp.apply("warp_drive", "on"));
        assert!(cp.apply("node1/fan", "0.8"));
        assert!((dc.node(oda_sim::prelude::NodeId(1)).fan_speed() - 0.8).abs() < 1e-9);
    }
}
