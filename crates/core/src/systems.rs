//! The complex ODA systems of Fig. 3, as grid-mapped compositions.
//!
//! §V of the paper discusses three real systems whose grid footprints span
//! several cells; Fig. 3 shades those footprints. This module encodes each
//! system's components and cells so the figure can be regenerated, and —
//! because this reproduction also *implements* every cell — each system
//! can be instantiated as a runnable [`crate::pipeline::StagedPipeline`]
//! (see `oda-bench`'s `figure3` binary and the examples).

use crate::analytics_type::AnalyticsType;
use crate::grid::{GridCell, GridFootprint};
use crate::pillar::Pillar;
use serde::{Deserialize, Serialize};

/// One component of a complex ODA system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemComponent {
    /// What the component does.
    pub description: &'static str,
    /// Where it sits on the grid.
    pub cell: GridCell,
}

/// A complex ODA system mapped on the framework.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComplexSystem {
    /// System name as used in the paper.
    pub name: &'static str,
    /// Source discussion in the paper.
    pub paper_section: &'static str,
    /// Its components.
    pub components: Vec<SystemComponent>,
}

impl ComplexSystem {
    /// The union footprint (the shaded region of Fig. 3).
    pub fn footprint(&self) -> GridFootprint {
        GridFootprint::from_cells(&self.components.iter().map(|c| c.cell).collect::<Vec<_>>())
    }

    /// Renders the system's Fig. 3 panel.
    pub fn render(&self) -> String {
        format!(
            "{} ({})\n{}\nComponents:\n{}",
            self.name,
            self.paper_section,
            self.footprint().render(),
            self.components
                .iter()
                .map(|c| format!("  - [{}] {}", c.cell, c.description))
                .collect::<Vec<_>>()
                .join("\n")
        )
    }
}

/// The ENI/Bortot et al. anomaly response system (§V-A): diagnostic
/// anomaly identification aided by stress testing, plus prescriptive
/// cooling setpoint optimization — both within Building Infrastructure.
pub fn eni_anomaly_response() -> ComplexSystem {
    ComplexSystem {
        name: "ENI anomaly detection & response (Bortot et al.)",
        paper_section: "§V-A",
        components: vec![
            SystemComponent {
                description: "Anomaly identification in infrastructure components, aided by periodic stress testing",
                cell: GridCell::new(AnalyticsType::Diagnostic, Pillar::BuildingInfrastructure),
            },
            SystemComponent {
                description: "Optimal cooling setpoint temperatures and cost-effective settings to reach them",
                cell: GridCell::new(AnalyticsType::Prescriptive, Pillar::BuildingInfrastructure),
            },
        ],
    }
}

/// The Powerstack effort (§V-B): cross-pillar prescriptive power
/// management informed by predictive techniques.
pub fn powerstack() -> ComplexSystem {
    ComplexSystem {
        name: "Powerstack (Wu et al.)",
        paper_section: "§V-B",
        components: vec![
            SystemComponent {
                description: "Intelligent prediction informing power management decisions",
                cell: GridCell::new(AnalyticsType::Predictive, Pillar::SystemHardware),
            },
            SystemComponent {
                description: "Hardware power-knob control (frequency, power caps)",
                cell: GridCell::new(AnalyticsType::Prescriptive, Pillar::SystemHardware),
            },
            SystemComponent {
                description: "Power-aware scheduling decisions",
                cell: GridCell::new(AnalyticsType::Prescriptive, Pillar::SystemSoftware),
            },
            SystemComponent {
                description: "Application-level auto-tuning under power objectives",
                cell: GridCell::new(AnalyticsType::Prescriptive, Pillar::Applications),
            },
        ],
    }
}

/// The LLNL utility-notification forecaster (§V-C): Fourier analysis of
/// historical power data predicting ±750 kW swings within 15-minute
/// windows.
pub fn llnl_power_forecaster() -> ComplexSystem {
    ComplexSystem {
        name: "LLNL power-fluctuation forecasting (Abdulla et al.)",
        paper_section: "§V-C",
        components: vec![
            SystemComponent {
                description: "Processing of historical site power monitoring data",
                cell: GridCell::new(AnalyticsType::Descriptive, Pillar::BuildingInfrastructure),
            },
            SystemComponent {
                description: "Fourier identification of power spike patterns",
                cell: GridCell::new(AnalyticsType::Diagnostic, Pillar::BuildingInfrastructure),
            },
            SystemComponent {
                description: "Forecasting power consumption to anticipate ±750 kW / 15 min utility notifications",
                cell: GridCell::new(AnalyticsType::Predictive, Pillar::BuildingInfrastructure),
            },
        ],
    }
}

/// All Fig. 3 systems.
pub fn figure3_systems() -> Vec<ComplexSystem> {
    vec![
        eni_anomaly_response(),
        powerstack(),
        llnl_power_forecaster(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eni_is_single_pillar_multi_type() {
        let s = eni_anomaly_response();
        let f = s.footprint();
        assert!(!f.is_multi_pillar(), "ENI stays in Building Infrastructure");
        assert!(f.is_multi_type());
        assert_eq!(f.count(), 2);
        assert_eq!(f.pillars(), vec![Pillar::BuildingInfrastructure]);
    }

    #[test]
    fn powerstack_is_multi_pillar() {
        let s = powerstack();
        let f = s.footprint();
        assert!(f.is_multi_pillar());
        assert_eq!(f.pillars().len(), 3);
        assert!(f.types().contains(&AnalyticsType::Predictive));
        assert!(f.types().contains(&AnalyticsType::Prescriptive));
    }

    #[test]
    fn llnl_climbs_the_staircase_within_one_pillar() {
        let s = llnl_power_forecaster();
        let f = s.footprint();
        assert_eq!(f.pillars(), vec![Pillar::BuildingInfrastructure]);
        assert_eq!(
            f.types(),
            vec![
                AnalyticsType::Descriptive,
                AnalyticsType::Diagnostic,
                AnalyticsType::Predictive
            ]
        );
        // Notably *not* prescriptive: LLNL notifies, it does not actuate.
        assert!(!f.types().contains(&AnalyticsType::Prescriptive));
    }

    #[test]
    fn renders_contain_name_and_grid() {
        for s in figure3_systems() {
            let r = s.render();
            assert!(r.contains(s.name));
            assert!(r.contains("[x]"));
            assert!(r.contains("Components:"));
        }
    }

    #[test]
    fn footprints_are_distinct() {
        let systems = figure3_systems();
        for i in 0..systems.len() {
            for j in i + 1..systems.len() {
                assert_ne!(
                    systems[i].footprint(),
                    systems[j].footprint(),
                    "{} vs {}",
                    systems[i].name,
                    systems[j].name
                );
            }
        }
    }
}
