//! The Table I survey corpus, encoded.
//!
//! Section IV of the paper demonstrates the framework by classifying ~50
//! surveyed use cases into the sixteen cells; Table I is the result. This
//! module encodes every entry of that table — use-case description,
//! citation numbers, cell — and regenerates the table and the statistics
//! the Discussion section draws from it (single- vs multi-pillar systems,
//! per-type and per-pillar density, similarity between systems).
//!
//! Citation numbers are the paper's own reference indices, so the encoded
//! corpus can be checked against the published table entry by entry.
//!
//! ```
//! // Which cells does the survey populate most densely?
//! let counts = oda_core::survey::cell_counts();
//! let total: usize = counts.iter().map(|(_, &n)| n).sum();
//! assert_eq!(total, oda_core::survey::corpus().len());
//!
//! // §V-B: single-pillar systems dominate the surveyed landscape.
//! let stats = oda_core::survey::pillar_stats();
//! assert!(stats.single_pillar > stats.multi_pillar);
//! ```

use crate::analytics_type::AnalyticsType;
use crate::grid::{CapabilityGrid, GridCell, GridFootprint};
use crate::pillar::Pillar;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One use-case entry of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SurveyEntry {
    /// The use-case description, as printed in the table.
    pub use_case: &'static str,
    /// Citation numbers in the paper's reference list.
    pub citations: &'static [u16],
    /// The cell the entry is placed in.
    pub cell: GridCell,
}

macro_rules! entry {
    ($desc:literal, [$($c:literal),+], $a:ident, $p:ident) => {
        SurveyEntry {
            use_case: $desc,
            citations: &[$($c),+],
            cell: GridCell::new(AnalyticsType::$a, Pillar::$p),
        }
    };
}

/// The full Table I corpus, row by row (prescriptive → descriptive, as
/// printed).
pub fn corpus() -> Vec<SurveyEntry> {
    vec![
        // Prescriptive row.
        entry!(
            "Switching between types of cooling",
            [12],
            Prescriptive,
            BuildingInfrastructure
        ),
        entry!(
            "Tuning of cooling machinery",
            [18, 37],
            Prescriptive,
            BuildingInfrastructure
        ),
        entry!(
            "Responding to anomalies",
            [38, 39],
            Prescriptive,
            BuildingInfrastructure
        ),
        entry!(
            "Cooling optimization at system level",
            [12],
            Prescriptive,
            SystemHardware
        ),
        entry!(
            "CPU frequency tuning",
            [11, 24, 40],
            Prescriptive,
            SystemHardware
        ),
        entry!(
            "Tuning of hardware knobs",
            [20, 25, 41],
            Prescriptive,
            SystemHardware
        ),
        entry!(
            "Intelligent placement of tasks and threads",
            [42],
            Prescriptive,
            SystemSoftware
        ),
        entry!("Plan-based scheduling", [43], Prescriptive, SystemSoftware),
        entry!(
            "Power and KPI-aware scheduling",
            [21, 22, 23],
            Prescriptive,
            SystemSoftware
        ),
        entry!(
            "Auto-tuning of HPC applications",
            [28, 29, 41],
            Prescriptive,
            Applications
        ),
        entry!(
            "Code improvement recommendations",
            [44],
            Prescriptive,
            Applications
        ),
        // Predictive row.
        entry!(
            "Predicting data center KPIs",
            [45],
            Predictive,
            BuildingInfrastructure
        ),
        entry!(
            "Predicting cooling demand",
            [37],
            Predictive,
            BuildingInfrastructure
        ),
        entry!(
            "Modelling cooling performance",
            [18, 46],
            Predictive,
            BuildingInfrastructure
        ),
        entry!(
            "Forecasting hardware sensors",
            [32, 47],
            Predictive,
            SystemHardware
        ),
        entry!(
            "Component failure prediction",
            [48],
            Predictive,
            SystemHardware
        ),
        entry!(
            "Predicting CPU instruction mixes",
            [11],
            Predictive,
            SystemHardware
        ),
        entry!(
            "Simulating HPC systems and schedulers",
            [49, 50, 51],
            Predictive,
            SystemSoftware
        ),
        entry!("Predicting HPC workloads", [23], Predictive, SystemSoftware),
        entry!(
            "Predicting job durations",
            [30, 34, 35],
            Predictive,
            Applications
        ),
        entry!(
            "Predicting job resource usage",
            [31, 52, 53],
            Predictive,
            Applications
        ),
        entry!(
            "Predicting performance profiles of code regions",
            [24],
            Predictive,
            Applications
        ),
        // Diagnostic row.
        entry!(
            "Fingerprinting data center crises",
            [38],
            Diagnostic,
            BuildingInfrastructure
        ),
        entry!(
            "Infrastructure anomaly detection",
            [54],
            Diagnostic,
            BuildingInfrastructure
        ),
        entry!(
            "Infrastructure stress testing",
            [39],
            Diagnostic,
            BuildingInfrastructure
        ),
        entry!(
            "Node-level anomaly detection",
            [17, 26, 47],
            Diagnostic,
            SystemHardware
        ),
        entry!(
            "System-level root cause analysis",
            [9],
            Diagnostic,
            SystemHardware
        ),
        entry!(
            "Diagnosing network contention issues",
            [19, 55],
            Diagnostic,
            SystemHardware
        ),
        entry!(
            "Diagnosing data locality issues",
            [9],
            Diagnostic,
            SystemSoftware
        ),
        entry!(
            "Detection of software anomalies",
            [16, 56],
            Diagnostic,
            SystemSoftware
        ),
        entry!(
            "Identifying sources of OS noise",
            [57],
            Diagnostic,
            SystemSoftware
        ),
        entry!(
            "Application fingerprinting",
            [33, 36],
            Diagnostic,
            Applications
        ),
        entry!(
            "Identifying performance patterns",
            [20, 31, 44],
            Diagnostic,
            Applications
        ),
        entry!(
            "Diagnosing code-level issues",
            [15, 27],
            Diagnostic,
            Applications
        ),
        // Descriptive row.
        entry!("PUE calculation", [4], Descriptive, BuildingInfrastructure),
        entry!(
            "Facility data processing",
            [8, 58],
            Descriptive,
            BuildingInfrastructure
        ),
        entry!(
            "Facility-level dashboards",
            [1, 7],
            Descriptive,
            BuildingInfrastructure
        ),
        entry!("ITUE calculation", [59], Descriptive, SystemHardware),
        entry!(
            "System performance indicators",
            [14],
            Descriptive,
            SystemHardware
        ),
        entry!(
            "System-level dashboards",
            [7, 8],
            Descriptive,
            SystemHardware
        ),
        entry!("Slowdown calculation", [60], Descriptive, SystemSoftware),
        entry!(
            "Scheduler-level dashboards",
            [61, 62],
            Descriptive,
            SystemSoftware
        ),
        entry!("Job performance models", [63], Descriptive, Applications),
        entry!("Job data processing", [8], Descriptive, Applications),
        entry!(
            "Job-level dashboards",
            [5, 6, 10],
            Descriptive,
            Applications
        ),
    ]
}

/// Table I as a grid of entries.
pub fn table1() -> CapabilityGrid<Vec<SurveyEntry>> {
    let mut grid: CapabilityGrid<Vec<SurveyEntry>> = CapabilityGrid::new();
    for e in corpus() {
        grid.get_mut(e.cell).push(e);
    }
    grid
}

/// Renders Table I as Markdown, rows in the paper's order (prescriptive at
/// the top).
pub fn render_table1() -> String {
    let grid = table1();
    let mut out = String::new();
    out.push_str(
        "| | Building Infrastructure | System Hardware | System Software | Applications |\n",
    );
    out.push_str("|---|---|---|---|---|\n");
    for a in AnalyticsType::ALL.into_iter().rev() {
        out.push_str(&format!("| **{}** |", a.name()));
        for p in Pillar::ALL {
            let cell = grid.get(GridCell::new(a, p));
            let text = cell
                .iter()
                .map(|e| {
                    let refs = e
                        .citations
                        .iter()
                        .map(|c| format!("[{c}]"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("{} {}", e.use_case, refs)
                })
                .collect::<Vec<_>>()
                .join("; ");
            out.push_str(&format!(" {text} |"));
        }
        out.push('\n');
    }
    out
}

/// Footprint of each cited work across the whole table: citations that
/// appear in several cells are the paper's "systems covering multiple
/// framework categories at the same time".
pub fn citation_footprints() -> BTreeMap<u16, GridFootprint> {
    let mut map: BTreeMap<u16, GridFootprint> = BTreeMap::new();
    for e in corpus() {
        for &c in e.citations {
            let f = map.entry(c).or_insert(GridFootprint::EMPTY);
            *f = f.with(e.cell);
        }
    }
    map
}

/// §V-B statistics: how many cited works stay within one pillar vs span
/// several.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PillarStats {
    /// Works confined to a single pillar.
    pub single_pillar: usize,
    /// Works spanning two or more pillars.
    pub multi_pillar: usize,
    /// Works combining two or more analytics types.
    pub multi_type: usize,
    /// Total distinct cited works.
    pub total: usize,
}

/// Computes the single- vs multi-pillar statistics over the corpus.
pub fn pillar_stats() -> PillarStats {
    let fps = citation_footprints();
    let total = fps.len();
    let multi_pillar = fps.values().filter(|f| f.is_multi_pillar()).count();
    let multi_type = fps.values().filter(|f| f.is_multi_type()).count();
    PillarStats {
        single_pillar: total - multi_pillar,
        multi_pillar,
        multi_type,
        total,
    }
}

/// Pairwise Jaccard similarity between two cited works' footprints —
/// the framework's "compare use cases in terms of similarity" operation.
pub fn citation_similarity(a: u16, b: u16) -> Option<f64> {
    let fps = citation_footprints();
    Some(fps.get(&a)?.jaccard(*fps.get(&b)?))
}

/// Per-cell entry counts (the density view: rich areas vs gaps).
pub fn cell_counts() -> CapabilityGrid<usize> {
    table1().map(|_, entries| entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_of_table1_is_populated() {
        let counts = cell_counts();
        for (cell, &n) in counts.iter() {
            assert!(n >= 2, "{cell} has only {n} entries");
        }
    }

    #[test]
    fn corpus_size_matches_paper_table() {
        // 45 printed use-case bullets in Table I.
        assert_eq!(corpus().len(), 45);
    }

    #[test]
    fn spot_check_placements_against_the_paper() {
        let grid = table1();
        // PUE calculation [4] sits in Descriptive × Building Infrastructure.
        let d_infra = grid.get(GridCell::new(
            AnalyticsType::Descriptive,
            Pillar::BuildingInfrastructure,
        ));
        assert!(d_infra
            .iter()
            .any(|e| e.use_case == "PUE calculation" && e.citations == [4]));
        // Plan-based scheduling [43] in Prescriptive × System Software.
        let r_sw = grid.get(GridCell::new(
            AnalyticsType::Prescriptive,
            Pillar::SystemSoftware,
        ));
        assert!(r_sw.iter().any(|e| e.use_case == "Plan-based scheduling"));
        // Application fingerprinting [33],[36] in Diagnostic × Applications.
        let g_app = grid.get(GridCell::new(
            AnalyticsType::Diagnostic,
            Pillar::Applications,
        ));
        assert!(g_app.iter().any(|e| e.citations == [33, 36]));
    }

    #[test]
    fn multi_cell_citations_exist_and_are_found() {
        let fps = citation_footprints();
        // [12] (Jiang et al.) appears in Prescriptive×Infra and
        // Prescriptive×HW — a multi-pillar system.
        assert!(fps[&12].is_multi_pillar());
        assert_eq!(fps[&12].count(), 2);
        // [11] (GEOPM) appears in Prescriptive×HW and Predictive×HW —
        // multi-type, single-pillar.
        assert!(fps[&11].is_multi_type());
        assert!(!fps[&11].is_multi_pillar());
        // [4] (PUE) is a single cell.
        assert_eq!(fps[&4].count(), 1);
    }

    #[test]
    fn single_pillar_systems_dominate_as_the_paper_observes() {
        let stats = pillar_stats();
        assert_eq!(stats.single_pillar + stats.multi_pillar, stats.total);
        assert!(
            stats.single_pillar > stats.multi_pillar * 3,
            "§V-B: most use cases are single-pillar ({stats:?})"
        );
        assert!(stats.total > 50, "distinct cited works: {}", stats.total);
    }

    #[test]
    fn similarity_queries() {
        // [12] vs itself.
        assert_eq!(citation_similarity(12, 12), Some(1.0));
        // [21], [22], [23] share the Prescriptive×SW cell; [23] also covers
        // Predictive×SW, so its similarity with [21] is 0.5.
        assert_eq!(citation_similarity(21, 22), Some(1.0));
        assert_eq!(citation_similarity(21, 23), Some(0.5));
        // Unknown citation.
        assert_eq!(citation_similarity(21, 999), None);
    }

    #[test]
    fn rendered_table_contains_all_rows_and_spot_entries() {
        let md = render_table1();
        assert!(md.contains("**Prescriptive**"));
        assert!(md.contains("**Descriptive**"));
        assert!(md.contains("PUE calculation [4]"));
        assert!(md.contains("Plan-based scheduling [43]"));
        assert!(md.contains("Job-level dashboards [5], [6], [10]"));
        assert_eq!(md.lines().count(), 6); // header + rule + 4 rows
    }
}
