//! Capability registry: index, coverage, and gap analysis.
//!
//! The paper argues the framework "shows areas that are rich, as well as
//! gaps in the ODA landscape that need to be explored". The registry makes
//! that query executable for a deployment: register capabilities, then ask
//! which cells are covered, where the gaps are, and which capabilities
//! serve a given pillar or analytics type.

use crate::analytics_type::AnalyticsType;
use crate::capability::{Artifact, Capability, CapabilityContext};
use crate::grid::{CapabilityGrid, GridCell, GridFootprint};
use crate::pillar::Pillar;

/// A registry of runnable capabilities.
#[derive(Default)]
pub struct CapabilityRegistry {
    capabilities: Vec<Box<dyn Capability>>,
}

/// Coverage summary over the sixteen cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    /// Number of capabilities touching each cell.
    pub per_cell: CapabilityGrid<usize>,
    /// Cells no capability covers — the gaps.
    pub gaps: Vec<GridCell>,
    /// Union footprint of all capabilities.
    pub union: GridFootprint,
}

impl CapabilityRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a capability.
    pub fn register(&mut self, capability: Box<dyn Capability>) {
        self.capabilities.push(capability);
    }

    /// Number of registered capabilities.
    pub fn len(&self) -> usize {
        self.capabilities.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.capabilities.is_empty()
    }

    /// Names of capabilities covering `cell`.
    pub fn in_cell(&self, cell: GridCell) -> Vec<&str> {
        self.capabilities
            .iter()
            .filter(|c| c.footprint().covers(cell))
            .map(|c| c.name())
            .collect()
    }

    /// Names of capabilities touching `pillar` (any type).
    pub fn in_pillar(&self, pillar: Pillar) -> Vec<&str> {
        self.capabilities
            .iter()
            .filter(|c| c.footprint().pillars().contains(&pillar))
            .map(|c| c.name())
            .collect()
    }

    /// Names of capabilities of a given analytics type (any pillar).
    pub fn of_type(&self, analytics: AnalyticsType) -> Vec<&str> {
        self.capabilities
            .iter()
            .filter(|c| c.footprint().types().contains(&analytics))
            .map(|c| c.name())
            .collect()
    }

    /// Computes the coverage/gap analysis.
    pub fn coverage(&self) -> Coverage {
        let mut per_cell: CapabilityGrid<usize> = CapabilityGrid::new();
        let mut union = GridFootprint::EMPTY;
        for c in &self.capabilities {
            let f = c.footprint();
            union = union.union(f);
            for cell in f.cells() {
                *per_cell.get_mut(cell) += 1;
            }
        }
        let gaps = GridCell::all().filter(|c| !union.covers(*c)).collect();
        Coverage {
            per_cell,
            gaps,
            union,
        }
    }

    /// Executes every capability covering `cell`, in registration order,
    /// collecting all artifacts.
    pub fn execute_cell(&mut self, cell: GridCell, ctx: &CapabilityContext) -> Vec<Artifact> {
        self.capabilities
            .iter_mut()
            .filter(|c| c.footprint().covers(cell))
            .flat_map(|c| c.execute(ctx))
            .collect()
    }

    /// Executes every registered capability, returning `(name, artifacts)`.
    pub fn execute_all(&mut self, ctx: &CapabilityContext) -> Vec<(String, Vec<Artifact>)> {
        self.capabilities
            .iter_mut()
            .map(|c| (c.name().to_owned(), c.execute(ctx)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oda_telemetry::query::TimeRange;
    use oda_telemetry::reading::Timestamp;
    use oda_telemetry::sensor::SensorRegistry;
    use oda_telemetry::store::TimeSeriesStore;
    use std::sync::Arc;

    struct Fixed {
        name: &'static str,
        footprint: GridFootprint,
    }

    impl Capability for Fixed {
        fn name(&self) -> &str {
            self.name
        }
        fn description(&self) -> &str {
            "fixture"
        }
        fn footprint(&self) -> GridFootprint {
            self.footprint
        }
        fn execute(&mut self, _ctx: &CapabilityContext) -> Vec<Artifact> {
            vec![Artifact::Kpi {
                name: self.name.into(),
                value: 1.0,
            }]
        }
    }

    fn cell(a: AnalyticsType, p: Pillar) -> GridCell {
        GridCell::new(a, p)
    }

    fn registry() -> CapabilityRegistry {
        let mut r = CapabilityRegistry::new();
        r.register(Box::new(Fixed {
            name: "pue-dash",
            footprint: GridFootprint::single(cell(
                AnalyticsType::Descriptive,
                Pillar::BuildingInfrastructure,
            )),
        }));
        r.register(Box::new(Fixed {
            name: "node-anomaly",
            footprint: GridFootprint::single(cell(
                AnalyticsType::Diagnostic,
                Pillar::SystemHardware,
            )),
        }));
        r.register(Box::new(Fixed {
            name: "powerstack-like",
            footprint: GridFootprint::from_cells(&[
                cell(AnalyticsType::Predictive, Pillar::SystemHardware),
                cell(AnalyticsType::Prescriptive, Pillar::SystemSoftware),
            ]),
        }));
        r
    }

    fn ctx() -> CapabilityContext {
        CapabilityContext::new(
            Arc::new(TimeSeriesStore::with_capacity(8)),
            SensorRegistry::new(),
            TimeRange::all(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn lookup_by_cell_pillar_type() {
        let r = registry();
        assert_eq!(
            r.in_cell(cell(AnalyticsType::Diagnostic, Pillar::SystemHardware)),
            vec!["node-anomaly"]
        );
        assert_eq!(
            r.in_pillar(Pillar::SystemHardware),
            vec!["node-anomaly", "powerstack-like"]
        );
        assert_eq!(
            r.of_type(AnalyticsType::Prescriptive),
            vec!["powerstack-like"]
        );
        assert!(r
            .in_cell(cell(AnalyticsType::Prescriptive, Pillar::Applications))
            .is_empty());
    }

    #[test]
    fn coverage_counts_and_gaps() {
        let cov = registry().coverage();
        assert_eq!(cov.union.count(), 4);
        assert_eq!(cov.gaps.len(), 12);
        assert_eq!(
            *cov.per_cell.get(cell(
                AnalyticsType::Descriptive,
                Pillar::BuildingInfrastructure
            )),
            1
        );
        assert!(!cov
            .gaps
            .contains(&cell(AnalyticsType::Predictive, Pillar::SystemHardware)));
    }

    #[test]
    fn execute_cell_runs_only_matching() {
        let mut r = registry();
        let out = r.execute_cell(
            cell(AnalyticsType::Diagnostic, Pillar::SystemHardware),
            &ctx(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kpi("node-anomaly"), Some(1.0));
    }

    #[test]
    fn execute_all_returns_everything() {
        let mut r = registry();
        let out = r.execute_all(&ctx());
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, "pue-dash");
    }

    #[test]
    fn empty_registry_has_sixteen_gaps() {
        let cov = CapabilityRegistry::new().coverage();
        assert_eq!(cov.gaps.len(), 16);
        assert_eq!(cov.union, GridFootprint::EMPTY);
    }
}
