//! The 4×4 grid: cells, dense per-cell containers, and footprints.
//!
//! A [`GridCell`] is one of the sixteen classes the framework admits; a
//! [`GridFootprint`] is the set of cells an ODA system covers (the shaded
//! regions of the paper's Fig. 3); a [`CapabilityGrid`] stores one `T` per
//! cell for table-shaped data (Table I itself is a
//! `CapabilityGrid<Vec<SurveyEntry>>`).

use crate::analytics_type::AnalyticsType;
use crate::pillar::Pillar;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One cell of the framework: an (analytics type, pillar) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GridCell {
    /// The row: what kind of question the analytics answers.
    pub analytics: AnalyticsType,
    /// The column: which data-center domain it concerns.
    pub pillar: Pillar,
}

impl GridCell {
    /// Creates a cell.
    pub const fn new(analytics: AnalyticsType, pillar: Pillar) -> Self {
        GridCell { analytics, pillar }
    }

    /// All sixteen cells, row-major (analytics type outer, pillar inner).
    pub fn all() -> impl Iterator<Item = GridCell> {
        AnalyticsType::ALL
            .into_iter()
            .flat_map(|a| Pillar::ALL.into_iter().map(move |p| GridCell::new(a, p)))
    }

    /// Dense index `0..16`, row-major.
    #[inline]
    pub const fn index(self) -> usize {
        self.analytics.index() * 4 + self.pillar.index()
    }

    /// Cell from a dense index.
    ///
    /// # Panics
    /// Panics if `i >= 16`.
    pub const fn from_index(i: usize) -> GridCell {
        GridCell {
            analytics: AnalyticsType::from_index(i / 4),
            pillar: Pillar::from_index(i % 4),
        }
    }
}

impl fmt::Display for GridCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} × {}", self.analytics, self.pillar)
    }
}

/// The set of cells an ODA system covers, as a 16-bit set.
///
/// ```
/// use oda_core::analytics_type::AnalyticsType;
/// use oda_core::grid::{GridCell, GridFootprint};
/// use oda_core::pillar::Pillar;
///
/// // GEOPM-style power management: predicts and tunes, hardware pillar.
/// let geopm = GridFootprint::from_cells(&[
///     GridCell::new(AnalyticsType::Predictive, Pillar::SystemHardware),
///     GridCell::new(AnalyticsType::Prescriptive, Pillar::SystemHardware),
/// ]);
/// assert!(geopm.is_multi_type());
/// assert!(!geopm.is_multi_pillar());
///
/// // Compare with the paper's Powerstack footprint (§V-B, Fig. 3):
/// let powerstack = oda_core::systems::powerstack().footprint();
/// assert!(geopm.jaccard(powerstack) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct GridFootprint(pub u16);

impl GridFootprint {
    /// The empty footprint.
    pub const EMPTY: GridFootprint = GridFootprint(0);
    /// The full grid.
    pub const FULL: GridFootprint = GridFootprint(0xFFFF);

    /// Footprint of a single cell.
    pub const fn single(cell: GridCell) -> Self {
        GridFootprint(1 << cell.index())
    }

    /// Footprint from a list of cells.
    pub fn from_cells(cells: &[GridCell]) -> Self {
        cells.iter().fold(Self::EMPTY, |f, &c| f.with(c))
    }

    /// This footprint plus one cell.
    #[must_use]
    pub const fn with(self, cell: GridCell) -> Self {
        GridFootprint(self.0 | (1 << cell.index()))
    }

    /// Whether the footprint covers `cell`.
    pub const fn covers(self, cell: GridCell) -> bool {
        self.0 & (1 << cell.index()) != 0
    }

    /// Number of covered cells.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Union.
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        GridFootprint(self.0 | other.0)
    }

    /// Intersection.
    #[must_use]
    pub const fn intersection(self, other: Self) -> Self {
        GridFootprint(self.0 & other.0)
    }

    /// Covered cells, in row-major order.
    pub fn cells(self) -> Vec<GridCell> {
        (0..16)
            .filter(|&i| self.0 & (1 << i) != 0)
            .map(GridCell::from_index)
            .collect()
    }

    /// Pillars touched by the footprint.
    pub fn pillars(self) -> Vec<Pillar> {
        Pillar::ALL
            .into_iter()
            .filter(|p| {
                AnalyticsType::ALL
                    .iter()
                    .any(|&a| self.covers(GridCell::new(a, *p)))
            })
            .collect()
    }

    /// Analytics types used by the footprint.
    pub fn types(self) -> Vec<AnalyticsType> {
        AnalyticsType::ALL
            .into_iter()
            .filter(|a| {
                Pillar::ALL
                    .iter()
                    .any(|&p| self.covers(GridCell::new(*a, p)))
            })
            .collect()
    }

    /// Whether the system crosses pillar boundaries (§V-B's multi-pillar
    /// class).
    pub fn is_multi_pillar(self) -> bool {
        self.pillars().len() > 1
    }

    /// Whether the system combines several analytics types (§V-A).
    pub fn is_multi_type(self) -> bool {
        self.types().len() > 1
    }

    /// Jaccard similarity with another footprint — the "compare use cases
    /// by their relative grid locations" operation of §I. Two empty
    /// footprints are fully similar.
    pub fn jaccard(self, other: Self) -> f64 {
        let union = self.union(other).count();
        if union == 0 {
            return 1.0;
        }
        self.intersection(other).count() as f64 / union as f64
    }

    /// Renders the footprint as a 4×4 check-mark grid (rows prescriptive →
    /// descriptive, matching Table I's orientation).
    pub fn render(self) -> String {
        let mut out = String::new();
        out.push_str("              Infra  HW     SW     Apps\n");
        for a in AnalyticsType::ALL.into_iter().rev() {
            out.push_str(&format!("{:<13}", a.name()));
            for p in Pillar::ALL {
                out.push_str(if self.covers(GridCell::new(a, p)) {
                    " [x]  "
                } else {
                    " [ ]  "
                });
            }
            out.push('\n');
        }
        out
    }
}

/// Dense per-cell storage: one `T` for each of the sixteen cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapabilityGrid<T> {
    cells: Vec<T>,
}

impl<T: Default> Default for CapabilityGrid<T> {
    fn default() -> Self {
        CapabilityGrid {
            cells: (0..16).map(|_| T::default()).collect(),
        }
    }
}

impl<T: Default> CapabilityGrid<T> {
    /// Creates a grid of defaults.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T> CapabilityGrid<T> {
    /// Immutable cell access.
    pub fn get(&self, cell: GridCell) -> &T {
        &self.cells[cell.index()]
    }

    /// Mutable cell access.
    pub fn get_mut(&mut self, cell: GridCell) -> &mut T {
        &mut self.cells[cell.index()]
    }

    /// Iterates `(cell, value)` row-major.
    pub fn iter(&self) -> impl Iterator<Item = (GridCell, &T)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, v)| (GridCell::from_index(i), v))
    }

    /// Maps every cell's value.
    pub fn map<U>(&self, mut f: impl FnMut(GridCell, &T) -> U) -> CapabilityGrid<U> {
        CapabilityGrid {
            cells: self
                .cells
                .iter()
                .enumerate()
                .map(|(i, v)| f(GridCell::from_index(i), v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cells_with_unique_indices() {
        let cells: Vec<GridCell> = GridCell::all().collect();
        assert_eq!(cells.len(), 16);
        let mut idx: Vec<usize> = cells.iter().map(|c| c.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..16).collect::<Vec<_>>());
        for c in cells {
            assert_eq!(GridCell::from_index(c.index()), c);
        }
    }

    #[test]
    fn footprint_set_operations() {
        let a = GridFootprint::from_cells(&[
            GridCell::new(AnalyticsType::Descriptive, Pillar::SystemHardware),
            GridCell::new(AnalyticsType::Diagnostic, Pillar::SystemHardware),
        ]);
        let b = GridFootprint::single(GridCell::new(
            AnalyticsType::Diagnostic,
            Pillar::SystemHardware,
        ));
        assert_eq!(a.count(), 2);
        assert!(a.covers(GridCell::new(
            AnalyticsType::Diagnostic,
            Pillar::SystemHardware
        )));
        assert_eq!(a.intersection(b), b);
        assert_eq!(a.union(b), a);
        assert_eq!(a.jaccard(b), 0.5);
        assert_eq!(GridFootprint::EMPTY.jaccard(GridFootprint::EMPTY), 1.0);
        assert_eq!(GridFootprint::FULL.count(), 16);
    }

    #[test]
    fn footprint_pillar_and_type_views() {
        let f = GridFootprint::from_cells(&[
            GridCell::new(AnalyticsType::Diagnostic, Pillar::BuildingInfrastructure),
            GridCell::new(AnalyticsType::Prescriptive, Pillar::BuildingInfrastructure),
        ]);
        assert_eq!(f.pillars(), vec![Pillar::BuildingInfrastructure]);
        assert_eq!(
            f.types(),
            vec![AnalyticsType::Diagnostic, AnalyticsType::Prescriptive]
        );
        assert!(!f.is_multi_pillar());
        assert!(f.is_multi_type());
    }

    #[test]
    fn footprint_render_shape() {
        let f = GridFootprint::single(GridCell::new(
            AnalyticsType::Prescriptive,
            Pillar::Applications,
        ));
        let r = f.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("Prescriptive"));
        assert!(lines[1].contains("[x]"));
        assert!(lines[4].starts_with("Descriptive"));
        assert!(!lines[4].contains("[x]"));
    }

    #[test]
    fn grid_storage_round_trip() {
        let mut g: CapabilityGrid<Vec<u32>> = CapabilityGrid::new();
        let cell = GridCell::new(AnalyticsType::Predictive, Pillar::SystemSoftware);
        g.get_mut(cell).push(7);
        assert_eq!(g.get(cell), &vec![7]);
        assert_eq!(g.iter().count(), 16);
        let counts = g.map(|_, v| v.len());
        assert_eq!(*counts.get(cell), 1);
        let empty_cell = GridCell::new(AnalyticsType::Descriptive, Pillar::Applications);
        assert_eq!(*counts.get(empty_cell), 0);
    }
}
