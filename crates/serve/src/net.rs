//! Readiness-style server transport: one trait, two worlds.
//!
//! [`ServerNet`] is the narrow waist between the serving loop and the
//! operating system. The server only ever asks four questions — "any new
//! connection?", "any bytes to read?", "can I write?", "what time is it?" —
//! and never blocks on any of them. That makes the entire request path
//! drivable from a test at byte granularity:
//!
//! * [`RealNet`] answers with a non-blocking [`std::net::TcpListener`] and
//!   a monotonic wall clock.
//! * [`SimNet`] answers from in-memory byte queues and a **logical clock**
//!   that advances by a fixed cost per I/O operation plus whatever the test
//!   adds with [`SimNet::advance`]. Two runs of the same request schedule
//!   observe identical clocks, so admission decisions (token buckets refill
//!   from the clock) are reproducible down to the individual 429.
//!
//! The split deliberately mirrors `StorageFs` / `SimFs` in
//! `oda-telemetry`'s storage engine: trait-seam at the OS boundary,
//! deterministic twin for tests, identical call sequence in both worlds.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// Opaque identifier of an accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

/// Outcome of a non-blocking read or write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoResult {
    /// `n` bytes were transferred (`n > 0`).
    Ready(usize),
    /// Nothing to transfer right now; retry on a later poll tick.
    WouldBlock,
    /// The peer closed the connection, or the connection does not exist.
    Closed,
}

/// The non-blocking transport the [`crate::server::Server`] runs over.
///
/// All methods must return immediately. Implementations are shared between
/// the server and (for [`SimNet`]) the test acting as the client, hence
/// `&self` + interior mutability.
pub trait ServerNet: Send + Sync {
    /// Accepts at most one pending connection, if any.
    fn poll_accept(&self) -> Option<ConnId>;
    /// Reads available bytes into `buf`.
    fn read(&self, conn: ConnId, buf: &mut [u8]) -> IoResult;
    /// Writes a prefix of `data`, as much as the transport will take.
    fn write(&self, conn: ConnId, data: &[u8]) -> IoResult;
    /// Closes the server side of the connection.
    fn close(&self, conn: ConnId);
    /// Monotonic clock in nanoseconds (logical under [`SimNet`]).
    fn clock_ns(&self) -> u64;
}

/// Logical nanoseconds charged per I/O operation on a [`SimNet`].
///
/// Non-zero so that latency percentiles and token-bucket refill are
/// observable in pure simulation without any test having to sprinkle
/// explicit `advance` calls.
pub const SIM_OP_COST_NS: u64 = 1_000;

#[derive(Default)]
struct SimConn {
    to_server: VecDeque<u8>,
    to_client: VecDeque<u8>,
    client_closed: bool,
    server_closed: bool,
}

#[derive(Default)]
struct SimState {
    next_conn: u64,
    pending_accept: VecDeque<ConnId>,
    conns: BTreeMap<u64, SimConn>,
    clock_ns: u64,
}

/// Deterministic in-memory [`ServerNet`] twin for tests and benchmarks.
///
/// The test plays the client: [`SimNet::connect`] opens a connection,
/// [`SimNet::client_send`] / [`SimNet::client_recv`] move bytes, and
/// [`SimNet::advance`] moves the logical clock (e.g. to refill token
/// buckets). Writes from the server are split into chunks of at most
/// `write_chunk` bytes so partial-write handling is exercised on every
/// response, not just under rare kernel buffer pressure.
pub struct SimNet {
    state: Mutex<SimState>,
    write_chunk: usize,
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNet {
    /// Creates a simulated network with a 1 KiB write chunk.
    pub fn new() -> Self {
        SimNet {
            state: Mutex::new(SimState::default()),
            write_chunk: 1024,
        }
    }

    /// Caps each server-side write at `bytes` (min 1), to force partial
    /// writes at a chosen granularity.
    pub fn with_write_chunk(mut self, bytes: usize) -> Self {
        self.write_chunk = bytes.max(1);
        self
    }

    /// Opens a client connection; the server sees it on its next
    /// `poll_accept`.
    pub fn connect(&self) -> ConnId {
        let mut st = self.state.lock();
        let id = st.next_conn;
        st.next_conn += 1;
        st.conns.insert(id, SimConn::default());
        st.pending_accept.push_back(ConnId(id));
        ConnId(id)
    }

    /// Queues `data` for the server to read.
    pub fn client_send(&self, conn: ConnId, data: &[u8]) {
        let mut st = self.state.lock();
        if let Some(c) = st.conns.get_mut(&conn.0) {
            if !c.client_closed && !c.server_closed {
                c.to_server.extend(data.iter().copied());
            }
        }
    }

    /// Drains everything the server has written so far.
    pub fn client_recv(&self, conn: ConnId) -> Vec<u8> {
        let mut st = self.state.lock();
        match st.conns.get_mut(&conn.0) {
            Some(c) => c.to_client.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Half-closes the client side: the server drains remaining bytes and
    /// then reads `Closed`.
    pub fn client_close(&self, conn: ConnId) {
        let mut st = self.state.lock();
        if let Some(c) = st.conns.get_mut(&conn.0) {
            c.client_closed = true;
        }
    }

    /// `true` once the server has closed its side of `conn`.
    pub fn server_closed(&self, conn: ConnId) -> bool {
        let st = self.state.lock();
        st.conns
            .get(&conn.0)
            .map(|c| c.server_closed)
            .unwrap_or(true)
    }

    /// Advances the logical clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.state.lock().clock_ns += ns;
    }

    /// Current logical time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.state.lock().clock_ns
    }
}

impl ServerNet for SimNet {
    fn poll_accept(&self) -> Option<ConnId> {
        let mut st = self.state.lock();
        st.clock_ns += SIM_OP_COST_NS;
        st.pending_accept.pop_front()
    }

    fn read(&self, conn: ConnId, buf: &mut [u8]) -> IoResult {
        let mut st = self.state.lock();
        st.clock_ns += SIM_OP_COST_NS;
        let Some(c) = st.conns.get_mut(&conn.0) else {
            return IoResult::Closed;
        };
        if c.server_closed {
            return IoResult::Closed;
        }
        let mut n = 0;
        for slot in buf.iter_mut() {
            match c.to_server.pop_front() {
                Some(b) => {
                    *slot = b;
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            IoResult::Ready(n)
        } else if c.client_closed {
            IoResult::Closed
        } else {
            IoResult::WouldBlock
        }
    }

    fn write(&self, conn: ConnId, data: &[u8]) -> IoResult {
        let chunk = self.write_chunk;
        let mut st = self.state.lock();
        st.clock_ns += SIM_OP_COST_NS;
        let Some(c) = st.conns.get_mut(&conn.0) else {
            return IoResult::Closed;
        };
        if c.server_closed || c.client_closed {
            return IoResult::Closed;
        }
        if data.is_empty() {
            return IoResult::WouldBlock;
        }
        let n = data.len().min(chunk);
        c.to_client.extend(data.iter().take(n).copied());
        IoResult::Ready(n)
    }

    fn close(&self, conn: ConnId) {
        let mut st = self.state.lock();
        if let Some(c) = st.conns.get_mut(&conn.0) {
            c.server_closed = true;
            c.to_server.clear();
        }
    }

    fn clock_ns(&self) -> u64 {
        self.state.lock().clock_ns
    }
}

struct RealState {
    next_conn: u64,
    conns: BTreeMap<u64, std::net::TcpStream>,
}

/// [`ServerNet`] over a non-blocking [`std::net::TcpListener`].
///
/// Dependency-free: readiness is approximated by polling (`accept`/`read`/
/// `write` all return `WouldBlock` instead of blocking), which is exactly
/// the contract the serving loop is written against. A production
/// deployment would drive [`crate::server::Server::poll`] from a small
/// sleep loop or an external epoll wrapper; the endpoint logic is
/// identical either way.
pub struct RealNet {
    listener: std::net::TcpListener,
    state: Mutex<RealState>,
    start: std::time::Instant,
}

impl RealNet {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) in non-blocking mode.
    pub fn bind(addr: &str) -> std::io::Result<RealNet> {
        let listener = std::net::TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(RealNet {
            listener,
            state: Mutex::new(RealState {
                next_conn: 0,
                conns: BTreeMap::new(),
            }),
            start: std::time::Instant::now(),
        })
    }

    /// The bound socket address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl ServerNet for RealNet {
    fn poll_accept(&self) -> Option<ConnId> {
        match self.listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    return None;
                }
                let mut st = self.state.lock();
                let id = st.next_conn;
                st.next_conn += 1;
                st.conns.insert(id, stream);
                Some(ConnId(id))
            }
            Err(_) => None,
        }
    }

    fn read(&self, conn: ConnId, buf: &mut [u8]) -> IoResult {
        use std::io::Read as _;
        let mut st = self.state.lock();
        let Some(stream) = st.conns.get_mut(&conn.0) else {
            return IoResult::Closed;
        };
        match stream.read(buf) {
            Ok(0) => IoResult::Closed,
            Ok(n) => IoResult::Ready(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => IoResult::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => IoResult::WouldBlock,
            Err(_) => IoResult::Closed,
        }
    }

    fn write(&self, conn: ConnId, data: &[u8]) -> IoResult {
        use std::io::Write as _;
        let mut st = self.state.lock();
        let Some(stream) = st.conns.get_mut(&conn.0) else {
            return IoResult::Closed;
        };
        match stream.write(data) {
            Ok(0) => IoResult::Closed,
            Ok(n) => IoResult::Ready(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => IoResult::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => IoResult::WouldBlock,
            Err(_) => IoResult::Closed,
        }
    }

    fn close(&self, conn: ConnId) {
        let mut st = self.state.lock();
        st.conns.remove(&conn.0);
    }

    fn clock_ns(&self) -> u64 {
        let e = self.start.elapsed();
        e.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(e.subsec_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simnet_round_trip_and_close() {
        let net = SimNet::new();
        let conn = net.connect();
        assert_eq!(net.poll_accept(), Some(conn));
        assert_eq!(net.poll_accept(), None);

        net.client_send(conn, b"hello");
        let mut buf = [0u8; 3];
        assert_eq!(net.read(conn, &mut buf), IoResult::Ready(3));
        assert_eq!(&buf, b"hel");
        assert_eq!(net.read(conn, &mut buf), IoResult::Ready(2));
        assert_eq!(&buf[..2], b"lo");
        assert_eq!(net.read(conn, &mut buf), IoResult::WouldBlock);

        assert_eq!(net.write(conn, b"world"), IoResult::Ready(5));
        assert_eq!(net.client_recv(conn), b"world");

        net.client_close(conn);
        assert_eq!(net.read(conn, &mut buf), IoResult::Closed);
        net.close(conn);
        assert!(net.server_closed(conn));
    }

    #[test]
    fn simnet_partial_writes_respect_chunk() {
        let net = SimNet::new().with_write_chunk(4);
        let conn = net.connect();
        net.poll_accept();
        assert_eq!(net.write(conn, b"0123456789"), IoResult::Ready(4));
        assert_eq!(net.write(conn, b"456789"), IoResult::Ready(4));
        assert_eq!(net.write(conn, b"89"), IoResult::Ready(2));
        assert_eq!(net.client_recv(conn), b"0123456789");
    }

    #[test]
    fn simnet_clock_is_logical_and_deterministic() {
        let run = || {
            let net = SimNet::new();
            let conn = net.connect();
            net.poll_accept();
            net.client_send(conn, b"x");
            let mut buf = [0u8; 8];
            net.read(conn, &mut buf);
            net.write(conn, b"y");
            net.advance(5_000);
            net.clock_ns()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a, 3 * SIM_OP_COST_NS + 5_000);
    }

    #[test]
    fn realnet_accept_read_write() {
        use std::io::{Read as _, Write as _};
        let net = RealNet::bind("127.0.0.1:0").expect("bind");
        let addr = net.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");

        let conn = loop {
            if let Some(c) = net.poll_accept() {
                break c;
            }
        };
        client.write_all(b"ping").expect("send");
        let mut buf = [0u8; 16];
        let n = loop {
            match net.read(conn, &mut buf) {
                IoResult::Ready(n) => break n,
                IoResult::WouldBlock => continue,
                IoResult::Closed => panic!("unexpected close"),
            }
        };
        assert_eq!(&buf[..n], b"ping");

        assert!(matches!(net.write(conn, b"pong"), IoResult::Ready(4)));
        let mut reply = [0u8; 4];
        client.read_exact(&mut reply).expect("recv");
        assert_eq!(&reply, b"pong");
        net.close(conn);
        assert!(net.clock_ns() > 0);
    }
}
