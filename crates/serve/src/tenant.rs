//! Per-tenant admission control: token-bucket rate limiting plus
//! concurrent-query caps, with shed accounting that reconciles exactly.
//!
//! Every admission decision is a pure function of the quota, the tenant's
//! bucket state, and the clock passed in by the caller — under
//! [`crate::net::SimNet`]'s logical clock the full sequence of
//! admit/shed decisions is deterministic and replayable.
//!
//! The accounting invariant (asserted by tests and the serving bench):
//!
//! ```text
//! offered == admitted + shed_rate_limited + shed_saturated
//! ```
//!
//! holds per tenant at every instant, and `in_flight` is always
//! `admitted - completed`.

use crate::config::ServingConfig;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Outcome of an admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request may proceed; the caller must pair this with exactly one
    /// [`AdmissionController::release`] when the response is fully flushed.
    Admitted,
    /// The tenant's token bucket is empty — HTTP `429` with the given
    /// `Retry-After` hint (milliseconds until one token refills).
    RateLimited {
        /// Milliseconds until the bucket next holds a whole token.
        retry_after_ms: u64,
    },
    /// The tenant is at its concurrency cap — HTTP `503`. Retrying is
    /// pointless until an in-flight request drains.
    Saturated,
}

/// Monotone per-tenant admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Admission attempts (every query request, admitted or not).
    pub offered: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed because the token bucket was empty (`429`).
    pub shed_rate_limited: u64,
    /// Requests shed at the concurrency cap (`503`).
    pub shed_saturated: u64,
    /// Admitted requests whose response has fully flushed.
    pub completed: u64,
}

impl TenantCounters {
    /// `true` iff `offered == admitted + shed_*` (the ledger balances).
    pub fn reconciles(&self) -> bool {
        self.offered == self.admitted + self.shed_rate_limited + self.shed_saturated
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.admitted.saturating_sub(self.completed)
    }
}

struct TenantState {
    tokens: f64,
    last_refill_ns: u64,
    in_flight: u32,
    subscriptions: u32,
    counters: TenantCounters,
}

/// Ceiling on the `Retry-After` hint. A zero-rate quota (tenant fully
/// blocked) has no meaningful refill time — the uncapped arithmetic used
/// to yield `u64::MAX` ms, which `server.rs` then rendered as a
/// 584-million-year `retry-after` header. Clients treat anything at or
/// above this ceiling as "poll again in a minute".
pub const RETRY_AFTER_CEILING_MS: u64 = 60_000;

/// Shared admission state for all tenants of one server.
pub struct AdmissionController {
    config: ServingConfig,
    tenants: Mutex<BTreeMap<String, TenantState>>,
}

impl AdmissionController {
    /// Creates a controller enforcing the quotas in `config`.
    pub fn new(config: ServingConfig) -> Self {
        AdmissionController {
            config,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    fn with_tenant<R>(
        &self,
        tenant: &str,
        now_ns: u64,
        f: impl FnOnce(&mut TenantState, &ServingConfig) -> R,
    ) -> R {
        let mut tenants = self.tenants.lock();
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                tokens: self.config.quota_for(tenant).burst,
                last_refill_ns: now_ns,
                in_flight: 0,
                subscriptions: 0,
                counters: TenantCounters::default(),
            });
        f(state, &self.config)
    }

    /// Attempts to admit one query for `tenant` at logical time `now_ns`.
    pub fn try_admit(&self, tenant: &str, now_ns: u64) -> Admission {
        self.with_tenant(tenant, now_ns, |state, config| {
            let quota = config.quota_for(tenant);
            // Refill from elapsed clock time, clamped at the burst depth.
            let elapsed_ns = now_ns.saturating_sub(state.last_refill_ns);
            state.last_refill_ns = now_ns;
            state.tokens =
                (state.tokens + elapsed_ns as f64 * 1e-9 * quota.rate_per_sec).min(quota.burst);

            state.counters.offered += 1;
            if state.tokens < 1.0 {
                state.counters.shed_rate_limited += 1;
                let deficit = 1.0 - state.tokens;
                // A non-positive rate never refills; any computed hint is
                // capped so the header stays actionable (see
                // [`RETRY_AFTER_CEILING_MS`]).
                let retry_after_ms = if quota.rate_per_sec > 0.0 {
                    (deficit / quota.rate_per_sec * 1000.0).ceil() as u64
                } else {
                    RETRY_AFTER_CEILING_MS
                };
                return Admission::RateLimited {
                    retry_after_ms: retry_after_ms.clamp(1, RETRY_AFTER_CEILING_MS),
                };
            }
            if state.in_flight >= quota.max_concurrent {
                state.counters.shed_saturated += 1;
                return Admission::Saturated;
            }
            state.tokens -= 1.0;
            state.in_flight += 1;
            state.counters.admitted += 1;
            Admission::Admitted
        })
    }

    /// Completes one admitted query (response fully flushed or connection
    /// torn down). Must be called exactly once per [`Admission::Admitted`].
    ///
    /// A release for a tenant that was never admitted (unknown name, or
    /// nothing in flight) is ignored: fabricating state here used to
    /// mint a `TenantState` with `completed > admitted`, silently
    /// breaking the ledger invariant the module contract promises.
    pub fn release(&self, tenant: &str, _now_ns: u64) {
        let mut tenants = self.tenants.lock();
        let Some(state) = tenants.get_mut(tenant) else {
            return;
        };
        if state.in_flight == 0 {
            return;
        }
        state.in_flight -= 1;
        state.counters.completed += 1;
    }

    /// Attempts to open one streaming subscription for `tenant`.
    pub fn try_subscribe(&self, tenant: &str, now_ns: u64) -> bool {
        self.with_tenant(tenant, now_ns, |state, config| {
            if state.subscriptions >= config.quota_for(tenant).max_subscriptions {
                false
            } else {
                state.subscriptions += 1;
                true
            }
        })
    }

    /// Closes one streaming subscription for `tenant`. Ignored for a
    /// tenant that was never seen (no state is fabricated).
    pub fn unsubscribe(&self, tenant: &str, _now_ns: u64) {
        let mut tenants = self.tenants.lock();
        if let Some(state) = tenants.get_mut(tenant) {
            state.subscriptions = state.subscriptions.saturating_sub(1);
        }
    }

    /// Current counters for `tenant` (zeros if never seen).
    pub fn counters(&self, tenant: &str) -> TenantCounters {
        self.tenants
            .lock()
            .get(tenant)
            .map(|s| s.counters)
            .unwrap_or_default()
    }

    /// Counters for every tenant ever offered, ordered by tenant name.
    pub fn all_counters(&self) -> Vec<(String, TenantCounters)> {
        self.tenants
            .lock()
            .iter()
            .map(|(t, s)| (t.clone(), s.counters))
            .collect()
    }

    /// Sum of all tenants' counters.
    pub fn totals(&self) -> TenantCounters {
        let mut total = TenantCounters::default();
        for (_, c) in self.all_counters() {
            total.offered += c.offered;
            total.admitted += c.admitted;
            total.shed_rate_limited += c.shed_rate_limited;
            total.shed_saturated += c.shed_saturated;
            total.completed += c.completed;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantQuota;

    fn controller(rate: f64, burst: f64, max_concurrent: u32) -> AdmissionController {
        AdmissionController::new(ServingConfig {
            default_quota: TenantQuota {
                rate_per_sec: rate,
                burst,
                max_concurrent,
                max_subscriptions: 2,
            },
            ..ServingConfig::default()
        })
    }

    #[test]
    fn burst_then_rate_limit_then_refill() {
        let ac = controller(10.0, 3.0, 100);
        for _ in 0..3 {
            assert_eq!(ac.try_admit("t", 0), Admission::Admitted);
            ac.release("t", 0);
        }
        let Admission::RateLimited { retry_after_ms } = ac.try_admit("t", 0) else {
            panic!("expected rate limit");
        };
        // 1 token at 10/s is 100 ms away.
        assert_eq!(retry_after_ms, 100);
        // After 100 ms of clock, exactly one more token is available.
        assert_eq!(ac.try_admit("t", 100_000_000), Admission::Admitted);
        assert!(matches!(
            ac.try_admit("t", 100_000_000),
            Admission::RateLimited { .. }
        ));
    }

    #[test]
    fn concurrency_cap_sheds_saturated_until_release() {
        let ac = controller(1e9, 1e9, 2);
        assert_eq!(ac.try_admit("t", 0), Admission::Admitted);
        assert_eq!(ac.try_admit("t", 0), Admission::Admitted);
        assert_eq!(ac.try_admit("t", 0), Admission::Saturated);
        ac.release("t", 0);
        assert_eq!(ac.try_admit("t", 0), Admission::Admitted);
        let c = ac.counters("t");
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.shed_saturated, 1);
    }

    #[test]
    fn counters_reconcile_and_tenants_are_isolated() {
        let ac = controller(10.0, 2.0, 1);
        let mut now = 0u64;
        for i in 0..50 {
            let t = if i % 2 == 0 { "a" } else { "b" };
            if ac.try_admit(t, now) == Admission::Admitted && i % 3 == 0 {
                ac.release(t, now);
            }
            now += 10_000_000; // 10 ms
        }
        for t in ["a", "b"] {
            let c = ac.counters(t);
            assert!(c.reconciles(), "{t}: {c:?}");
            assert_eq!(c.offered, 25);
        }
        let total = ac.totals();
        assert!(total.reconciles());
        assert_eq!(total.offered, 50);
    }

    #[test]
    fn admission_sequence_is_deterministic_under_logical_clock() {
        let run = || {
            let ac = controller(25.0, 5.0, 3);
            let mut decisions = Vec::new();
            let mut now = 0u64;
            for i in 0..200u64 {
                decisions.push(ac.try_admit("t", now));
                if i % 4 == 0 {
                    ac.release("t", now);
                }
                now += 7_000_000;
            }
            decisions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_rate_quota_caps_retry_after() {
        // Regression: a zero-rate quota used to yield
        // `retry_after_ms == u64::MAX`, rendered by the HTTP layer into
        // an absurd retry-after header. The hint is now capped.
        let ac = controller(0.0, 0.0, 1);
        let Admission::RateLimited { retry_after_ms } = ac.try_admit("blocked", 0) else {
            panic!("zero-rate tenant must be rate limited");
        };
        assert_eq!(retry_after_ms, RETRY_AFTER_CEILING_MS);
        // A huge-but-finite deficit clamps to the same ceiling.
        let ac = controller(1e-9, 1.0, 1);
        assert_eq!(ac.try_admit("slow", 0), Admission::Admitted);
        ac.release("slow", 0);
        let Admission::RateLimited { retry_after_ms } = ac.try_admit("slow", 0) else {
            panic!("drained tenant must be rate limited");
        };
        assert!(retry_after_ms <= RETRY_AFTER_CEILING_MS, "{retry_after_ms}");
    }

    #[test]
    fn release_of_never_admitted_tenant_keeps_ledger_intact() {
        // Regression: releasing an unknown tenant used to fabricate a
        // TenantState with completed=1, admitted=0, breaking
        // `completed <= admitted` and polluting all_counters().
        let ac = controller(10.0, 2.0, 1);
        ac.release("ghost", 0);
        assert_eq!(ac.counters("ghost"), TenantCounters::default());
        assert!(ac.all_counters().is_empty(), "no state may be fabricated");

        // Double-release of a real tenant must not over-count completion.
        assert_eq!(ac.try_admit("t", 0), Admission::Admitted);
        ac.release("t", 0);
        ac.release("t", 0);
        let c = ac.counters("t");
        assert!(c.reconciles(), "{c:?}");
        assert_eq!(c.completed, 1);
        assert!(c.completed <= c.admitted, "{c:?}");
        assert_eq!(c.in_flight(), 0);

        // Unsubscribe is equally non-fabricating.
        ac.unsubscribe("phantom", 0);
        assert!(ac.all_counters().iter().all(|(t, _)| t != "phantom"));
    }

    #[test]
    fn subscription_quota() {
        let ac = controller(1.0, 1.0, 1);
        assert!(ac.try_subscribe("t", 0));
        assert!(ac.try_subscribe("t", 0));
        assert!(!ac.try_subscribe("t", 0));
        ac.unsubscribe("t", 0);
        assert!(ac.try_subscribe("t", 0));
    }
}
