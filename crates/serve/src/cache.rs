//! Version-validated query-result cache.
//!
//! Entries are keyed on the **canonical query wire form**
//! ([`oda_telemetry::query::Query::to_json`] of the parsed request), so two
//! syntactically different requests for the same query share one entry.
//!
//! Correctness contract — *a hit is bit-identical to re-execution*:
//!
//! * Each entry records the sensor ids the query resolved to and each
//!   sensor's store `version` (a monotone counter the store bumps on every
//!   accepted write, i.e. exactly when rollup tiers fold).
//! * On lookup the caller passes freshly resolved ids and versions,
//!   snapshotted **before** any execution. The entry is served only if
//!   both vectors match exactly; any write to any involved sensor — or a
//!   pattern now matching a different sensor set — since the entry was
//!   stored forces a miss and evicts the stale entry.
//! * Versions are snapshotted before execution on insert too, so a write
//!   racing an execution can only make a future lookup *conservatively*
//!   miss (the entry was stored under the older version), never serve
//!   stale bytes.
//!
//! Eviction is LRU by lookup sequence number, so the cache is fully
//! deterministic given the request sequence — no clocks, no randomness.

use oda_telemetry::prelude::SensorId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Monotone cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that found nothing usable (absent or invalidated).
    pub misses: u64,
    /// Entries discarded because sensor versions (or the resolved sensor
    /// set) changed underneath them. Subset of `misses`.
    pub invalidated: u64,
    /// Entries stored.
    pub inserted: u64,
    /// Entries evicted by LRU pressure.
    pub evicted: u64,
}

impl CacheStats {
    /// Hit rate over all lookups, `0.0` if none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    body: Arc<Vec<u8>>,
    digest: u64,
    sensors: Vec<SensorId>,
    versions: Vec<u64>,
    last_used: u64,
}

#[derive(Default)]
struct CacheState {
    map: BTreeMap<String, Entry>,
    seq: u64,
    stats: CacheStats,
}

/// LRU cache of rendered query results, validated by store versions.
pub struct QueryCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` entries (`0` disables).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Looks up `key`, validating against the caller's freshly snapshotted
    /// `sensors` and `versions`. Returns the rendered body and its digest
    /// on a hit.
    pub fn lookup(
        &self,
        key: &str,
        sensors: &[SensorId],
        versions: &[u64],
    ) -> Option<(Arc<Vec<u8>>, u64)> {
        let mut st = self.state.lock();
        st.seq += 1;
        let seq = st.seq;
        let hit = match st.map.get_mut(key) {
            Some(entry) if entry.sensors == sensors && entry.versions == versions => {
                entry.last_used = seq;
                Some((Arc::clone(&entry.body), entry.digest))
            }
            Some(_) => None,
            None => {
                st.stats.misses += 1;
                return None;
            }
        };
        match hit {
            Some(found) => {
                st.stats.hits += 1;
                Some(found)
            }
            None => {
                st.map.remove(key);
                st.stats.invalidated += 1;
                st.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly executed result under `key`. `sensors`/`versions`
    /// must have been snapshotted *before* the execution that produced
    /// `body`.
    pub fn insert(
        &self,
        key: String,
        sensors: Vec<SensorId>,
        versions: Vec<u64>,
        body: Arc<Vec<u8>>,
        digest: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut st = self.state.lock();
        st.seq += 1;
        let seq = st.seq;
        st.map.insert(
            key,
            Entry {
                body,
                digest,
                sensors,
                versions,
                last_used: seq,
            },
        );
        st.stats.inserted += 1;
        while st.map.len() > self.capacity {
            let oldest = st
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    st.map.remove(&k);
                    st.stats.evicted += 1;
                }
                None => break,
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are preserved).
    pub fn clear(&self) {
        self.state.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<SensorId> {
        raw.iter().map(|&r| SensorId(r)).collect()
    }

    #[test]
    fn hit_requires_matching_versions() {
        let cache = QueryCache::new(8);
        let body = Arc::new(b"{\"x\":1}".to_vec());
        cache.insert("q1".into(), ids(&[0, 1]), vec![5, 7], Arc::clone(&body), 42);

        let hit = cache.lookup("q1", &ids(&[0, 1]), &[5, 7]);
        assert_eq!(hit.map(|(b, d)| (b.to_vec(), d)), Some((body.to_vec(), 42)));

        // A bumped version invalidates and evicts.
        assert!(cache.lookup("q1", &ids(&[0, 1]), &[5, 8]).is_none());
        assert_eq!(cache.stats().invalidated, 1);
        // Entry is gone even for the old versions now.
        assert!(cache.lookup("q1", &ids(&[0, 1]), &[5, 7]).is_none());
    }

    #[test]
    fn hit_requires_matching_sensor_set() {
        let cache = QueryCache::new(8);
        cache.insert("p".into(), ids(&[0]), vec![1], Arc::new(b"a".to_vec()), 1);
        // Pattern now resolves to an extra sensor: must miss.
        assert!(cache.lookup("p", &ids(&[0, 3]), &[1, 0]).is_none());
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn lru_eviction_is_by_lookup_recency() {
        let cache = QueryCache::new(2);
        cache.insert("a".into(), ids(&[0]), vec![0], Arc::new(b"a".to_vec()), 0);
        cache.insert("b".into(), ids(&[0]), vec![0], Arc::new(b"b".to_vec()), 0);
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup("a", &ids(&[0]), &[0]).is_some());
        cache.insert("c".into(), ids(&[0]), vec![0], Arc::new(b"c".to_vec()), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a", &ids(&[0]), &[0]).is_some());
        assert!(cache.lookup("c", &ids(&[0]), &[0]).is_some());
        assert!(cache.lookup("b", &ids(&[0]), &[0]).is_none());
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = QueryCache::new(0);
        cache.insert("a".into(), ids(&[0]), vec![0], Arc::new(b"a".to_vec()), 0);
        assert!(cache.is_empty());
        assert!(cache.lookup("a", &ids(&[0]), &[0]).is_none());
    }

    #[test]
    fn hit_rate_accounting() {
        let cache = QueryCache::new(4);
        cache.insert("a".into(), ids(&[0]), vec![0], Arc::new(b"a".to_vec()), 0);
        for _ in 0..3 {
            cache.lookup("a", &ids(&[0]), &[0]);
        }
        cache.lookup("missing", &ids(&[0]), &[0]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
