//! Serving-layer configuration: per-tenant quotas and global limits.

/// Admission quota for one tenant.
///
/// Rate limiting is a token bucket: `burst` tokens deep, refilled at
/// `rate_per_sec` tokens per second of (logical or wall) clock time, one
/// token per admitted query. Concurrency is a separate hard cap on
/// requests currently in flight — *in flight* means admitted and not yet
/// fully flushed to the client, so slow readers hold their slot and
/// saturation (`503`) reflects real downstream pressure, not just CPU.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Sustained admission rate, queries per second.
    pub rate_per_sec: f64,
    /// Token-bucket depth (instantaneous burst allowance).
    pub burst: f64,
    /// Maximum queries in flight at once.
    pub max_concurrent: u32,
    /// Maximum concurrent streaming subscriptions.
    pub max_subscriptions: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            rate_per_sec: 100.0,
            burst: 200.0,
            max_concurrent: 8,
            max_subscriptions: 16,
        }
    }
}

impl TenantQuota {
    /// A quota that admits everything; useful for internal tenants.
    pub fn unlimited() -> Self {
        TenantQuota {
            rate_per_sec: 1e12,
            burst: 1e12,
            max_concurrent: u32::MAX,
            max_subscriptions: u32::MAX,
        }
    }
}

/// Configuration for a [`crate::server::Server`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Quota applied to tenants without an explicit entry.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides, matched by exact `X-Tenant` value.
    pub tenant_quotas: Vec<(String, TenantQuota)>,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Per-subscriber fan-out buffer, in frames; oldest frames are shed
    /// when a slow consumer falls this far behind.
    pub sub_buffer_frames: usize,
    /// Maximum accepted request size (head + body) in bytes.
    pub max_request_bytes: usize,
    /// Maximum simultaneously open connections; beyond this, new
    /// connections are closed immediately.
    pub max_connections: usize,
    /// Read granularity of the poll loop, bytes.
    pub read_chunk: usize,
    /// Per-connection outbound high-water mark, bytes. Streaming frames
    /// are not copied into a connection whose backlog exceeds this.
    pub out_high_water: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            default_quota: TenantQuota::default(),
            tenant_quotas: Vec::new(),
            cache_capacity: 1024,
            sub_buffer_frames: 256,
            max_request_bytes: 64 * 1024,
            max_connections: 4096,
            read_chunk: 4096,
            out_high_water: 256 * 1024,
        }
    }
}

impl ServingConfig {
    /// Registers (or replaces) a per-tenant quota override.
    pub fn with_tenant(mut self, tenant: impl Into<String>, quota: TenantQuota) -> Self {
        let tenant = tenant.into();
        self.tenant_quotas.retain(|(t, _)| *t != tenant);
        self.tenant_quotas.push((tenant, quota));
        self
    }

    /// The quota governing `tenant`.
    pub fn quota_for(&self, tenant: &str) -> &TenantQuota {
        self.tenant_quotas
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, q)| q)
            .unwrap_or(&self.default_quota)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_lookup_falls_back_to_default() {
        let cfg = ServingConfig::default().with_tenant(
            "dashboard",
            TenantQuota {
                rate_per_sec: 5.0,
                ..TenantQuota::default()
            },
        );
        assert!((cfg.quota_for("dashboard").rate_per_sec - 5.0).abs() < 1e-12);
        assert!((cfg.quota_for("unknown").rate_per_sec - 100.0).abs() < 1e-12);
    }

    #[test]
    fn with_tenant_replaces_existing_entry() {
        let cfg = ServingConfig::default()
            .with_tenant(
                "a",
                TenantQuota {
                    max_concurrent: 1,
                    ..TenantQuota::default()
                },
            )
            .with_tenant(
                "a",
                TenantQuota {
                    max_concurrent: 9,
                    ..TenantQuota::default()
                },
            );
        assert_eq!(cfg.tenant_quotas.len(), 1);
        assert_eq!(cfg.quota_for("a").max_concurrent, 9);
    }
}
