//! The serving loop: endpoints, admission, cache, fan-out, backpressure.
//!
//! [`Server`] is a single-threaded readiness loop over a
//! [`crate::net::ServerNet`]. One [`Server::poll`] tick accepts pending
//! connections, reads and parses whatever bytes have arrived (pipelined
//! requests included), dispatches complete requests, pumps the fan-out
//! hub, and flushes outbound buffers as far as the transport allows —
//! never blocking on any of it. Driving the same tick function from a
//! test over [`crate::net::SimNet`] and from production over
//! [`crate::net::RealNet`] exercises identical logic.
//!
//! ## Endpoints
//!
//! | Method | Path | Metered | Description |
//! |--------|------|---------|-------------|
//! | GET  | `/healthz`          | no  | liveness probe |
//! | GET  | `/metrics`          | no  | Prometheus text exposition |
//! | GET  | `/api/v1/sensors`   | no  | sensor inventory (`?pattern=`) |
//! | POST | `/api/v1/query`     | yes | execute a canonical-wire [`Query`] |
//! | GET  | `/api/v1/query`     | yes | same, query in `?q=` (urlencoded) |
//! | GET  | `/api/v1/subscribe` | sub-quota | NDJSON live stream (`?pattern=`) |
//! | GET  | `/api/v1/tenants`   | no  | per-tenant admission counters |
//! | GET  | `/api/v1/stats`     | no  | server / cache / fan-out counters |
//!
//! *Metered* endpoints pass through the [`AdmissionController`] under the
//! tenant named by the `X-Tenant` header (`"anonymous"` when absent):
//! an empty token bucket is `429` with a `Retry-After` hint, a full
//! concurrency cap is `503`. A query's concurrency slot is held until its
//! response has **fully flushed** — a slow reader holds its slot, so
//! saturation reflects real downstream pressure.
//!
//! Query responses carry `X-Cache: hit|miss` and `X-Result-Digest` (the
//! [`QueryResult::digest`] of the rendered result), so a client — or the
//! serving bench's exit gate — can verify the cache's bit-equality
//! contract externally.

use crate::cache::{CacheStats, QueryCache};
use crate::config::ServingConfig;
use crate::fanout::{FanoutHub, FanoutStats};
use crate::http::{error_body, parse_request, response, streaming_head, HttpRequest, ParseOutcome};
use crate::net::{ConnId, IoResult, ServerNet};
use crate::tenant::{Admission, AdmissionController, TenantCounters};
use oda_telemetry::bus::TelemetryBus;
use oda_telemetry::cluster::ClusterCoordinator;
use oda_telemetry::metrics::MetricsRegistry;
use oda_telemetry::pattern::SensorPattern;
use oda_telemetry::query::{Query, QueryEngine, QueryResult};
use oda_telemetry::sensor::SensorRegistry;
use oda_telemetry::store::TimeSeriesStore;
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tenant charged when a request carries no `X-Tenant` header.
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// Monotone whole-server counters (admission, cache and fan-out counters
/// live on their own subsystems; see [`Server::admission`],
/// [`Server::cache_stats`], [`Server::fanout_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections refused because `max_connections` was reached.
    pub connections_rejected: u64,
    /// Connections fully torn down.
    pub connections_closed: u64,
    /// Complete HTTP requests dispatched.
    pub requests_total: u64,
    /// Responses with a 2xx status.
    pub responses_2xx: u64,
    /// Responses with a 4xx status (including every `429`).
    pub responses_4xx: u64,
    /// Responses with a 5xx status (including every `503`).
    pub responses_5xx: u64,
    /// Bytes successfully handed to the transport.
    pub bytes_written: u64,
    /// Streaming subscriptions opened.
    pub subscriptions_opened: u64,
}

/// One tracked connection.
struct Conn {
    id: ConnId,
    /// Unparsed inbound bytes.
    in_buf: Vec<u8>,
    /// Outbound bytes not yet accepted by the transport…
    out: Vec<u8>,
    /// …up to this cursor, which have been.
    written: usize,
    /// Admitted tenants whose concurrency slot is released when `out`
    /// fully drains (pipelining can stack several).
    pending_releases: Vec<String>,
    /// `Some(tenant)` once this connection is a live NDJSON stream.
    stream_tenant: Option<String>,
    /// Close the connection once `out` fully drains.
    close_after_flush: bool,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.out.len().saturating_sub(self.written)
    }
}

/// The multi-tenant serving frontend. See the [module docs](self).
pub struct Server<N: ServerNet> {
    net: Arc<N>,
    config: ServingConfig,
    registry: SensorRegistry,
    store: Arc<TimeSeriesStore>,
    bus: Option<Arc<TelemetryBus>>,
    cluster: Option<Arc<ClusterCoordinator>>,
    metrics: Option<MetricsRegistry>,
    admission: AdmissionController,
    cache: QueryCache,
    fanout: FanoutHub,
    conns: BTreeMap<u64, Conn>,
    stats: ServerStats,
}

impl<N: ServerNet> Server<N> {
    /// Creates a server over `net` answering queries from `store`, with
    /// pattern selectors resolved against `registry`. Attach a bus with
    /// [`Server::with_bus`] to enable `/api/v1/subscribe`, and a metrics
    /// registry with [`Server::with_metrics`] to enable `/metrics`.
    pub fn new(
        net: Arc<N>,
        config: ServingConfig,
        registry: SensorRegistry,
        store: Arc<TimeSeriesStore>,
    ) -> Self {
        let cache = QueryCache::new(config.cache_capacity);
        let admission = AdmissionController::new(config.clone());
        let fanout = FanoutHub::new(registry.clone());
        Server {
            net,
            config,
            registry,
            store,
            bus: None,
            cluster: None,
            metrics: None,
            admission,
            cache,
            fanout,
            conns: BTreeMap::new(),
            stats: ServerStats::default(),
        }
    }

    /// Attaches the telemetry bus, enabling live subscription fan-out.
    pub fn with_bus(mut self, bus: Arc<TelemetryBus>) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Attaches a collector cluster: queries fan out over its shards via
    /// scatter-gather (transparently to clients — responses and digests
    /// are bit-identical to single-store execution), result-cache
    /// versioning consults the owning shards, and `/api/v1/stats` gains a
    /// per-shard occupancy section.
    pub fn with_cluster(mut self, cluster: Arc<ClusterCoordinator>) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Attaches a metrics registry: `/metrics` renders it, and the server
    /// mirrors its own request/shed/cache counters into it.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Runs one non-blocking tick: accept, read + dispatch, pump fan-out,
    /// flush. Returns the number of complete requests dispatched, so
    /// callers can sleep when the loop goes idle.
    pub fn poll(&mut self) -> usize {
        self.accept_pending();
        let dispatched = self.read_and_dispatch();
        self.pump_streams();
        self.flush();
        dispatched
    }

    // ----- poll phases -----------------------------------------------------

    fn accept_pending(&mut self) {
        while let Some(id) = self.net.poll_accept() {
            if self.conns.len() >= self.config.max_connections {
                self.net.close(id);
                self.stats.connections_rejected += 1;
                continue;
            }
            self.stats.connections_accepted += 1;
            self.conns.insert(
                id.0,
                Conn {
                    id,
                    in_buf: Vec::new(),
                    out: Vec::new(),
                    written: 0,
                    pending_releases: Vec::new(),
                    stream_tenant: None,
                    close_after_flush: false,
                },
            );
        }
    }

    fn read_and_dispatch(&mut self) -> usize {
        let keys: Vec<u64> = self.conns.keys().copied().collect();
        let mut dispatched = 0;
        for key in keys {
            let Some(conn) = self.conns.get_mut(&key) else {
                continue;
            };
            let id = conn.id;
            // Drain everything the transport has for us right now.
            let mut chunk = vec![0u8; self.config.read_chunk.max(1)];
            let mut peer_closed = false;
            loop {
                match self.net.read(id, &mut chunk) {
                    IoResult::Ready(n) => {
                        conn.in_buf.extend(chunk.get(..n).unwrap_or_default());
                        if conn.in_buf.len() > self.config.max_request_bytes {
                            break;
                        }
                    }
                    IoResult::WouldBlock => break,
                    IoResult::Closed => {
                        peer_closed = true;
                        break;
                    }
                }
            }
            if conn.in_buf.len() > self.config.max_request_bytes {
                self.respond(
                    key,
                    413,
                    "application/json",
                    &[],
                    &error_body("request exceeds max_request_bytes"),
                    true,
                );
                continue;
            }
            // Parse as many pipelined requests as are complete.
            while let Some(conn) = self.conns.get_mut(&key) {
                if conn.close_after_flush || conn.stream_tenant.is_some() {
                    // No further requests on a closing or streaming conn.
                    break;
                }
                match parse_request(&conn.in_buf, self.config.max_request_bytes) {
                    ParseOutcome::Incomplete => break,
                    ParseOutcome::Bad(why) => {
                        let body = error_body(why);
                        self.respond(key, 400, "application/json", &[], &body, true);
                        break;
                    }
                    ParseOutcome::Ready { request, consumed } => {
                        conn.in_buf.drain(..consumed.min(conn.in_buf.len()));
                        dispatched += 1;
                        self.stats.requests_total += 1;
                        self.dispatch(key, &request);
                    }
                }
            }
            if peer_closed {
                self.teardown(key);
            }
        }
        dispatched
    }

    /// Moves buffered fan-out frames into streaming connections that have
    /// room below the outbound high-water mark.
    fn pump_streams(&mut self) {
        self.fanout.pump();
        let keys: Vec<u64> = self.conns.keys().copied().collect();
        for key in keys {
            let Some(conn) = self.conns.get_mut(&key) else {
                continue;
            };
            if conn.stream_tenant.is_none() {
                continue;
            }
            while conn.unflushed() < self.config.out_high_water {
                match self.fanout.next_frame(key) {
                    Some(frame) => conn.out.extend_from_slice(&frame),
                    None => break,
                }
            }
        }
    }

    fn flush(&mut self) {
        let keys: Vec<u64> = self.conns.keys().copied().collect();
        for key in keys {
            let Some(conn) = self.conns.get_mut(&key) else {
                continue;
            };
            let id = conn.id;
            let mut closed = false;
            while conn.unflushed() > 0 {
                let data = conn.out.get(conn.written..).unwrap_or_default();
                match self.net.write(id, data) {
                    IoResult::Ready(n) => {
                        conn.written += n;
                        self.stats.bytes_written += n as u64;
                    }
                    IoResult::WouldBlock => break,
                    IoResult::Closed => {
                        closed = true;
                        break;
                    }
                }
            }
            if closed {
                self.teardown(key);
                continue;
            }
            if conn.unflushed() == 0 {
                conn.out.clear();
                conn.written = 0;
                // Fully flushed: every stacked concurrency slot drains now.
                let now = self.net.clock_ns();
                for tenant in std::mem::take(&mut conn.pending_releases) {
                    self.admission.release(&tenant, now);
                }
                if conn.close_after_flush {
                    self.teardown(key);
                }
            }
        }
    }

    /// Releases every resource a connection holds and forgets it.
    fn teardown(&mut self, key: u64) {
        let Some(conn) = self.conns.remove(&key) else {
            return;
        };
        let now = self.net.clock_ns();
        for tenant in &conn.pending_releases {
            self.admission.release(tenant, now);
        }
        if let Some(tenant) = &conn.stream_tenant {
            self.admission.unsubscribe(tenant, now);
            self.fanout.detach(key);
        }
        self.net.close(conn.id);
        self.stats.connections_closed += 1;
    }

    // ----- dispatch --------------------------------------------------------

    fn dispatch(&mut self, key: u64, request: &HttpRequest) {
        let tenant = request
            .header("x-tenant")
            .unwrap_or(ANONYMOUS_TENANT)
            .to_string();
        self.count_metric(
            "serving_requests_total",
            &[("endpoint", request.path.as_str())],
        );
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                self.respond(
                    key,
                    200,
                    "application/json",
                    &[],
                    b"{\"status\":\"ok\"}",
                    false,
                );
            }
            ("GET", "/metrics") => match &self.metrics {
                Some(metrics) => {
                    let text = metrics.render_prometheus().into_bytes();
                    self.respond(
                        key,
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        &[],
                        &text,
                        false,
                    );
                }
                None => {
                    let body = error_body("no metrics registry attached");
                    self.respond(key, 404, "application/json", &[], &body, false);
                }
            },
            ("GET", "/api/v1/sensors") => self.handle_sensors(key, request),
            ("POST", "/api/v1/query") => {
                let body = String::from_utf8_lossy(&request.body).into_owned();
                self.handle_query(key, &tenant, &body);
            }
            ("GET", "/api/v1/query") => match request.query_param("q") {
                Some(q) => self.handle_query(key, &tenant, &q),
                None => {
                    let body = error_body("missing ?q= query parameter");
                    self.respond(key, 400, "application/json", &[], &body, false);
                }
            },
            ("GET", "/api/v1/subscribe") => self.handle_subscribe(key, &tenant, request),
            ("GET", "/api/v1/tenants") => self.handle_tenants(key),
            ("GET", "/api/v1/stats") => self.handle_stats(key),
            (
                _,
                "/healthz" | "/metrics" | "/api/v1/sensors" | "/api/v1/query" | "/api/v1/subscribe"
                | "/api/v1/tenants" | "/api/v1/stats",
            ) => {
                let body = error_body("method not allowed");
                self.respond(key, 405, "application/json", &[], &body, false);
            }
            _ => {
                let body = error_body("no such endpoint");
                self.respond(key, 404, "application/json", &[], &body, false);
            }
        }
    }

    fn handle_sensors(&mut self, key: u64, request: &HttpRequest) {
        let metas = match request.query_param("pattern") {
            Some(p) => {
                let pattern = SensorPattern::new(&p);
                let mut ids = self.registry.matching(&pattern);
                ids.sort_unstable();
                ids.iter()
                    .filter_map(|id| self.registry.meta(*id))
                    .collect::<Vec<_>>()
            }
            None => self.registry.all(),
        };
        let sensors = Value::Array(
            metas
                .iter()
                .map(|m| {
                    Value::Object(vec![
                        ("id".to_string(), Value::U64(u64::from(m.id.0))),
                        ("name".to_string(), Value::Str(m.name.to_string())),
                        ("kind".to_string(), Value::Str(format!("{:?}", m.kind))),
                        ("unit".to_string(), Value::Str(m.unit.suffix().to_string())),
                    ])
                })
                .collect(),
        );
        let doc = Value::Object(vec![
            ("count".to_string(), Value::U64(metas.len() as u64)),
            ("sensors".to_string(), sensors),
        ]);
        let body = serde_json::to_string(&doc).unwrap_or_default().into_bytes();
        self.respond(key, 200, "application/json", &[], &body, false);
    }

    fn handle_query(&mut self, key: u64, tenant: &str, raw: &str) {
        match self.admission.try_admit(tenant, self.net.clock_ns()) {
            Admission::Admitted => {}
            Admission::RateLimited { retry_after_ms } => {
                self.count_metric("serving_shed_total", &[("kind", "rate_limited")]);
                let retry_s = retry_after_ms.div_ceil(1000).max(1);
                let body = error_body("tenant rate limit exceeded");
                self.respond(
                    key,
                    429,
                    "application/json",
                    &[("retry-after", retry_s.to_string())],
                    &body,
                    false,
                );
                return;
            }
            Admission::Saturated => {
                self.count_metric("serving_shed_total", &[("kind", "saturated")]);
                let body = error_body("tenant concurrency cap reached");
                self.respond(key, 503, "application/json", &[], &body, false);
                return;
            }
        }
        // From here the request holds a concurrency slot; it drains when
        // the response is fully flushed (or the connection dies).
        let (status, headers, body) = self.execute_query(raw);
        let header_refs: Vec<(&str, String)> =
            headers.iter().map(|(n, v)| (*n, v.clone())).collect();
        self.respond(key, status, "application/json", &header_refs, &body, false);
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.pending_releases.push(tenant.to_string());
        } else {
            // Connection vanished while responding: drain the slot now.
            self.admission.release(tenant, self.net.clock_ns());
        }
    }

    /// Parses, admits to cache, executes. Returns (status, headers, body).
    fn execute_query(&mut self, raw: &str) -> (u16, Vec<(&'static str, String)>, Vec<u8>) {
        let query = match Query::from_json(raw) {
            Ok(q) => q,
            Err(e) => return (400, Vec::new(), error_body(&e.to_string())),
        };
        // One wire form: the canonical rendering is the cache key, so any
        // two spellings of the same query share an entry.
        let key = query.to_json();
        // Clustered serving fans resolution, versioning and execution out
        // over the shard set; the merge is deterministic, so cache bodies
        // and digests stay bit-identical to single-store execution.
        let sensors = match &self.cluster {
            Some(cluster) => cluster.resolve(&query),
            None => QueryEngine::new(&self.store)
                .with_registry(self.registry.clone())
                .resolve_sensors(&query),
        };
        // Versions snapshotted BEFORE execution: a concurrent fold can only
        // force a conservative miss later, never a stale hit (cache docs).
        let versions: Vec<u64> = match &self.cluster {
            Some(cluster) => cluster.sensor_versions(&sensors),
            None => sensors
                .iter()
                .map(|s| self.store.sensor_version(*s))
                .collect(),
        };
        if let Some((body, digest)) = self.cache.lookup(&key, &sensors, &versions) {
            self.count_metric("serving_cache_lookup_total", &[("outcome", "hit")]);
            let headers = vec![
                ("x-cache", "hit".to_string()),
                ("x-result-digest", format!("{digest:016x}")),
            ];
            return (200, headers, body.to_vec());
        }
        self.count_metric("serving_cache_lookup_total", &[("outcome", "miss")]);
        let result: QueryResult = match &self.cluster {
            Some(cluster) => cluster.query(query),
            None => query.run(&QueryEngine::new(&self.store).with_registry(self.registry.clone())),
        };
        let digest = result.digest();
        let body = Arc::new(result.to_json().into_bytes());
        self.cache
            .insert(key, sensors, versions, Arc::clone(&body), digest);
        let headers = vec![
            ("x-cache", "miss".to_string()),
            ("x-result-digest", format!("{digest:016x}")),
        ];
        (200, headers, body.to_vec())
    }

    fn handle_subscribe(&mut self, key: u64, tenant: &str, request: &HttpRequest) {
        let Some(bus) = self.bus.clone() else {
            let body = error_body("subscriptions unavailable: no bus attached");
            self.respond(key, 503, "application/json", &[], &body, false);
            return;
        };
        let now = self.net.clock_ns();
        if !self.admission.try_subscribe(tenant, now) {
            self.count_metric("serving_shed_total", &[("kind", "subscription_quota")]);
            let body = error_body("tenant subscription quota reached");
            self.respond(key, 429, "application/json", &[], &body, false);
            return;
        }
        let pattern = request
            .query_param("pattern")
            .unwrap_or_else(|| "/**".to_string());
        if !pattern.starts_with('/') {
            self.admission.unsubscribe(tenant, now);
            let body = error_body("pattern must be an absolute path like /hw/**");
            self.respond(key, 400, "application/json", &[], &body, false);
            return;
        }
        if !self
            .fanout
            .attach(key, &pattern, self.config.sub_buffer_frames, &bus)
        {
            self.admission.unsubscribe(tenant, now);
            let body = error_body("connection already streaming");
            self.respond(key, 400, "application/json", &[], &body, false);
            return;
        }
        self.stats.subscriptions_opened += 1;
        self.stats.responses_2xx += 1;
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.out
                .extend_from_slice(&streaming_head(200, "application/x-ndjson"));
            conn.stream_tenant = Some(tenant.to_string());
        }
    }

    fn handle_tenants(&mut self, key: u64) {
        let tenants = Value::Array(
            self.admission
                .all_counters()
                .iter()
                .map(|(t, c)| tenant_counters_json(t, c))
                .collect(),
        );
        let totals = self.admission.totals();
        let doc = Value::Object(vec![
            ("tenants".to_string(), tenants),
            ("totals".to_string(), tenant_counters_json("*", &totals)),
        ]);
        let body = serde_json::to_string(&doc).unwrap_or_default().into_bytes();
        self.respond(key, 200, "application/json", &[], &body, false);
    }

    fn handle_stats(&mut self, key: u64) {
        let s = self.stats;
        let c = self.cache.stats();
        let f = self.fanout.stats();
        let u = |n: u64| Value::U64(n);
        let mut sections = vec![
            (
                "server".to_string(),
                Value::Object(vec![
                    (
                        "connections_accepted".to_string(),
                        u(s.connections_accepted),
                    ),
                    (
                        "connections_rejected".to_string(),
                        u(s.connections_rejected),
                    ),
                    ("connections_closed".to_string(), u(s.connections_closed)),
                    ("requests_total".to_string(), u(s.requests_total)),
                    ("responses_2xx".to_string(), u(s.responses_2xx)),
                    ("responses_4xx".to_string(), u(s.responses_4xx)),
                    ("responses_5xx".to_string(), u(s.responses_5xx)),
                    ("bytes_written".to_string(), u(s.bytes_written)),
                    (
                        "subscriptions_opened".to_string(),
                        u(s.subscriptions_opened),
                    ),
                ]),
            ),
            (
                "cache".to_string(),
                Value::Object(vec![
                    ("hits".to_string(), u(c.hits)),
                    ("misses".to_string(), u(c.misses)),
                    ("invalidated".to_string(), u(c.invalidated)),
                    ("inserted".to_string(), u(c.inserted)),
                    ("evicted".to_string(), u(c.evicted)),
                    ("hit_rate".to_string(), Value::F64(c.hit_rate())),
                    ("resident".to_string(), u(self.cache.len() as u64)),
                ]),
            ),
            (
                "fanout".to_string(),
                Value::Object(vec![
                    ("clients".to_string(), u(self.fanout.client_count() as u64)),
                    ("batches_in".to_string(), u(f.batches_in)),
                    ("frames_enqueued".to_string(), u(f.frames_enqueued)),
                    ("frames_dequeued".to_string(), u(f.frames_dequeued)),
                    ("frames_shed".to_string(), u(f.frames_shed)),
                ]),
            ),
        ];
        if let Some(cluster) = &self.cluster {
            let shards = Value::Array(
                cluster
                    .occupancy()
                    .iter()
                    .map(|o| {
                        Value::Object(vec![
                            ("shard".to_string(), u(u64::from(o.shard.0))),
                            ("alive".to_string(), Value::Bool(o.alive)),
                            ("sensors_owned".to_string(), u(o.sensors_owned)),
                            ("readings".to_string(), u(o.readings)),
                            ("evicted".to_string(), u(o.evicted)),
                            ("durable_len".to_string(), u(o.durable_len)),
                            ("published".to_string(), u(o.published)),
                        ])
                    })
                    .collect(),
            );
            sections.push((
                "shards".to_string(),
                Value::Object(vec![
                    ("count".to_string(), u(cluster.shard_count() as u64)),
                    ("alive".to_string(), u(cluster.alive_shards().len() as u64)),
                    ("epoch".to_string(), u(cluster.epoch())),
                    ("rebalances".to_string(), u(cluster.rebalances())),
                    ("occupancy".to_string(), shards),
                ]),
            ));
        }
        let doc = Value::Object(sections);
        let body = serde_json::to_string(&doc).unwrap_or_default().into_bytes();
        self.respond(key, 200, "application/json", &[], &body, false);
    }

    // ----- plumbing --------------------------------------------------------

    /// Enqueues a framed response on connection `key` and updates status
    /// counters. `close` marks the connection for close-after-flush.
    fn respond(
        &mut self,
        key: u64,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
        body: &[u8],
        close: bool,
    ) {
        match status / 100 {
            2 => self.stats.responses_2xx += 1,
            4 => self.stats.responses_4xx += 1,
            5 => self.stats.responses_5xx += 1,
            _ => {}
        }
        self.count_metric(
            "serving_responses_total",
            &[("status", status_label(status))],
        );
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.out
                .extend_from_slice(&response(status, content_type, extra_headers, body));
            if close {
                conn.close_after_flush = true;
            }
        }
    }

    fn count_metric(&self, name: &'static str, labels: &[(&str, &str)]) {
        if let Some(metrics) = &self.metrics {
            metrics.counter(name, labels).add(1);
        }
    }

    // ----- accessors -------------------------------------------------------

    /// Whole-server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The admission controller (per-tenant quota counters).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fan-out hub counters.
    pub fn fanout_stats(&self) -> FanoutStats {
        self.fanout.stats()
    }

    /// Currently open connections.
    pub fn open_connections(&self) -> usize {
        self.conns.len()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }
}

fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        413 => "413",
        429 => "429",
        500 => "500",
        503 => "503",
        _ => "other",
    }
}

fn tenant_counters_json(tenant: &str, c: &TenantCounters) -> Value {
    Value::Object(vec![
        ("tenant".to_string(), Value::Str(tenant.to_string())),
        ("offered".to_string(), Value::U64(c.offered)),
        ("admitted".to_string(), Value::U64(c.admitted)),
        (
            "shed_rate_limited".to_string(),
            Value::U64(c.shed_rate_limited),
        ),
        ("shed_saturated".to_string(), Value::U64(c.shed_saturated)),
        ("completed".to_string(), Value::U64(c.completed)),
        ("in_flight".to_string(), Value::U64(c.in_flight())),
        ("reconciles".to_string(), Value::Bool(c.reconciles())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantQuota;
    use crate::net::SimNet;
    use oda_telemetry::prelude::*;
    use oda_telemetry::reading::ReadingBatch;

    struct World {
        net: Arc<SimNet>,
        server: Server<SimNet>,
        bus: Arc<TelemetryBus>,
        sensors: Vec<SensorId>,
    }

    fn world(config: ServingConfig) -> World {
        let registry = SensorRegistry::new();
        let sensors = vec![
            registry.register("/hw/n0/power", SensorKind::Power, Unit::Watts),
            registry.register("/hw/n1/power", SensorKind::Power, Unit::Watts),
            registry.register("/facility/pue", SensorKind::Count, Unit::Dimensionless),
        ];
        let store = Arc::new(TimeSeriesStore::with_capacity(1024));
        let bus = Arc::new(TelemetryBus::with_store(
            registry.clone(),
            Arc::clone(&store),
        ));
        for i in 0..10u64 {
            for &s in &sensors {
                bus.publish(ReadingBatch::single(
                    s,
                    Reading::new(Timestamp::from_millis(100 * i), i as f64 + f64::from(s.0)),
                ));
            }
        }
        let net = Arc::new(SimNet::new());
        let metrics = MetricsRegistry::new();
        let server = Server::new(Arc::clone(&net), config, registry, store)
            .with_bus(Arc::clone(&bus))
            .with_metrics(metrics);
        World {
            net,
            server,
            bus,
            sensors,
        }
    }

    fn request(w: &mut World, raw: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let conn = w.net.connect();
        w.net.client_send(conn, raw.as_bytes());
        // A few ticks: accept+read on the first, flush partial writes after.
        for _ in 0..64 {
            w.server.poll();
        }
        let reply = w.net.client_recv(conn);
        w.net.client_close(conn);
        w.server.poll();
        parse_response(&reply)
    }

    fn parse_response(raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let text = String::from_utf8_lossy(raw);
        let head_end = text.find("\r\n\r\n").expect("complete head");
        let head = &text[..head_end];
        let mut lines = head.split("\r\n");
        let status_line = lines.next().expect("status line");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let headers = lines
            .map(|l| {
                let (n, v) = l.split_once(':').expect("header");
                (n.trim().to_ascii_lowercase(), v.trim().to_string())
            })
            .collect();
        (status, headers, raw[head_end + 4..].to_vec())
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn healthz_and_unknown_route() {
        let mut w = world(ServingConfig::default());
        let (status, _, body) = request(&mut w, "GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"status\":\"ok\"}");
        let (status, _, _) = request(&mut w, "GET /nope HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _, _) = request(&mut w, "DELETE /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
    }

    #[test]
    fn sensors_endpoint_lists_and_filters() {
        let mut w = world(ServingConfig::default());
        let (status, _, body) = request(&mut w, "GET /api/v1/sensors HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&body);
        assert!(text.contains("\"count\":3"), "{text}");
        let (_, _, body) = request(
            &mut w,
            "GET /api/v1/sensors?pattern=%2Ffacility%2F%2A%2A HTTP/1.1\r\n\r\n",
        );
        let text = String::from_utf8_lossy(&body);
        assert!(
            text.contains("\"count\":1") && text.contains("/facility/pue"),
            "{text}"
        );
    }

    #[test]
    fn query_round_trip_cache_hit_is_bit_identical() {
        let mut w = world(ServingConfig::default());
        let q = format!(
            "{{\"selector\":{{\"ids\":[{}]}},\"shape\":{{\"kind\":\"scalars\",\"agg\":\"mean\"}}}}",
            w.sensors[0].0
        );
        let raw = format!(
            "POST /api/v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            q.len(),
            q
        );
        let (status, headers, body1) = request(&mut w, &raw);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-cache"), Some("miss"));
        let digest1 = header(&headers, "x-result-digest")
            .expect("digest")
            .to_string();

        let (status, headers, body2) = request(&mut w, &raw);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-cache"), Some("hit"));
        assert_eq!(header(&headers, "x-result-digest"), Some(digest1.as_str()));
        assert_eq!(body1, body2, "cache hit must be bit-identical");

        // GET with urlencoded q hits the same cache entry (one wire form).
        let urlencoded: String = q.bytes().map(|b| format!("%{b:02X}")).collect();
        let (status, headers, body3) = request(
            &mut w,
            &format!("GET /api/v1/query?q={urlencoded} HTTP/1.1\r\n\r\n"),
        );
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-cache"), Some("hit"));
        assert_eq!(body1, body3);
    }

    #[test]
    fn write_invalidates_cached_entry() {
        let mut w = world(ServingConfig::default());
        let q = format!("{{\"selector\":{{\"ids\":[{}]}}}}", w.sensors[1].0);
        let raw = format!(
            "POST /api/v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            q.len(),
            q
        );
        let (_, headers, _) = request(&mut w, &raw);
        assert_eq!(header(&headers, "x-cache"), Some("miss"));
        let (_, headers, _) = request(&mut w, &raw);
        assert_eq!(header(&headers, "x-cache"), Some("hit"));
        // A write to the involved sensor forces a miss and a fresh body.
        w.bus.publish(ReadingBatch::single(
            w.sensors[1],
            Reading::new(Timestamp::from_millis(10_000), 123.0),
        ));
        let (_, headers, body) = request(&mut w, &raw);
        assert_eq!(header(&headers, "x-cache"), Some("miss"));
        assert!(String::from_utf8_lossy(&body).contains("123.0"));
    }

    #[test]
    fn malformed_query_is_400_not_admitted_forever() {
        let mut w = world(ServingConfig::default());
        let q = "{\"oops\":1}";
        let raw = format!(
            "POST /api/v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            q.len(),
            q
        );
        let (status, _, _) = request(&mut w, &raw);
        assert_eq!(status, 400);
        // The slot still drains: counters reconcile and nothing is stuck.
        let c = w.server.admission().counters(ANONYMOUS_TENANT);
        assert!(c.reconciles());
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn rate_limit_responds_429_with_retry_after() {
        let mut w = world(ServingConfig {
            default_quota: TenantQuota {
                rate_per_sec: 10.0,
                burst: 2.0,
                max_concurrent: 8,
                max_subscriptions: 4,
            },
            ..ServingConfig::default()
        });
        let q = format!("{{\"selector\":{{\"ids\":[{}]}}}}", w.sensors[0].0);
        let raw = format!(
            "POST /api/v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            q.len(),
            q
        );
        let mut codes = Vec::new();
        for _ in 0..4 {
            let (status, headers, _) = request(&mut w, &raw);
            if status == 429 {
                assert!(header(&headers, "retry-after").is_some());
            }
            codes.push(status);
        }
        assert_eq!(codes, vec![200, 200, 429, 429]);
        let c = w.server.admission().counters(ANONYMOUS_TENANT);
        assert!(c.reconciles());
        assert_eq!(c.shed_rate_limited, 2);
        // Logical time refills the bucket.
        w.net.advance(200_000_000);
        let (status, _, _) = request(&mut w, &raw);
        assert_eq!(status, 200);
    }

    #[test]
    fn zero_rate_quota_renders_sane_retry_after_header() {
        // Regression: a zero-rate quota used to produce
        // retry_after_ms == u64::MAX, rendered via div_ceil(1000) into an
        // astronomically large retry-after header.
        let mut w = world(ServingConfig {
            default_quota: TenantQuota {
                rate_per_sec: 0.0,
                burst: 0.0,
                max_concurrent: 4,
                max_subscriptions: 4,
            },
            ..ServingConfig::default()
        });
        let q = format!("{{\"selector\":{{\"ids\":[{}]}}}}", w.sensors[0].0);
        let raw = format!(
            "POST /api/v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            q.len(),
            q
        );
        let (status, headers, _) = request(&mut w, &raw);
        assert_eq!(status, 429);
        let retry_s: u64 = header(&headers, "retry-after")
            .expect("retry-after header")
            .parse()
            .expect("numeric retry-after");
        assert!(
            (1..=60).contains(&retry_s),
            "retry-after must be a sane number of seconds, got {retry_s}"
        );
    }

    #[test]
    fn cluster_backed_queries_match_unsharded_digests_and_stats_report_shards() {
        use oda_telemetry::cluster::{ClusterConfig, ClusterCoordinator};

        // Unsharded world answers the query; record its digest.
        let q_for = |id: u32| {
            format!("{{\"selector\":{{\"ids\":[{id}]}},\"shape\":{{\"kind\":\"scalars\",\"agg\":\"mean\"}}}}")
        };
        let mut plain = world(ServingConfig::default());
        let sensor = plain.sensors[0];
        let q = q_for(sensor.0);
        let raw = format!(
            "POST /api/v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            q.len(),
            q
        );
        let (_, headers, body_plain) = request(&mut plain, &raw);
        let digest_plain = header(&headers, "x-result-digest")
            .expect("digest")
            .to_string();

        // Clustered world over 3 shards, fed the identical stream.
        let registry = SensorRegistry::new();
        let sensors = vec![
            registry.register("/hw/n0/power", SensorKind::Power, Unit::Watts),
            registry.register("/hw/n1/power", SensorKind::Power, Unit::Watts),
            registry.register("/facility/pue", SensorKind::Count, Unit::Dimensionless),
        ];
        let cluster = Arc::new(
            ClusterCoordinator::new(ClusterConfig::with_shards(3), registry.clone())
                .expect("cluster"),
        );
        for i in 0..10u64 {
            for &s in &sensors {
                cluster.ingest(ReadingBatch::single(
                    s,
                    Reading::new(Timestamp::from_millis(100 * i), i as f64 + f64::from(s.0)),
                ));
            }
        }
        cluster.fence();
        let net = Arc::new(SimNet::new());
        let store = Arc::new(TimeSeriesStore::with_capacity(16));
        let mut server = Server::new(Arc::clone(&net), ServingConfig::default(), registry, store)
            .with_cluster(Arc::clone(&cluster));

        let conn = net.connect();
        net.client_send(conn, raw.as_bytes());
        for _ in 0..64 {
            server.poll();
        }
        let (status, headers, body_cluster) = parse_response(&net.client_recv(conn));
        assert_eq!(status, 200);
        assert_eq!(
            header(&headers, "x-result-digest"),
            Some(digest_plain.as_str()),
            "scatter-gather digest must be bit-identical to unsharded"
        );
        assert_eq!(body_plain, body_cluster);
        net.client_close(conn);
        server.poll();

        // Stats gain a per-shard occupancy section.
        let conn = net.connect();
        net.client_send(conn, b"GET /api/v1/stats HTTP/1.1\r\n\r\n");
        for _ in 0..64 {
            server.poll();
        }
        let (status, _, body) = parse_response(&net.client_recv(conn));
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&body);
        assert!(text.contains("\"shards\""), "{text}");
        assert!(text.contains("\"occupancy\""), "{text}");
        assert!(text.contains("\"count\":3"), "{text}");
    }

    #[test]
    fn tenants_are_isolated_by_header() {
        let mut w = world(
            ServingConfig {
                default_quota: TenantQuota {
                    rate_per_sec: 1.0,
                    burst: 1.0,
                    max_concurrent: 4,
                    max_subscriptions: 4,
                },
                ..ServingConfig::default()
            }
            .with_tenant("dashboard", TenantQuota::unlimited()),
        );
        let q = format!("{{\"selector\":{{\"ids\":[{}]}}}}", w.sensors[0].0);
        let mk = |tenant: &str| {
            format!(
                "POST /api/v1/query HTTP/1.1\r\nx-tenant: {tenant}\r\ncontent-length: {}\r\n\r\n{}",
                q.len(),
                q
            )
        };
        // The unlimited dashboard tenant never sheds; adhoc burns its one
        // token and then sheds — without affecting the dashboard.
        for _ in 0..5 {
            let (status, _, _) = request(&mut w, &mk("dashboard"));
            assert_eq!(status, 200);
        }
        let (status, _, _) = request(&mut w, &mk("adhoc"));
        assert_eq!(status, 200);
        let (status, _, _) = request(&mut w, &mk("adhoc"));
        assert_eq!(status, 429);
        assert_eq!(
            w.server.admission().counters("dashboard").shed_rate_limited,
            0
        );
        assert_eq!(w.server.admission().counters("adhoc").shed_rate_limited, 1);
    }

    #[test]
    fn streaming_subscription_delivers_ndjson_frames() {
        let mut w = world(ServingConfig::default());
        let conn = w.net.connect();
        w.net.client_send(
            conn,
            b"GET /api/v1/subscribe?pattern=%2Fhw%2F%2A%2A HTTP/1.1\r\nx-tenant: feed\r\n\r\n",
        );
        for _ in 0..8 {
            w.server.poll();
        }
        let head = w.net.client_recv(conn);
        let head_text = String::from_utf8_lossy(&head);
        assert!(head_text.starts_with("HTTP/1.1 200"), "{head_text}");
        assert!(head_text.contains("application/x-ndjson"));

        // Publish: matching frames stream out; non-matching are filtered.
        w.bus.publish(ReadingBatch::single(
            w.sensors[0],
            Reading::new(Timestamp::from_millis(5_000), 55.5),
        ));
        w.bus.publish(ReadingBatch::single(
            w.sensors[2],
            Reading::new(Timestamp::from_millis(5_000), 1.2),
        ));
        for _ in 0..8 {
            w.server.poll();
        }
        let frames = w.net.client_recv(conn);
        let text = String::from_utf8_lossy(&frames);
        assert!(
            text.contains("/hw/n0/power") && text.contains("55.5"),
            "{text}"
        );
        assert!(!text.contains("/facility/pue"));

        // Client departure releases the subscription quota and hub slot.
        w.net.client_close(conn);
        for _ in 0..4 {
            w.server.poll();
        }
        assert_eq!(w.server.fanout_stats().clients_detached, 1);
        assert_eq!(w.server.open_connections(), 0);
    }

    #[test]
    fn subscription_quota_limits_streams_per_tenant() {
        let mut w = world(ServingConfig {
            default_quota: TenantQuota {
                max_subscriptions: 1,
                ..TenantQuota::default()
            },
            ..ServingConfig::default()
        });
        let open = |w: &mut World| {
            let conn = w.net.connect();
            w.net
                .client_send(conn, b"GET /api/v1/subscribe HTTP/1.1\r\n\r\n");
            for _ in 0..8 {
                w.server.poll();
            }
            (conn, w.net.client_recv(conn))
        };
        let (_c1, head1) = open(&mut w);
        assert!(String::from_utf8_lossy(&head1).starts_with("HTTP/1.1 200"));
        let (_c2, head2) = open(&mut w);
        assert!(
            String::from_utf8_lossy(&head2).starts_with("HTTP/1.1 429"),
            "second stream for the same tenant must shed"
        );
    }

    #[test]
    fn max_connections_rejects_excess() {
        let mut w = world(ServingConfig {
            max_connections: 2,
            ..ServingConfig::default()
        });
        let c1 = w.net.connect();
        let c2 = w.net.connect();
        let c3 = w.net.connect();
        w.server.poll();
        assert!(!w.net.server_closed(c1));
        assert!(!w.net.server_closed(c2));
        assert!(w.net.server_closed(c3), "third connection must be refused");
        assert_eq!(w.server.stats().connections_rejected, 1);
    }

    #[test]
    fn oversized_request_gets_413() {
        let mut w = world(ServingConfig {
            max_request_bytes: 128,
            ..ServingConfig::default()
        });
        let big = "x".repeat(4096);
        let raw = format!("POST /api/v1/query HTTP/1.1\r\ncontent-length: 4096\r\n\r\n{big}");
        let (status, _, _) = request(&mut w, &raw);
        assert_eq!(status, 413);
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let mut w = world(ServingConfig::default());
        let conn = w.net.connect();
        w.net.client_send(
            conn,
            b"GET /healthz HTTP/1.1\r\n\r\nGET /api/v1/stats HTTP/1.1\r\n\r\n",
        );
        for _ in 0..64 {
            w.server.poll();
        }
        let reply = String::from_utf8_lossy(&w.net.client_recv(conn)).into_owned();
        let first = reply.find("{\"status\":\"ok\"}").expect("healthz body");
        let second = reply.find("\"server\"").expect("stats body");
        assert!(first < second, "{reply}");
    }

    #[test]
    fn metrics_endpoint_renders_prometheus_with_serving_counters() {
        let mut w = world(ServingConfig::default());
        let (status, _, _) = request(&mut w, "GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        let (status, headers, body) = request(&mut w, "GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(header(&headers, "content-type")
            .expect("content type")
            .starts_with("text/plain"));
        let text = String::from_utf8_lossy(&body);
        assert!(
            text.contains("serving_requests_total{endpoint=\"/healthz\"}"),
            "{text}"
        );
    }

    #[test]
    fn realnet_serves_over_loopback_tcp() {
        use crate::net::RealNet;
        use std::io::{Read as _, Write as _};

        let registry = SensorRegistry::new();
        registry.register("/hw/n0/power", SensorKind::Power, Unit::Watts);
        let store = Arc::new(TimeSeriesStore::with_capacity(64));
        let net = Arc::new(RealNet::bind("127.0.0.1:0").expect("bind loopback"));
        let addr = net.local_addr().expect("local addr");
        let mut server = Server::new(Arc::clone(&net), ServingConfig::default(), registry, store);

        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(std::time::Duration::from_millis(10)))
            .expect("read timeout");
        client
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("send request");

        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        for _ in 0..500 {
            server.poll();
            match client.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&buf[..n]),
                Err(_) => {} // timeout / would-block; keep polling
            }
            if raw.windows(4).any(|w| w == b"\r\n\r\n") && raw.ends_with(b"}") {
                break;
            }
        }
        let reply = String::from_utf8_lossy(&raw);
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.ends_with(r#"{"status":"ok"}"#), "{reply}");
        drop(client);
        for _ in 0..50 {
            server.poll();
            if server.stats().connections_closed == 1 {
                break;
            }
        }
        assert_eq!(server.stats().connections_closed, 1);
    }
}
