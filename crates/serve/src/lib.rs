#![warn(missing_docs)]

//! # oda-serve — multi-tenant query serving layer
//!
//! Production ODA stacks (DCDB, Examon, the LDMS aggregator tier) put a
//! serving layer between the telemetry archive and its consumers: dashboards,
//! schedulers, facility operators and ad-hoc analysts all query the same
//! store, and without admission control a single misbehaving tenant can
//! starve the rest. This crate is that layer for the hpc-oda framework:
//! an HTTP/1.1 frontend over the [`oda_telemetry`] store and bus with
//! per-tenant quotas, a version-validated query-result cache, and bounded
//! subscription fan-out.
//!
//! The crate is organised around one deliberate seam:
//!
//! 1. [`net`] — a readiness-style transport trait ([`net::ServerNet`]) with
//!    two implementations: [`net::RealNet`] over a non-blocking
//!    [`std::net::TcpListener`], and [`net::SimNet`], a deterministic
//!    in-memory twin with a logical clock. Every other module is written
//!    against the trait, so the full request path — parsing, admission,
//!    cache, execution, fan-out, backpressure — is exercised byte-for-byte
//!    identically under tests (`SimNet`) and in production (`RealNet`).
//!    This mirrors the `StorageFs` / `SimFs` split in the storage engine.
//! 2. [`http`] — a minimal HTTP/1.1 request parser and response writer.
//!    No external dependencies; exactly the subset the endpoints need.
//! 3. [`config`] — [`config::ServingConfig`] and per-tenant
//!    [`config::TenantQuota`]s.
//! 4. [`tenant`] — the [`tenant::AdmissionController`]: token-bucket rate
//!    limiting plus concurrent-query caps, with explicit `429` (rate) /
//!    `503` (saturation) semantics and per-tenant shed accounting that
//!    reconciles exactly against offered load.
//! 5. [`cache`] — the [`cache::QueryCache`]: keyed on the canonical query
//!    wire form, validated against per-sensor store versions so a hit is
//!    *provably* bit-identical to re-execution (see `DESIGN.md` §13).
//! 6. [`fanout`] — the [`fanout::FanoutHub`]: one bus subscription
//!    multiplexed to many HTTP streaming clients with bounded per-client
//!    buffers and slow-consumer shedding.
//! 7. [`server`] — the [`server::Server`] itself: a single-threaded
//!    readiness loop (`poll()`) that glues the above into the endpoint set
//!    documented in the README.
//!
//! ## Quick example (deterministic, in-memory)
//!
//! ```
//! use std::sync::Arc;
//! use oda_serve::prelude::*;
//! use oda_telemetry::prelude::*;
//!
//! let registry = SensorRegistry::new();
//! let id = registry.register("/hw/node0/power", SensorKind::Power, Unit::Watts);
//! let store = Arc::new(TimeSeriesStore::with_capacity(256));
//! store.insert(id, Reading::new(Timestamp::from_millis(1), 120.0));
//!
//! let net = Arc::new(SimNet::new());
//! let mut server = Server::new(net.clone(), ServingConfig::default(), registry, store);
//! let conn = net.connect();
//! net.client_send(conn, b"GET /healthz HTTP/1.1\r\n\r\n");
//! server.poll();
//! let reply = net.client_recv(conn);
//! assert!(String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 200"));
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod fanout;
pub mod http;
pub mod net;
pub mod server;
pub mod tenant;

/// Convenient re-exports of the types used by nearly every consumer.
pub mod prelude {
    pub use crate::cache::{CacheStats, QueryCache};
    pub use crate::config::{ServingConfig, TenantQuota};
    pub use crate::fanout::{FanoutHub, FanoutStats};
    pub use crate::net::{ConnId, IoResult, RealNet, ServerNet, SimNet};
    pub use crate::server::{Server, ServerStats};
    pub use crate::tenant::{Admission, AdmissionController, TenantCounters};
}
