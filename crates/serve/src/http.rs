//! Minimal HTTP/1.1 request parsing and response rendering.
//!
//! Exactly the subset the serving endpoints need, written against byte
//! buffers so it composes with the non-blocking [`crate::net::ServerNet`]
//! loop: the server accumulates bytes per connection and calls
//! [`parse_request`] until it reports a complete request (plus how many
//! bytes it consumed, so pipelined requests in one segment work).
//!
//! Deliberate non-goals: chunked request bodies, multipart, compression,
//! HTTP/2. Streaming *responses* (the `/api/v1/subscribe` endpoint) are
//! produced by the server as `Connection: close` bodies of unspecified
//! length, which every HTTP/1.1 client understands.

use std::fmt::Write as _;

/// A fully received HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component of the request target (no query string).
    pub path: String,
    /// Raw query string after `?`, if any (still percent-encoded).
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of header `name` (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Percent-decoded value of query parameter `key`.
    pub fn query_param(&self, key: &str) -> Option<String> {
        let q = self.query.as_deref()?;
        for pair in q.split('&') {
            let (k, v) = match pair.split_once('=') {
                Some((k, v)) => (k, v),
                None => (pair, ""),
            };
            if percent_decode(k) == key {
                return Some(percent_decode(v));
            }
        }
        None
    }
}

/// Result of trying to parse a request out of a connection buffer.
#[derive(Debug)]
pub enum ParseOutcome {
    /// Not enough bytes yet; keep reading.
    Incomplete,
    /// The bytes cannot be a valid request; the connection should get a
    /// `400` and be closed.
    Bad(&'static str),
    /// A complete request, and how many buffer bytes it consumed.
    Ready {
        /// The parsed request.
        request: HttpRequest,
        /// Bytes of `buf` consumed (head + body); the caller drains these.
        consumed: usize,
    },
}

/// Parses one request from the front of `buf`.
///
/// `max_body` bounds the accepted `Content-Length`; larger requests are
/// rejected as [`ParseOutcome::Bad`] before their body is buffered.
pub fn parse_request(buf: &[u8], max_body: usize) -> ParseOutcome {
    let Some(head_len) = find_terminator(buf) else {
        return ParseOutcome::Incomplete;
    };
    let Some(head_bytes) = buf.get(..head_len) else {
        return ParseOutcome::Bad("head bounds");
    };
    let Ok(head) = std::str::from_utf8(head_bytes) else {
        return ParseOutcome::Bad("head is not utf-8");
    };
    let mut lines = head.split("\r\n");
    let Some(request_line) = lines.next() else {
        return ParseOutcome::Bad("empty head");
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Bad("malformed request line");
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return ParseOutcome::Bad("malformed request line");
    }
    if method.is_empty() || target.is_empty() {
        return ParseOutcome::Bad("malformed request line");
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Bad("malformed header line");
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ParseOutcome::Bad("bad content-length"),
        },
        None => 0,
    };
    if content_length > max_body {
        return ParseOutcome::Bad("body too large");
    }
    let body_start = head_len + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }
    let body = buf
        .get(body_start..total)
        .map(|b| b.to_vec())
        .unwrap_or_default();

    let (raw_path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q.to_string())),
        None => (target, None),
    };

    ParseOutcome::Ready {
        request: HttpRequest {
            method: method.to_string(),
            path: percent_decode(raw_path),
            query,
            headers,
            body,
        },
        consumed: total,
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` escapes and `+`-as-space. Invalid escapes pass through
/// verbatim (lenient, like most servers).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes.get(i).copied().unwrap_or(0);
        if b == b'+' {
            out.push(b' ');
            i += 1;
        } else if b == b'%' {
            let hi = bytes.get(i + 1).copied().and_then(hex_val);
            let lo = bytes.get(i + 2).copied().and_then(hex_val);
            match (hi, lo) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders a complete response with `Content-Length` framing.
pub fn response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> Vec<u8> {
    let mut head = String::with_capacity(128);
    let _ = write!(head, "HTTP/1.1 {} {}\r\n", status, reason(status));
    let _ = write!(head, "content-type: {content_type}\r\n");
    let _ = write!(head, "content-length: {}\r\n", body.len());
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Renders the head of an unbounded streaming response
/// (`Connection: close`, no `Content-Length`). Frames follow as raw body
/// bytes until the server closes the connection.
pub fn streaming_head(status: u16, content_type: &str) -> Vec<u8> {
    let mut head = String::with_capacity(96);
    let _ = write!(head, "HTTP/1.1 {} {}\r\n", status, reason(status));
    let _ = write!(head, "content-type: {content_type}\r\n");
    head.push_str("connection: close\r\n\r\n");
    head.into_bytes()
}

/// Renders the standard JSON error body `{"error": "..."}`.
pub fn error_body(message: &str) -> Vec<u8> {
    let value = serde_json::Value::Object(vec![(
        "error".to_string(),
        serde_json::Value::Str(message.to_string()),
    )]);
    serde_json::to_string(&value)
        .unwrap_or_default()
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_with_query_and_headers() {
        let raw =
            b"GET /api/v1/sensors?pattern=%2Fhw%2F** HTTP/1.1\r\nHost: x\r\nX-Tenant: ops\r\n\r\n";
        let ParseOutcome::Ready { request, consumed } = parse_request(raw, 1024) else {
            panic!("expected complete request");
        };
        assert_eq!(consumed, raw.len());
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/api/v1/sensors");
        assert_eq!(request.header("x-tenant"), Some("ops"));
        assert_eq!(request.header("X-TENANT"), Some("ops"));
        assert_eq!(request.query_param("pattern").as_deref(), Some("/hw/**"));
        assert!(request.query_param("missing").is_none());
    }

    #[test]
    fn parses_post_with_body_and_pipelined_remainder() {
        let raw = b"POST /api/v1/query HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"GET /healthz HTTP/1.1\r\n\r\n";
        let ParseOutcome::Ready { request, consumed } = parse_request(raw, 1024) else {
            panic!("expected complete request");
        };
        assert_eq!(request.body, b"{\"a\"");
        let rest = &raw[consumed..];
        let ParseOutcome::Ready {
            request: second, ..
        } = parse_request(rest, 1024)
        else {
            panic!("expected pipelined request");
        };
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn incomplete_and_bad_requests() {
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\n", 1024),
            ParseOutcome::Incomplete
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc", 1024),
            ParseOutcome::Incomplete
        ));
        assert!(matches!(
            parse_request(b"BOGUS\r\n\r\n", 1024),
            ParseOutcome::Bad(_)
        ));
        assert!(matches!(
            parse_request(b"GET / SPDY/9\r\n\r\n", 1024),
            ParseOutcome::Bad(_)
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n", 1024),
            ParseOutcome::Bad(_)
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n", 1024),
            ParseOutcome::Bad(_)
        ));
    }

    #[test]
    fn response_rendering_round_trips() {
        let r = response(
            429,
            "application/json",
            &[("retry-after", "1".to_string())],
            b"{}",
        );
        let text = String::from_utf8(r).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let head = String::from_utf8(streaming_head(200, "application/x-ndjson")).expect("utf8");
        assert!(head.contains("connection: close"));
        assert!(!head.contains("content-length"));
    }

    #[test]
    fn percent_decode_handles_escapes_and_junk() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%2Fhw%2F%2A%2A"), "/hw/**");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
