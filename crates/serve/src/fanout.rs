//! Subscription fan-out: one bus subscription, many streaming clients.
//!
//! A facility dashboard deployment can easily want thousands of live
//! views of the same telemetry. Registering one [`TelemetryBus`]
//! subscriber per HTTP client would multiply the bus's per-publish work
//! by the client count; instead the [`FanoutHub`] holds exactly **one**
//! wide bus subscription and multiplexes its batches to every streaming
//! client, filtering per client by sensor pattern.
//!
//! Backpressure is strictly local: each client owns a bounded frame
//! buffer ([`crate::config::ServingConfig::sub_buffer_frames`]). When the
//! serving loop cannot flush a client as fast as the bus produces — a
//! slow reader, a congested socket — the *oldest* buffered frames for
//! that client are shed and counted, and every other client is entirely
//! unaffected. A frame is rendered once per batch and shared by `Arc`
//! across all buffers, so fan-out cost per extra client is one pointer
//! push, not one JSON render.
//!
//! Frames are newline-delimited JSON (`application/x-ndjson`):
//!
//! ```json
//! {"sensor":17,"name":"/hw/node3/power","readings":[{"ts_ms":120000,"value":213.5}]}
//! ```

use oda_telemetry::bus::{Subscription, TelemetryBus};
use oda_telemetry::pattern::SensorPattern;
use oda_telemetry::reading::ReadingBatch;
use oda_telemetry::sensor::{SensorId, SensorRegistry};
use serde_json::Value;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Monotone hub-wide fan-out counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// Batches drained from the bus subscription.
    pub batches_in: u64,
    /// Frames enqueued into client buffers (one per matching client).
    pub frames_enqueued: u64,
    /// Frames dequeued by the serving loop for writing.
    pub frames_dequeued: u64,
    /// Frames shed because a client's buffer was full (oldest-first).
    pub frames_shed: u64,
    /// Clients ever attached.
    pub clients_attached: u64,
    /// Clients detached (client close or server shutdown of the stream).
    pub clients_detached: u64,
}

struct FanoutClient {
    /// Sensors this client's pattern resolved to at attach time.
    sensors: Vec<SensorId>,
    pattern: SensorPattern,
    buf: VecDeque<Arc<Vec<u8>>>,
    limit: usize,
    shed: u64,
    delivered: u64,
}

impl FanoutClient {
    fn wants(&self, sensor: SensorId, registry: &SensorRegistry) -> bool {
        if self.sensors.binary_search(&sensor).is_ok() {
            return true;
        }
        // A sensor registered after attach: match by name so late-registered
        // sensors are picked up, mirroring bus subscription semantics.
        registry
            .name(sensor)
            .map(|n| self.pattern.matches(&n))
            .unwrap_or(false)
    }
}

/// One wide bus subscription multiplexed over many bounded client buffers.
pub struct FanoutHub {
    registry: SensorRegistry,
    sub: Option<Subscription>,
    clients: BTreeMap<u64, FanoutClient>,
    stats: FanoutStats,
}

impl FanoutHub {
    /// Creates a hub resolving client patterns against `registry`. No bus
    /// subscription exists until the first client attaches.
    pub fn new(registry: SensorRegistry) -> Self {
        FanoutHub {
            registry,
            sub: None,
            clients: BTreeMap::new(),
            stats: FanoutStats::default(),
        }
    }

    /// Attaches streaming client `key` with `pattern`, buffering at most
    /// `buffer_frames` rendered frames. The first client brings up the
    /// single wide bus subscription on `bus`. Returns `false` (and attaches
    /// nothing) if `key` is already attached.
    pub fn attach(
        &mut self,
        key: u64,
        pattern: &str,
        buffer_frames: usize,
        bus: &TelemetryBus,
    ) -> bool {
        let slot = match self.clients.entry(key) {
            Entry::Occupied(_) => return false,
            Entry::Vacant(v) => v,
        };
        let pattern = SensorPattern::new(pattern);
        let mut sensors = self.registry.matching(&pattern);
        sensors.sort_unstable();
        slot.insert(FanoutClient {
            sensors,
            pattern,
            buf: VecDeque::new(),
            limit: buffer_frames.max(1),
            shed: 0,
            delivered: 0,
        });
        self.stats.clients_attached += 1;
        if self.sub.is_none() {
            // One subscription covering everything; per-client filtering
            // happens here, not on the bus.
            self.sub = Some(bus.subscription("/**").named("serve-fanout").subscribe());
        }
        true
    }

    /// Detaches client `key`, dropping its buffered frames. The bus
    /// subscription is torn down when the last client leaves, so an idle
    /// server costs the bus nothing.
    pub fn detach(&mut self, key: u64) {
        if self.clients.remove(&key).is_some() {
            self.stats.clients_detached += 1;
        }
        if self.clients.is_empty() {
            self.sub = None;
        }
    }

    /// `true` if `key` is currently attached.
    pub fn is_attached(&self, key: u64) -> bool {
        self.clients.contains_key(&key)
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Drains every batch the bus has published since the last pump and
    /// distributes rendered frames to matching client buffers, shedding the
    /// oldest frames of any client over its limit. Returns the number of
    /// batches drained.
    pub fn pump(&mut self) -> usize {
        let Some(sub) = &self.sub else {
            return 0;
        };
        let mut drained = 0;
        let mut frames: Vec<(SensorId, Arc<Vec<u8>>)> = Vec::new();
        while let Ok(batch) = sub.rx.try_recv() {
            drained += 1;
            let sensor = batch.sensor;
            frames.push((sensor, Arc::new(render_frame(&self.registry, &batch))));
        }
        if drained == 0 {
            return 0;
        }
        self.stats.batches_in += drained as u64;
        for client in self.clients.values_mut() {
            for (sensor, frame) in &frames {
                if !client.wants(*sensor, &self.registry) {
                    continue;
                }
                client.buf.push_back(Arc::clone(frame));
                self.stats.frames_enqueued += 1;
                while client.buf.len() > client.limit {
                    client.buf.pop_front();
                    client.shed += 1;
                    self.stats.frames_shed += 1;
                }
            }
        }
        drained
    }

    /// Pops the next buffered frame for client `key`, if any.
    pub fn next_frame(&mut self, key: u64) -> Option<Arc<Vec<u8>>> {
        let client = self.clients.get_mut(&key)?;
        let frame = client.buf.pop_front()?;
        client.delivered += 1;
        self.stats.frames_dequeued += 1;
        Some(frame)
    }

    /// `(delivered, shed, buffered)` frame counts for client `key`.
    pub fn client_counts(&self, key: u64) -> Option<(u64, u64, usize)> {
        self.clients
            .get(&key)
            .map(|c| (c.delivered, c.shed, c.buf.len()))
    }

    /// Hub-wide counters.
    pub fn stats(&self) -> FanoutStats {
        self.stats
    }
}

/// Renders one bus batch as an NDJSON frame (trailing newline included).
fn render_frame(registry: &SensorRegistry, batch: &ReadingBatch) -> Vec<u8> {
    let readings = Value::Array(
        batch
            .readings
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("ts_ms".to_string(), Value::U64(r.ts.0)),
                    ("value".to_string(), Value::F64(r.value)),
                ])
            })
            .collect(),
    );
    let mut fields = vec![("sensor".to_string(), Value::U64(u64::from(batch.sensor.0)))];
    if let Some(name) = registry.name(batch.sensor) {
        fields.push(("name".to_string(), Value::Str(name.to_string())));
    }
    fields.push(("readings".to_string(), readings));
    let mut line = serde_json::to_string(&Value::Object(fields))
        .unwrap_or_default()
        .into_bytes();
    line.push(b'\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use oda_telemetry::prelude::*;

    fn bus_with(names: &[&str]) -> (TelemetryBus, Vec<SensorId>) {
        let registry = SensorRegistry::new();
        let ids = names
            .iter()
            .map(|n| registry.register(n, SensorKind::Power, Unit::Watts))
            .collect();
        (TelemetryBus::new(registry), ids)
    }

    fn publish(bus: &TelemetryBus, sensor: SensorId, ts: u64, value: f64) {
        bus.publish(ReadingBatch::single(
            sensor,
            Reading::new(Timestamp::from_millis(ts), value),
        ));
    }

    #[test]
    fn frames_fan_out_filtered_by_pattern() {
        let (bus, ids) = bus_with(&["/hw/n0/power", "/hw/n1/power", "/facility/pue"]);
        let mut hub = FanoutHub::new(bus.registry().clone());
        assert!(hub.attach(1, "/hw/**", 16, &bus));
        assert!(hub.attach(2, "/facility/**", 16, &bus));
        assert!(!hub.attach(2, "/facility/**", 16, &bus), "double attach");

        publish(&bus, ids[0], 10, 1.0);
        publish(&bus, ids[2], 10, 1.4);
        assert_eq!(hub.pump(), 2);

        let f = hub.next_frame(1).expect("hw client gets hw frame");
        let text = String::from_utf8_lossy(&f);
        assert!(text.contains("\"name\":\"/hw/n0/power\""), "{text}");
        assert!(text.ends_with('\n'));
        assert!(hub.next_frame(1).is_none(), "facility frame filtered out");

        let f = hub.next_frame(2).expect("facility client gets pue frame");
        assert!(String::from_utf8_lossy(&f).contains("/facility/pue"));
    }

    #[test]
    fn slow_consumer_sheds_oldest_frames_only_for_itself() {
        let (bus, ids) = bus_with(&["/hw/n0/power"]);
        let mut hub = FanoutHub::new(bus.registry().clone());
        hub.attach(1, "/**", 2, &bus); // slow: buffer of 2
        hub.attach(2, "/**", 16, &bus); // fast

        for i in 0..5 {
            publish(&bus, ids[0], 10 * (i + 1), i as f64);
        }
        hub.pump();

        // Slow client kept only the 2 newest frames.
        let (_, shed, buffered) = hub.client_counts(1).expect("client 1");
        assert_eq!((shed, buffered), (3, 2));
        let newest_first = hub.next_frame(1).expect("frame");
        assert!(String::from_utf8_lossy(&newest_first).contains("\"value\":3.0"));

        // Fast client saw everything.
        let (_, shed, buffered) = hub.client_counts(2).expect("client 2");
        assert_eq!((shed, buffered), (0, 5));
        assert_eq!(hub.stats().frames_shed, 3);
        assert_eq!(hub.stats().frames_enqueued, 10);
    }

    #[test]
    fn frames_are_shared_not_recloned() {
        let (bus, ids) = bus_with(&["/hw/n0/power"]);
        let mut hub = FanoutHub::new(bus.registry().clone());
        for k in 0..100 {
            hub.attach(k, "/**", 8, &bus);
        }
        publish(&bus, ids[0], 10, 1.0);
        hub.pump();
        let a = hub.next_frame(0).expect("frame");
        // 100 buffers held the same allocation: 99 clients still hold it.
        assert_eq!(Arc::strong_count(&a), 100);
    }

    #[test]
    fn last_detach_drops_the_bus_subscription() {
        let (bus, ids) = bus_with(&["/hw/n0/power"]);
        let mut hub = FanoutHub::new(bus.registry().clone());
        hub.attach(1, "/**", 8, &bus);
        assert_eq!(bus.subscriber_count(), 1);
        hub.detach(1);
        assert_eq!(bus.subscriber_count(), 0, "idle hub must not load the bus");
        // Re-attach resubscribes.
        hub.attach(2, "/**", 8, &bus);
        assert_eq!(bus.subscriber_count(), 1);
        publish(&bus, ids[0], 10, 1.0);
        assert_eq!(hub.pump(), 1);
        assert_eq!(hub.stats().clients_detached, 1);
    }

    #[test]
    fn late_registered_sensor_reaches_matching_clients() {
        let (bus, _) = bus_with(&["/hw/n0/power"]);
        let mut hub = FanoutHub::new(bus.registry().clone());
        hub.attach(1, "/hw/**", 8, &bus);
        // Register after attach; the bus picks it up, and so must the hub.
        let late = bus
            .registry()
            .register("/hw/n9/power", SensorKind::Power, Unit::Watts);
        publish(&bus, late, 10, 9.0);
        hub.pump();
        let f = hub.next_frame(1).expect("late sensor frame");
        assert!(String::from_utf8_lossy(&f).contains("/hw/n9/power"));
    }
}
