//! End-to-end self-observability: a full `OdaRuntime` pass over a live
//! simulated site must leave a complete, deterministic metrics trail —
//! pipeline spans, runtime counters, and telemetry-plane instruments — in
//! the registry it was built with.

use hpc_oda::core::analytics_type::AnalyticsType;
use hpc_oda::core::cells;
use hpc_oda::core::runtime::{OdaRuntime, SimControlPlane};
use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::metrics::{MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;

/// Simulates half an hour and runs one runtime pass, everything recording
/// into a fresh registry. Returns the pass's span names and the snapshot.
fn run_instrumented_pass(seed: u64) -> (Vec<String>, MetricsSnapshot) {
    let metrics = MetricsRegistry::new();
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(seed)
        .metrics(metrics.clone())
        .build();
    dc.run_for_hours(0.5);
    let mut runtime = OdaRuntime::new(3_600_000)
        .with_metrics(metrics.clone())
        .with_capability(
            AnalyticsType::Descriptive,
            Box::new(cells::descriptive::FacilityDashboard),
        )
        .with_capability(
            AnalyticsType::Diagnostic,
            Box::new(cells::diagnostic::NodeAnomalyDetector::new()),
        )
        .with_capability(
            AnalyticsType::Prescriptive,
            Box::new(cells::prescriptive::DvfsTuner::new()),
        );
    let report = runtime.pass(
        Arc::clone(dc.store()),
        dc.registry().clone(),
        dc.now(),
        &mut SimControlPlane { dc: &mut dc },
    );
    assert!(report.wall_ns > 0);
    let spans: Vec<String> = report
        .run
        .spans
        .iter()
        .map(|s| s.capability.clone())
        .collect();
    (spans, metrics.snapshot())
}

#[test]
fn runtime_pass_emits_expected_spans_and_counters() {
    let (spans, snap) = run_instrumented_pass(7);

    // One span per registered capability, in stage order.
    assert_eq!(
        spans,
        ["facility-dashboard", "node-anomaly-detector", "dvfs-tuner"]
    );

    // Runtime-level counters and the pass latency histogram.
    assert_eq!(snap.counter("runtime_pass_total"), Some(1));
    assert_eq!(snap.histogram("runtime_pass_ns").map(|h| h.count), Some(1));
    assert!(snap
        .counter("runtime_prescriptions_applied_total")
        .is_some());
    assert!(snap.counter("runtime_diagnoses_total").is_some());

    // Per-capability stage instruments carry the capability label.
    for capability in ["facility-dashboard", "node-anomaly-detector", "dvfs-tuner"] {
        let id = format!("pipeline_stage_ns{{capability=\"{capability}\"}}");
        assert_eq!(snap.histogram(&id).map(|h| h.count), Some(1), "{id}");
        let artifacts = format!("pipeline_artifacts_total{{capability=\"{capability}\"}}");
        assert!(snap.counter(&artifacts).is_some(), "{artifacts}");
    }

    // The telemetry plane underneath recorded into the same registry: the
    // simulation published batches, the store archived readings, and the
    // pass's queries scanned them.
    assert!(snap.counter("bus_publish_total").unwrap_or(0) > 0);
    let appended: u64 = snap
        .counters
        .iter()
        .filter(|c| c.id.starts_with("store_append_total"))
        .map(|c| c.value)
        .sum();
    assert!(appended > 0, "store write path must be instrumented");
    assert!(snap.counter("query_total").unwrap_or(0) > 0);
    assert!(snap.counter("query_readings_scanned_total").unwrap_or(0) > 0);
    // The rollup-tier planner counters are registered on the same read
    // path, so a pass leaves them present (tier-eligible queries resolve
    // each to exactly one hit or miss).
    let hits = snap.counter("query_tier_hit_total");
    let misses = snap.counter("query_tier_miss_total");
    assert!(
        hits.is_some() && misses.is_some(),
        "planner counters missing"
    );
    assert!(snap.counter("query_readings_avoided_total").is_some());
}

#[test]
fn identical_seeded_runs_produce_identical_count_metrics() {
    let (spans_a, a) = run_instrumented_pass(11);
    let (spans_b, b) = run_instrumented_pass(11);
    assert_eq!(spans_a, spans_b);
    // Count-valued metrics (counters + histogram sample counts) are exactly
    // reproducible; wall-time-valued metrics are deliberately excluded.
    assert_eq!(a.count_values(), b.count_values());
    assert!(!a.count_values().is_empty());
}

#[test]
fn prometheus_exposition_covers_the_whole_trail() {
    let (_, snap) = run_instrumented_pass(13);
    let metrics = MetricsRegistry::new();
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(13)
        .metrics(metrics.clone())
        .build();
    dc.run_for_hours(0.1);
    let text = metrics.render_prometheus();
    for needle in [
        "bus_publish_total",
        "bus_readings_total",
        "store_append_total{shard=",
        "bus_publish_ns_count",
        "bus_publish_ns{quantile=\"0.99\"}",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // And the earlier full-pass snapshot carries runtime + pipeline + query
    // families alongside the telemetry plane.
    let families: Vec<&str> = snap.counters.iter().map(|c| c.id.as_str()).collect();
    assert!(families.iter().any(|id| id.starts_with("runtime_")));
    assert!(families.iter().any(|id| id.starts_with("pipeline_")));
    assert!(families.iter().any(|id| id.starts_with("query_")));
    assert!(families.iter().any(|id| id.starts_with("bus_")));
}
