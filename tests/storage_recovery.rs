//! Crash-recovery integration suite for the durable storage engine.
//!
//! Each test kills the archive at a different point of the WAL / segment
//! lifecycle (unsynced tail, synced prefix, torn final record, lying fsync,
//! crash between seal and WAL reset, crash mid-compaction), reopens it over
//! the surviving bytes, and asserts the recovered archive is **bit-identical
//! to a reference in-memory store fed exactly the durable prefix** — the
//! recovery contract from DESIGN.md §12. A final regression test pins the
//! eviction-attribution bugfix: a reading overwritten in the hot ring but
//! still durable is not "evicted" and must be counted at most once, when
//! segment retention actually expires it.

use hpc_oda::telemetry::prelude::*;
use hpc_oda::telemetry::storage::wal;
use std::sync::Arc;

/// Deterministic finite readings with non-dyadic values, so any bit-level
/// corruption of a recovered value breaks equality.
fn reading(i: u64) -> Reading {
    Reading::new(Timestamp::from_millis(i * 1_000), 0.1 + i as f64 * 0.3)
}

fn readings(n: u64) -> Vec<Reading> {
    (0..n).map(reading).collect()
}

/// Reference in-memory store fed `prefix` for `sensor` — what a loss-free
/// archive holding exactly the durable prefix looks like.
fn reference_store(sensor: SensorId, prefix: &[Reading]) -> TimeSeriesStore {
    let store = TimeSeriesStore::with_capacity(1_024);
    assert_eq!(store.insert_batch(sensor, prefix), prefix.len());
    store
}

/// Bit-identical comparison of one sensor's full history across two stores:
/// same readings, same order, same timestamp and value *bits*.
fn assert_bit_identical(got: &TimeSeriesStore, want: &TimeSeriesStore, sensor: SensorId) {
    let g = got.range(sensor, Timestamp::ZERO, Timestamp::MAX);
    let w = want.range(sensor, Timestamp::ZERO, Timestamp::MAX);
    assert_eq!(g, w, "recovered archive diverges from the reference store");
    let bits = |rs: &[Reading]| -> Vec<(u64, u64)> {
        rs.iter().map(|r| (r.ts.0, r.value.to_bits())).collect()
    };
    assert_eq!(
        bits(&g),
        bits(&w),
        "recovered values differ at the bit level"
    );
    assert_eq!(got.series_len(sensor), want.series_len(sensor));
}

fn engine_over(fs: &Arc<SimFs>, cfg: EngineConfig) -> (PersistentEngine, RecoveryReport) {
    PersistentEngine::open(
        Arc::clone(fs) as Arc<dyn StorageFs>,
        cfg,
        &MetricsRegistry::new(),
    )
    .expect("engine opens over SimFs")
}

fn backend_over(
    fs: &Arc<SimFs>,
    kind: BackendKind,
    engine: EngineConfig,
    capacity: usize,
) -> Arc<dyn StorageBackend> {
    let cfg = StorageConfig {
        backend: kind,
        engine,
    };
    let store = Arc::new(TimeSeriesStore::with_capacity(capacity));
    open_backend(&cfg, Arc::clone(fs) as Arc<dyn StorageFs>, store)
        .expect("backend opens over SimFs")
}

const S: SensorId = SensorId(1);

#[test]
fn crash_with_unsynced_tail_recovers_exactly_the_synced_prefix() {
    let fs = Arc::new(SimFs::new());
    let cfg = EngineConfig {
        wal_sync_every: 4,
        ..EngineConfig::default()
    };
    let all = readings(10);
    {
        let backend = backend_over(&fs, BackendKind::Persistent, cfg.clone(), 1_024);
        for r in &all {
            backend.insert_batch(S, std::slice::from_ref(r));
        }
        // No flush: records 9 and 10 sit behind the last group sync.
    }
    fs.crash();
    let backend = backend_over(&fs, BackendKind::Persistent, cfg, 1_024);
    let rec = backend
        .recovery()
        .expect("durable backend reports recovery");
    assert_eq!(
        rec.readings_recovered, 8,
        "durable prefix is the two synced groups"
    );
    assert!(
        !rec.wal_truncated,
        "a clean crash loses whole records, not bytes"
    );
    assert_bit_identical(backend.store(), &reference_store(S, &all[..8]), S);
}

#[test]
fn flushed_archive_recovers_bit_identical_across_segments_and_wal_tail() {
    let fs = Arc::new(SimFs::new());
    // Small segments so recovery crosses sealed segments *and* a WAL tail.
    let cfg = EngineConfig {
        segment_max_readings: 8,
        wal_sync_every: 1,
        ..EngineConfig::default()
    };
    let all = readings(21); // 2 sealed segments + 5 readings in the WAL
    {
        let backend = backend_over(&fs, BackendKind::Persistent, cfg.clone(), 1_024);
        for r in &all {
            backend.insert_batch(S, std::slice::from_ref(r));
        }
        backend.flush().unwrap();
    }
    fs.crash();
    let backend = backend_over(&fs, BackendKind::Persistent, cfg, 1_024);
    let rec = backend.recovery().unwrap();
    assert_eq!(rec.segments_loaded, 2);
    assert_eq!(rec.wal_records_replayed, 5);
    assert_eq!(rec.readings_recovered, 21);
    assert_bit_identical(backend.store(), &reference_store(S, &all), S);
    assert_eq!(backend.durable_len(), 21);
}

#[test]
fn torn_final_record_is_truncated_not_propagated() {
    let fs = Arc::new(SimFs::new());
    // Buffer everything: three appended records, none synced.
    let cfg = EngineConfig {
        wal_sync_every: 100,
        ..EngineConfig::default()
    };
    let all = readings(3);
    {
        let engine = engine_over(&fs, cfg.clone()).0;
        for r in &all {
            engine.append(S, std::slice::from_ref(r)).unwrap();
        }
    }
    // One single-reading WAL record is 36 bytes (len 4 + payload 24 +
    // checksum 8). Keep record 1 whole and 10 bytes of record 2: a torn
    // page write.
    fs.crash_torn(36 + 10);
    let (engine, rec) = engine_over(&fs, cfg.clone());
    assert!(rec.wal_truncated, "the torn tail must be detected");
    assert_eq!(rec.wal_records_replayed, 1);
    assert_eq!(
        rec.readings_recovered, 1,
        "only the checksummed prefix survives"
    );
    // The truncated WAL stays writable: new appends land after the valid
    // prefix and a further clean reopen sees prefix + new data, in order.
    let more = [reading(10), reading(11)];
    engine.append(S, &more).unwrap();
    engine.flush().unwrap();
    drop(engine);
    fs.crash();
    let (engine, rec) = engine_over(&fs, cfg);
    assert!(!rec.wal_truncated);
    assert_eq!(rec.readings_recovered, 3);
    let mut got = Vec::new();
    engine
        .range_into(S, Timestamp::ZERO, Timestamp::MAX, &mut got)
        .unwrap();
    assert_eq!(got, vec![all[0], more[0], more[1]]);
}

#[test]
fn stale_wal_epoch_is_discarded_so_a_sealed_segment_never_replays_twice() {
    let fs = Arc::new(SimFs::new());
    let cfg = EngineConfig {
        segment_max_readings: 4,
        wal_sync_every: 1,
        ..EngineConfig::default()
    };
    let all = readings(4);
    {
        let engine = engine_over(&fs, cfg.clone()).0;
        engine.append(S, &all).unwrap(); // fills the memtable: seals seq 1
        assert_eq!(engine.memtable_len(), 0, "seal must have fired");
        assert_eq!(engine.wal_epoch(), 2);
    }
    // Model a crash *between* segment seal and WAL reset: the durable
    // segment (epoch 1's data) exists, but the disk still holds the
    // pre-seal WAL with epoch 1 and the same four readings.
    let mut stale = wal::encode_header(1).to_vec();
    stale.extend_from_slice(&wal::encode_record(S, &all));
    fs.write_atomic(wal::WAL_FILE, &stale).unwrap();
    let (engine, rec) = engine_over(&fs, cfg);
    assert!(
        rec.wal_discarded_stale,
        "epoch guard must reject the stale WAL"
    );
    assert_eq!(rec.wal_records_replayed, 0);
    assert_eq!(
        rec.readings_recovered, 4,
        "the four readings come from the segment exactly once"
    );
    let mut got = Vec::new();
    engine
        .range_into(S, Timestamp::ZERO, Timestamp::MAX, &mut got)
        .unwrap();
    assert_eq!(got, all, "no duplicate replay of the sealed batch");
}

#[test]
fn lying_fsync_loses_a_suffix_but_the_recovered_prefix_is_consistent() {
    let fs = Arc::new(SimFs::new());
    let cfg = EngineConfig {
        wal_sync_every: 2,
        ..EngineConfig::default()
    };
    let all = readings(10);
    {
        let backend = backend_over(&fs, BackendKind::Persistent, cfg.clone(), 1_024);
        for (i, r) in all.iter().enumerate() {
            if i == 6 {
                // Every durability point from here on lies: it reports
                // success but persists nothing.
                fs.lose_next_syncs(u32::MAX);
            }
            backend.insert_batch(S, std::slice::from_ref(r));
        }
        backend.flush().unwrap(); // also swallowed
    }
    fs.crash();
    let backend = backend_over(&fs, BackendKind::Persistent, cfg, 1_024);
    let rec = backend.recovery().unwrap();
    assert_eq!(
        rec.readings_recovered, 6,
        "recovery yields the last honestly-synced prefix"
    );
    assert_bit_identical(backend.store(), &reference_store(S, &all[..6]), S);
}

#[test]
fn crash_mid_compaction_leaves_raw_segments_intact() {
    let fs = Arc::new(SimFs::new());
    let cfg = EngineConfig {
        segment_max_readings: 4,
        wal_sync_every: 1,
        compact_keep_raw: 2,
        compact_bucket_ms: 2_000,
        ..EngineConfig::default()
    };
    let all = readings(16); // 4 sealed segments, 2 of them cold
    let engine = engine_over(&fs, cfg.clone()).0;
    for chunk in all.chunks(4) {
        engine.append(S, chunk).unwrap();
    }
    assert_eq!(engine.segment_counts(), (4, 0));
    // The compacted rewrite of the first cold segment hits a lying fsync;
    // the second lands durably. Power cut.
    fs.lose_next_syncs(1);
    assert_eq!(engine.compact().unwrap(), 2);
    drop(engine);
    fs.crash();
    let (engine, rec) = engine_over(&fs, cfg);
    assert_eq!(rec.segments_loaded, 4, "every segment file still verifies");
    assert_eq!(rec.segments_dropped, 0);
    // Segment 1 reverted to its raw pre-compaction bytes; segment 2 kept
    // its durable compacted form. Nothing was lost either way.
    assert_eq!(engine.segment_counts(), (3, 1));
    assert_eq!(rec.readings_recovered, 16);
    assert_eq!(engine.durable_len(), 16);
    // The reverted raw segment still serves raw readings; the compacted
    // one serves its buckets, which fold the same four readings.
    let mut raw = Vec::new();
    engine
        .range_into(S, Timestamp::ZERO, Timestamp::MAX, &mut raw)
        .unwrap();
    assert_eq!(
        raw[..4],
        all[..4],
        "reverted segment serves its original readings"
    );
    let buckets = engine
        .buckets(S, Timestamp::ZERO, Timestamp::MAX)
        .expect("compacted segment serves buckets");
    let folded: u64 = buckets.iter().map(|b| b.count).sum();
    assert_eq!(
        folded, 4,
        "the durable compacted segment folds its 4 readings"
    );
}

#[test]
fn ring_overwrite_of_durable_data_is_not_eviction_and_expiry_counts_once() {
    let fs = Arc::new(SimFs::new());
    let cfg = EngineConfig {
        segment_max_readings: 4,
        wal_sync_every: 1,
        retention_segments: Some(2),
        ..EngineConfig::default()
    };
    // Tiny ring: 32 readings overwrite 28 slots while all of them flow to
    // segments; retention keeps the newest 2 segments (8 readings) and
    // expires 6 (24 readings).
    let backend = backend_over(&fs, BackendKind::Hybrid, cfg, 4);
    for r in readings(32) {
        backend.insert_batch(S, &[r]);
    }
    let ring_evicted = backend.store().sensor_health(S).unwrap().evicted;
    assert_eq!(ring_evicted, 28, "the ring itself overwrote 28 slots");
    let report = backend.health_report();
    let archived_evicted = report.sensor(S).unwrap().evicted;
    // Regression: the archive-level count is retention expiry alone — not
    // the ring overwrites (28), and not ring + expiry double-counted (52).
    assert_eq!(archived_evicted, 24);
    assert_eq!(report.total_evicted(), 24);
    assert_eq!(backend.durable_len(), 8);
}
