//! Integration tests spanning all four crates: simulator → telemetry →
//! framework capabilities → closed-loop actuation.

use hpc_oda::core::analytics_type::AnalyticsType;
use hpc_oda::core::capability::{Artifact, Capability, CapabilityContext};
use hpc_oda::core::cells;
use hpc_oda::core::pipeline::StagedPipeline;
use hpc_oda::core::registry::CapabilityRegistry;
use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};
use hpc_oda::telemetry::reading::Timestamp;
use std::sync::Arc;

fn ctx_for(dc: &DataCenter) -> CapabilityContext {
    CapabilityContext::new(
        Arc::clone(dc.store()),
        dc.registry().clone(),
        TimeRange::new(Timestamp::ZERO, dc.now() + 1),
        dc.now(),
    )
}

#[test]
fn telemetry_agrees_with_simulator_ground_truth() {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(5)
        .build();
    dc.run_for_hours(2.0);
    let snap = dc.snapshot();
    let q = QueryEngine::new(dc.store());
    // The latest archived IT power matches the snapshot.
    let it = dc.registry().lookup("/facility/power/it_kw").unwrap();
    let latest = Query::sensors(it)
        .range(TimeRange::all())
        .aggregate(Aggregation::Last)
        .run(&q)
        .scalar()
        .unwrap();
    assert!(
        (latest - snap.it_power_kw).abs() < 0.5,
        "telemetry {latest} vs truth {}",
        snap.it_power_kw
    );
    // Sum of node powers ≈ IT power.
    let node_sum: f64 = (0..dc.node_count())
        .map(|i| {
            let s = dc
                .registry()
                .lookup(&format!("/hw/node{i}/power_w"))
                .unwrap();
            Query::sensors(s)
                .range(TimeRange::all())
                .aggregate(Aggregation::Last)
                .run(&q)
                .scalar()
                .unwrap()
        })
        .sum();
    assert!(
        (node_sum / 1_000.0 - snap.it_power_kw).abs() < 0.1,
        "node sum {} vs {}",
        node_sum / 1_000.0,
        snap.it_power_kw
    );
}

#[test]
fn descriptive_kpis_match_physics() {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(6)
        .build();
    dc.run_for_hours(2.0);
    let out = cells::descriptive::FacilityDashboard::new().execute(&ctx_for(&dc));
    let pue = out.iter().find_map(|a| a.kpi("pue")).unwrap();
    // Energy-weighted PUE from the simulator's own accounting.
    let snap = dc.snapshot();
    let truth = snap.utility_energy_kwh / snap.it_energy_kwh;
    assert!(
        (pue - truth).abs() < 0.15,
        "dashboard PUE {pue:.3} vs energy-ratio {truth:.3}"
    );
}

#[test]
fn full_sixteen_cell_pass_on_a_live_site() {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(7)
        .build();
    dc.run_for_hours(3.0);
    let mut registry = CapabilityRegistry::new();
    for c in cells::all_sixteen() {
        registry.register(c);
    }
    assert!(registry.coverage().gaps.is_empty());
    let results = registry.execute_all(&ctx_for(&dc));
    assert_eq!(results.len(), 16);
    // Dashboards, forecasters and tuners must produce output on any live
    // site. Detectors are rightly silent on a healthy one, and the
    // accounting-fed capabilities were given no records here.
    let always_on = [
        "facility-dashboard",
        "hardware-dashboard",
        "infra-forecaster",
        "hardware-forecaster",
        "workload-forecaster",
        "cooling-optimizer",
        "scheduler-tuner",
        "app-auto-tuner",
    ];
    for (name, artifacts) in &results {
        if always_on.contains(&name.as_str()) {
            assert!(!artifacts.is_empty(), "{name} produced nothing");
        }
    }
    // And no detector produced a false alarm on the healthy site.
    for (name, artifacts) in &results {
        for a in artifacts {
            assert!(
                !matches!(a, Artifact::Diagnosis { .. }),
                "{name} raised a false alarm: {a:?}"
            );
        }
    }
}

#[test]
fn closed_loop_dvfs_actually_reduces_power() {
    // Run, read telemetry through the framework, apply its prescriptions,
    // verify the physics responded — the full ODA loop.
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(8)
        .build();
    dc.run_for_hours(1.0);
    let before: f64 = (0..dc.node_count())
        .map(|i| dc.node(NodeId(i as u32)).freq_ghz())
        .sum();
    let out = cells::prescriptive::DvfsTuner::new().execute(&ctx_for(&dc));
    let mut applied = 0;
    for a in &out {
        if let Artifact::Prescription {
            action, setting, ..
        } = a
        {
            if let Some(rest) = action.strip_suffix("/freq_ghz") {
                let idx: u32 = rest.trim_start_matches("node").parse().unwrap();
                dc.set_node_freq(NodeId(idx), setting.parse().unwrap());
                applied += 1;
            }
        }
    }
    assert!(applied > 0, "an active site must yield DVFS prescriptions");
    let after: f64 = (0..dc.node_count())
        .map(|i| dc.node(NodeId(i as u32)).freq_ghz())
        .sum();
    assert!(after < before, "clocks must drop: {after} vs {before}");
}

#[test]
fn staged_pipeline_makes_prescriptive_proactive() {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(9)
        .build();
    dc.run_for_hours(2.0);
    // Without the predictive stage: the optimizer reacts to current
    // weather.
    let mut reactive_only = StagedPipeline::new().with_stage(
        AnalyticsType::Prescriptive,
        Box::new(cells::prescriptive::CoolingOptimizer::new()),
    );
    let run_r = reactive_only.run(ctx_for(&dc));
    // With it: the optimizer consumes the forecast.
    let mut proactive = StagedPipeline::new()
        .with_stage(
            AnalyticsType::Predictive,
            Box::new(cells::predictive::InfraForecaster::new()),
        )
        .with_stage(
            AnalyticsType::Prescriptive,
            Box::new(cells::prescriptive::CoolingOptimizer::new()),
        );
    let run_p = proactive.run(ctx_for(&dc));
    let impact = |run: &hpc_oda::core::pipeline::PipelineRun| {
        run.stage_artifacts(AnalyticsType::Prescriptive)
            .iter()
            .find_map(|a| match a {
                Artifact::Prescription {
                    action,
                    expected_impact,
                    ..
                } if action == "cooling_setpoint_c" => Some(expected_impact.clone()),
                _ => None,
            })
            .unwrap()
    };
    assert!(!impact(&run_r).contains("proactively"));
    assert!(impact(&run_p).contains("proactively"));
}

#[test]
fn runs_are_deterministic_across_the_whole_stack() {
    let run = |seed| {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(seed)
            .build();
        dc.inject_fault(Fault::new(
            FaultKind::FanFailure { node: NodeId(1) },
            Timestamp::from_mins(20),
            Timestamp::from_hours(2),
        ));
        dc.run_for_hours(2.0);
        let diags = cells::diagnostic::NodeAnomalyDetector::new().execute(&ctx_for(&dc));
        (
            dc.snapshot().it_energy_kwh,
            dc.snapshot().completed,
            format!("{diags:?}"),
        )
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn job_records_flow_to_application_pillar_cells() {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(10)
        .build();
    dc.run_for_hours(8.0);
    let records = dc.finished_jobs().to_vec();
    assert!(records.len() > 20, "need a populated accounting database");
    let mut predictor = cells::predictive::JobDurationPredictor::new();
    predictor.set_records(records.clone());
    let out = predictor.execute(&ctx_for(&dc));
    let mape = out.iter().find_map(|a| a.kpi("job_runtime_mape")).unwrap();
    let baseline = out
        .iter()
        .find_map(|a| a.kpi("walltime_baseline_mape"))
        .unwrap();
    assert!(
        mape < baseline,
        "prediction {mape} must beat walltime {baseline}"
    );
}
