//! Property-based tests of the framework's core data structures: grid
//! cells, footprints, and the survey corpus invariants.

use hpc_oda::core::analytics_type::AnalyticsType;
use hpc_oda::core::grid::{GridCell, GridFootprint};
use hpc_oda::core::pillar::Pillar;
use hpc_oda::core::survey;
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = GridCell> {
    (0usize..16).prop_map(GridCell::from_index)
}

fn arb_footprint() -> impl Strategy<Value = GridFootprint> {
    any::<u16>().prop_map(GridFootprint)
}

proptest! {
    #[test]
    fn cell_index_round_trips(cell in arb_cell()) {
        prop_assert_eq!(GridCell::from_index(cell.index()), cell);
        prop_assert!(cell.index() < 16);
    }

    #[test]
    fn footprint_with_covers(fp in arb_footprint(), cell in arb_cell()) {
        let with = fp.with(cell);
        prop_assert!(with.covers(cell));
        prop_assert!(with.count() >= fp.count());
        // Adding twice is idempotent.
        prop_assert_eq!(with.with(cell), with);
    }

    #[test]
    fn union_and_intersection_laws(a in arb_footprint(), b in arb_footprint()) {
        let u = a.union(b);
        let i = a.intersection(b);
        prop_assert_eq!(u, b.union(a));
        prop_assert_eq!(i, b.intersection(a));
        prop_assert!(u.count() >= a.count().max(b.count()));
        prop_assert!(i.count() <= a.count().min(b.count()));
        // |A∪B| + |A∩B| = |A| + |B|.
        prop_assert_eq!(u.count() + i.count(), a.count() + b.count());
        // Every covered cell of the union comes from a or b.
        for cell in u.cells() {
            prop_assert!(a.covers(cell) || b.covers(cell));
        }
    }

    #[test]
    fn jaccard_is_a_similarity(a in arb_footprint(), b in arb_footprint()) {
        let j = a.jaccard(b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((a.jaccard(b) - b.jaccard(a)).abs() < 1e-15);
        prop_assert!((a.jaccard(a) - 1.0).abs() < 1e-15);
        if a.intersection(b).count() == 0 && a.count() + b.count() > 0 {
            prop_assert_eq!(j, 0.0);
        }
    }

    #[test]
    fn footprint_cells_round_trip(fp in arb_footprint()) {
        let rebuilt = GridFootprint::from_cells(&fp.cells());
        prop_assert_eq!(rebuilt, fp);
        prop_assert_eq!(fp.cells().len() as u32, fp.count());
    }

    #[test]
    fn pillar_and_type_views_are_consistent(fp in arb_footprint()) {
        // A footprint covers a pillar iff one of its cells is in it.
        for p in Pillar::ALL {
            let in_view = fp.pillars().contains(&p);
            let has_cell = fp.cells().iter().any(|c| c.pillar == p);
            prop_assert_eq!(in_view, has_cell);
        }
        for t in AnalyticsType::ALL {
            let in_view = fp.types().contains(&t);
            let has_cell = fp.cells().iter().any(|c| c.analytics == t);
            prop_assert_eq!(in_view, has_cell);
        }
        prop_assert_eq!(fp.is_multi_pillar(), fp.pillars().len() > 1);
    }
}

#[test]
fn survey_corpus_is_internally_consistent() {
    let corpus = survey::corpus();
    // Every entry has at least one citation; citations are in the paper's
    // reference range.
    for e in &corpus {
        assert!(!e.citations.is_empty(), "{} has no citations", e.use_case);
        for &c in e.citations {
            assert!((1..=72).contains(&c), "{} cites [{}]", e.use_case, c);
        }
    }
    // Footprints derived from the corpus must cover exactly the cells the
    // entries claim.
    let fps = survey::citation_footprints();
    for e in &corpus {
        for &c in e.citations {
            assert!(
                fps[&c].covers(e.cell),
                "[{}]'s footprint must cover {}",
                c,
                e.cell
            );
        }
    }
    // Stats add up.
    let stats = survey::pillar_stats();
    assert_eq!(stats.total, fps.len());
    assert_eq!(
        stats.multi_pillar,
        fps.values().filter(|f| f.is_multi_pillar()).count()
    );
}

#[test]
fn table1_grid_matches_corpus() {
    let grid = survey::table1();
    let total: usize = grid.iter().map(|(_, v)| v.len()).sum();
    assert_eq!(total, survey::corpus().len());
    for (cell, entries) in grid.iter() {
        for e in entries {
            assert_eq!(e.cell, cell);
        }
    }
}
