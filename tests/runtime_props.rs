//! Property tests of the deterministic parallel capability scheduler.
//!
//! The scheduler's replay contract: for a fixed `(registry, seed)`, every
//! worker-pool width must produce **byte-identical** pipeline output — the
//! same artifact sequence (checked via the order-sensitive output digest),
//! the same per-capability spans (including which capabilities panicked),
//! and the same deterministic metrics counters. Scheduling telemetry
//! (steal/busy/contention counters and all latency histograms) is
//! explicitly exempt: it describes *how* work was executed, not *what* was
//! computed.
//!
//! The randomized registries deliberately include hostile members: failing
//! capabilities (panic mid-execute), abstaining ones (no artifacts), and
//! randomized ones (output derived from the scheduler-assigned
//! [`CapabilityContext::rng_seed`] and the upstream snapshot).

use hpc_oda::core::analytics_type::AnalyticsType;
use hpc_oda::core::capability::{Artifact, Capability, CapabilityContext};
use hpc_oda::core::grid::{GridCell, GridFootprint};
use hpc_oda::core::pipeline::StagedPipeline;
use hpc_oda::core::runtime::{CapabilityScheduler, RuntimeConfig};
use hpc_oda::telemetry::metrics::MetricsRegistry;
use hpc_oda::telemetry::query::TimeRange;
use hpc_oda::telemetry::reading::Timestamp;
use hpc_oda::telemetry::sensor::SensorRegistry;
use hpc_oda::telemetry::store::TimeSeriesStore;
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::Once;

/// Panic payload marker for deliberately failing capabilities; the quiet
/// panic hook suppresses only these, so genuine test failures still print.
const FAILURE_MARKER: &str = "synthetic-capability-failure";

static QUIET_HOOK: Once = Once::new();

fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let deliberate = payload
                .downcast_ref::<String>()
                .map(|s| s.contains(FAILURE_MARKER))
                .unwrap_or(false)
                || payload
                    .downcast_ref::<&str>()
                    .map(|s| s.contains(FAILURE_MARKER))
                    .unwrap_or(false);
            if !deliberate {
                prev(info);
            }
        }));
    });
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Behaviour {
    /// Emit `n` artifacts derived from the rng seed and upstream snapshot.
    Emit(usize),
    /// Return no artifacts.
    Abstain,
    /// Panic mid-execute; the scheduler must isolate it.
    Fail,
}

#[derive(Debug, Clone)]
struct CapSpec {
    stage: AnalyticsType,
    cell: GridCell,
    behaviour: Behaviour,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct SyntheticCap {
    name: String,
    spec: CapSpec,
}

impl Capability for SyntheticCap {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        "randomized property-test capability"
    }

    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(self.spec.cell)
    }

    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        match self.spec.behaviour {
            Behaviour::Fail => panic!("{FAILURE_MARKER}: {}", self.name),
            Behaviour::Abstain => Vec::new(),
            Behaviour::Emit(n) => {
                // Output depends on the scheduler-assigned seed *and* the
                // upstream snapshot, so any visibility or sequencing drift
                // across worker counts changes the digest.
                let mut x = ctx.rng_seed ^ (ctx.upstream.len() as u64).wrapping_mul(0x9e37);
                (0..n)
                    .map(|i| {
                        x = splitmix64(x);
                        Artifact::Kpi {
                            name: format!("{}-k{i}", self.name),
                            value: (x >> 11) as f64 / (1u64 << 53) as f64,
                        }
                    })
                    .collect()
            }
        }
    }
}

fn arb_spec() -> impl Strategy<Value = CapSpec> {
    (0usize..4, 0usize..16, 0usize..8).prop_map(|(s, cell, b)| CapSpec {
        stage: AnalyticsType::ALL[s],
        cell: GridCell::from_index(cell),
        behaviour: match b {
            0 => Behaviour::Fail,
            1 => Behaviour::Abstain,
            n => Behaviour::Emit(n % 3 + 1),
        },
    })
}

/// Counters describing *how* the pass was scheduled rather than what it
/// computed — the only metrics allowed to differ across worker counts.
fn is_scheduling_telemetry(id: &str) -> bool {
    id.contains("steal") || id.contains("busy") || id.contains("contention")
}

/// Observable outcome of a multi-pass run at one worker count: per-pass
/// output digests, per-pass span traces, and deterministic counters.
#[derive(Debug, PartialEq)]
struct Observed {
    digests: Vec<u64>,
    spans: Vec<String>,
    counters: Vec<(String, u64)>,
}

fn run_with_workers(specs: &[CapSpec], seed: u64, workers: usize, passes: usize) -> Observed {
    let metrics = MetricsRegistry::new();
    let mut pipeline = StagedPipeline::new();
    pipeline.set_metrics(metrics.clone());
    for (i, spec) in specs.iter().enumerate() {
        pipeline.add_stage(
            spec.stage,
            Box::new(SyntheticCap {
                name: format!("prop-cap-{i:02}"),
                spec: spec.clone(),
            }),
        );
    }
    let mut scheduler = CapabilityScheduler::with_metrics(
        RuntimeConfig::serial()
            .with_workers(workers)
            .with_seed(seed),
        metrics.clone(),
    );
    let store = Arc::new(TimeSeriesStore::with_capacity(8));
    let registry = SensorRegistry::new();

    let mut observed = Observed {
        digests: Vec::with_capacity(passes),
        spans: Vec::new(),
        counters: Vec::new(),
    };
    for pass in 0..passes {
        let ctx = CapabilityContext::new(
            Arc::clone(&store),
            registry.clone(),
            TimeRange::all(),
            Timestamp::from_millis(1_000 * (pass as u64 + 1)),
        );
        let run = scheduler.run(&mut pipeline, ctx);
        observed.digests.push(run.output_digest());
        for span in &run.spans {
            observed.spans.push(format!(
                "{pass}/{:?}/{}/{}/{}",
                span.stage, span.capability, span.artifacts, span.panicked
            ));
        }
    }
    observed.counters = metrics
        .snapshot()
        .counters
        .iter()
        .filter(|c| !is_scheduling_telemetry(&c.id))
        .map(|c| (c.id.clone(), c.value))
        .collect();
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scheduler_output_is_worker_count_invariant(
        specs in prop::collection::vec(arb_spec(), 1..12),
        seed in any::<u64>(),
    ) {
        install_quiet_hook();
        let passes = 2;
        let baseline = run_with_workers(&specs, seed, 1, passes);

        // Replay at the same width must be bit-identical (determinism).
        let replay = run_with_workers(&specs, seed, 1, passes);
        prop_assert_eq!(&baseline, &replay);

        // Every pool width must match the serial baseline exactly.
        for workers in [2usize, 4, 8] {
            let parallel = run_with_workers(&specs, seed, workers, passes);
            prop_assert_eq!(
                &baseline, &parallel,
                "workers={} diverged from serial baseline", workers
            );
        }

        // Sanity on the trace itself: one span per capability per pass,
        // failing capabilities marked panicked and artifact-free.
        prop_assert_eq!(baseline.spans.len(), specs.len() * passes);
        let panicked = baseline.spans.iter().filter(|s| s.ends_with("/true")).count();
        let failing = specs.iter().filter(|s| s.behaviour == Behaviour::Fail).count();
        prop_assert_eq!(panicked, failing * passes);
    }

    #[test]
    fn different_seeds_give_different_randomized_output(
        specs in prop::collection::vec(arb_spec(), 2..10),
        seed in any::<u64>(),
    ) {
        install_quiet_hook();
        // Only meaningful when at least one capability emits seed-derived
        // artifacts.
        prop_assume!(specs.iter().any(|s| matches!(s.behaviour, Behaviour::Emit(_))));
        let a = run_with_workers(&specs, seed, 4, 1);
        let b = run_with_workers(&specs, seed ^ 0xdead_beef, 4, 1);
        prop_assert_ne!(a.digests, b.digests);
    }
}
