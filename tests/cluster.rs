//! Distributed-collector integration suite: the sharded hierarchy must be
//! *observationally identical* to the unsharded site — every scatter-gather
//! query answers with a digest bit-identical to the single-store engine's,
//! at any shard count, through a mid-run node failure and rebalance, and
//! through the serving frontend — while per-shard health sums account for
//! exactly the readings the unsharded archive holds.

use hpc_oda::core::capability::{Artifact, Capability, CapabilityContext};
use hpc_oda::core::grid::{GridCell, GridFootprint};
use hpc_oda::serve::net::SimNet;
use hpc_oda::serve::server::Server;
use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::cluster::{ClusterCoordinator, EdgeTask, EdgeView};
use hpc_oda::telemetry::metrics::MetricsRegistry;
use hpc_oda::telemetry::query::{Aggregation, Query, QueryEngine, TimeRange};
use hpc_oda::telemetry::reading::Timestamp;
use std::collections::BTreeMap;
use std::sync::Arc;

const TICKS: u64 = 1_800; // 30 simulated minutes at 1 s per tick

fn mins(m: u64) -> Timestamp {
    Timestamp::from_millis(m * 60_000)
}

/// The query battery: every result shape the coordinator merges, over
/// patterns that cross shard boundaries, plus rate/raw paths.
fn battery() -> Vec<Query> {
    vec![
        Query::sensors("/facility/**").aggregate(Aggregation::Mean),
        Query::sensors("/hw/**").aggregate(Aggregation::Max),
        Query::sensors("/hw/*/power_w").downsample(60_000, Aggregation::Mean),
        Query::sensors("/facility/power/*").align(120_000),
        Query::sensors("/hw/node0/temp_c").range(TimeRange::new(mins(5), mins(25))),
        Query::sensors("/facility/power/it_kw")
            .rate()
            .aggregate(Aggregation::Sum),
        Query::sensors("/sched/**").aggregate(Aggregation::Count),
    ]
}

/// Digests of the battery against an unsharded site's store.
fn unsharded_digests(dc: &DataCenter) -> Vec<u64> {
    let engine = QueryEngine::new(dc.store()).with_registry(dc.registry().clone());
    battery()
        .into_iter()
        .map(|q| q.run(&engine).digest())
        .collect()
}

/// Digests of the battery through a coordinator's scatter-gather path.
fn sharded_digests(cluster: &ClusterCoordinator) -> Vec<u64> {
    battery()
        .into_iter()
        .map(|q| cluster.query(q).digest())
        .collect()
}

fn build(seed: u64, shards: usize, schedule: Option<FaultSchedule>) -> DataCenter {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(seed)
        .metrics(MetricsRegistry::new())
        .shards(shards)
        .build();
    if let Some(s) = schedule {
        dc.set_fault_schedule(s);
    }
    dc.run_ticks(TICKS);
    if let Some(cluster) = dc.cluster() {
        cluster.fence();
    }
    dc
}

#[test]
fn scatter_gather_digests_are_bit_identical_at_any_shard_count() {
    let baseline = unsharded_digests(&build(31, 0, None));
    for shards in [1usize, 2, 4] {
        let dc = build(31, shards, None);
        let cluster = dc.cluster().expect("sharded site has a coordinator");
        assert_eq!(cluster.shard_count(), shards);
        assert_eq!(
            sharded_digests(cluster),
            baseline,
            "digests diverged at {shards} shard(s)"
        );
        // The unsharded engine over the same site agrees too: both planes
        // ingested the identical stream.
        assert_eq!(unsharded_digests(&dc), baseline);
    }
}

#[test]
fn node_failure_rebalance_loses_no_accepted_reading() {
    let schedule = |seed| {
        FaultSchedule::new(seed).with(
            TelemetryFaultKind::NodeFailure { node: NodeId(1) },
            mins(10),
            mins(20),
        )
    };
    // The fault blacks out node1's streams in BOTH worlds; the sharded one
    // additionally loses a collector shard and must rebalance its slice
    // out of the durable tier.
    let baseline = unsharded_digests(&build(32, 0, Some(schedule(32))));
    for shards in [2usize, 4] {
        let dc = build(32, shards, Some(schedule(32)));
        let cluster = dc.cluster().expect("sharded site has a coordinator");
        assert_eq!(
            cluster.rebalances(),
            1,
            "the failure at minute 10 must trigger exactly one rebalance"
        );
        assert_eq!(cluster.alive_shards().len(), shards - 1);
        assert!(cluster.epoch() > 0);
        assert_eq!(
            sharded_digests(cluster),
            baseline,
            "digests diverged after rebalance at {shards} shard(s)"
        );
        // The dead shard reports not-alive and owns nothing.
        let occ = cluster.occupancy();
        assert_eq!(occ.len(), shards);
        let dead: Vec<_> = occ.iter().filter(|o| !o.alive).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].sensors_owned, 0);
    }

    // A single-shard cluster cannot shed its last shard: the coordinator
    // restarts it in place over its own durable tier instead, and still
    // answers bit-identically.
    let dc = build(32, 1, Some(schedule(32)));
    let cluster = dc.cluster().expect("sharded site has a coordinator");
    assert_eq!(
        cluster.rebalances(),
        0,
        "restart-in-place is not a rebalance"
    );
    assert!(
        cluster.epoch() > 0,
        "the restart is still a membership event"
    );
    assert_eq!(cluster.alive_shards().len(), 1);
    assert_eq!(sharded_digests(cluster), baseline);
}

#[test]
fn per_shard_health_sums_match_the_unsharded_archive() {
    let unsharded = build(33, 0, None);
    let dc = build(33, 3, None);
    let cluster = dc.cluster().expect("sharded site has a coordinator");

    let expected = unsharded.store().health_report();
    let health = cluster.health();
    assert_eq!(health.len(), 3);
    let readings: usize = health.iter().map(|h| h.report.total_len()).sum();
    let evicted: u64 = health.iter().map(|h| h.report.total_evicted()).sum();
    assert_eq!(readings, expected.total_len());
    assert_eq!(evicted, expected.total_evicted());

    // Occupancy partitions the registry exactly: every sensor owned once.
    let occ = cluster.occupancy();
    let owned: u64 = occ.iter().map(|o| o.sensors_owned).sum();
    assert_eq!(owned as usize, dc.registry().len());
    assert!(occ.iter().all(|o| o.alive && o.sensors_owned > 0));
    // Each shard durably archived what it published.
    for h in &health {
        assert!(h.durable_len > 0, "{} archived nothing", h.shard);
        assert!(h.published > 0, "{} published nothing", h.shard);
    }
}

#[test]
fn edge_tasks_cover_each_shard_slice_exactly_once() {
    let unsharded = build(34, 0, None);
    let dc = build(34, 3, None);
    let cluster = dc.cluster().expect("sharded site has a coordinator");

    // Shard-local edge task: per-sensor reading counts over the *local*
    // store only — the anomaly-detector placement from the paper's edge
    // tier, where each collector scans just its own slice.
    let task: EdgeTask = Arc::new(|view: &EdgeView<'_>| {
        view.registry
            .all()
            .into_iter()
            .filter_map(|meta| {
                let n = view
                    .store
                    .range(meta.id, Timestamp::ZERO, Timestamp(u64::MAX))
                    .len();
                (n > 0).then(|| (meta.name.to_string(), n as f64))
            })
            .collect()
    });
    let gathered = cluster.run_edge(task);
    assert_eq!(gathered.len(), 3);

    // Union across shards: every sensor appears exactly once (ownership is
    // a partition) with exactly the unsharded archive's count.
    let mut union: BTreeMap<String, f64> = BTreeMap::new();
    for (_, samples) in gathered {
        for (name, n) in samples {
            assert!(
                union.insert(name.clone(), n).is_none(),
                "{name} reported by two shards"
            );
        }
    }
    for meta in unsharded.registry().all() {
        let expected = unsharded
            .store()
            .range(meta.id, Timestamp::ZERO, Timestamp(u64::MAX))
            .len();
        if expected > 0 {
            assert_eq!(
                union.get(meta.name.as_ref()).copied(),
                Some(expected as f64),
                "{} count diverged",
                meta.name
            );
        }
    }
}

/// A global capability that consumes gathered aggregates: through the
/// coordinator when the site is sharded, straight off the store otherwise.
struct GlobalMeanKpi;

impl Capability for GlobalMeanKpi {
    fn name(&self) -> &str {
        "global-mean-kpi"
    }
    fn description(&self) -> &str {
        "site-wide mean IT power from gathered shard aggregates"
    }
    fn footprint(&self) -> GridFootprint {
        GridFootprint::single(GridCell::new(
            hpc_oda::core::analytics_type::AnalyticsType::Descriptive,
            hpc_oda::core::pillar::Pillar::BuildingInfrastructure,
        ))
    }
    fn execute(&mut self, ctx: &CapabilityContext) -> Vec<Artifact> {
        let q = Query::sensors("/facility/power/it_kw").aggregate(Aggregation::Mean);
        let result = match &ctx.cluster {
            Some(cluster) => cluster.query(q),
            None => {
                let engine = QueryEngine::new(&ctx.store).with_registry(ctx.registry.clone());
                q.run(&engine)
            }
        };
        vec![Artifact::Kpi {
            name: "it_kw_mean".into(),
            value: result.scalar().unwrap_or(f64::NAN),
        }]
    }
}

#[test]
fn global_capabilities_see_identical_aggregates_through_the_cluster() {
    let unsharded = build(35, 0, None);
    let sharded = build(35, 4, None);

    let ctx_plain = CapabilityContext::new(
        Arc::clone(unsharded.store()),
        unsharded.registry().clone(),
        TimeRange::all(),
        unsharded.now(),
    );
    let ctx_cluster = CapabilityContext::new(
        Arc::clone(sharded.store()),
        sharded.registry().clone(),
        TimeRange::all(),
        sharded.now(),
    )
    .with_cluster(Arc::clone(sharded.cluster().expect("sharded site")));

    let a = GlobalMeanKpi.execute(&ctx_plain);
    let b = GlobalMeanKpi.execute(&ctx_cluster);
    assert_eq!(a, b, "gathered aggregate diverged from the unsharded KPI");
    assert!(a[0].kpi("it_kw_mean").unwrap().is_finite());
}

// ----- serving-layer round trip ---------------------------------------------

type Response = (u16, Vec<(String, String)>, Vec<u8>);

fn round_trip(net: &Arc<SimNet>, server: &mut Server<SimNet>, raw: &str) -> Response {
    let conn = net.connect();
    net.client_send(conn, raw.as_bytes());
    let mut got: Vec<u8> = Vec::new();
    for _ in 0..4096 {
        server.poll();
        got.extend(net.client_recv(conn));
        if let Some(parsed) = try_parse(&got) {
            net.client_close(conn);
            server.poll();
            return parsed;
        }
    }
    panic!("no complete response after 4096 polls");
}

fn try_parse(raw: &[u8]) -> Option<Response> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = String::from_utf8_lossy(&raw[..head_end - 4]).into_owned();
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")?
        .1
        .parse()
        .ok()?;
    (raw.len() >= head_end + len).then(|| (status, headers, raw[head_end..head_end + len].to_vec()))
}

#[test]
fn serving_frontend_fans_out_transparently_over_shards() {
    let unsharded = build(36, 0, None);
    let sharded = build(36, 3, None);

    let wire = Query::sensors("/facility/**")
        .aggregate(Aggregation::Mean)
        .to_json();
    let post = format!(
        "POST /api/v1/query HTTP/1.1\r\nx-tenant: ops\r\ncontent-length: {}\r\n\r\n{wire}",
        wire.len()
    );

    let net_a = Arc::new(SimNet::new());
    let mut srv_a = unsharded.serve(Arc::clone(&net_a));
    let (status_a, headers_a, body_a) = round_trip(&net_a, &mut srv_a, &post);

    let net_b = Arc::new(SimNet::new());
    let mut srv_b = sharded.serve(Arc::clone(&net_b));
    let (status_b, headers_b, body_b) = round_trip(&net_b, &mut srv_b, &post);

    assert_eq!((status_a, status_b), (200, 200));
    let digest = |h: &[(String, String)]| {
        h.iter()
            .find(|(n, _)| n == "x-result-digest")
            .map(|(_, v)| v.clone())
            .expect("query responses carry a digest header")
    };
    assert_eq!(digest(&headers_a), digest(&headers_b));
    assert_eq!(body_a, body_b, "fan-out changed the response body");

    // The sharded site's stats report per-shard occupancy.
    let stats_req = "GET /api/v1/stats HTTP/1.1\r\nx-tenant: ops\r\n\r\n";
    let (status, _, body) = round_trip(&net_b, &mut srv_b, stats_req);
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("\"shards\""), "stats missing shards section");
    assert!(text.contains("\"occupancy\""));
    let (status, _, body) = round_trip(&net_a, &mut srv_a, stats_req);
    assert_eq!(status, 200);
    assert!(
        !String::from_utf8_lossy(&body).contains("\"shards\""),
        "unsharded stats must not report shards"
    );
}
