//! Property-based tests of the analytics algorithms: streaming estimators
//! against exact references, transform round-trips, and controller/
//! optimizer invariants.

use hpc_oda::analytics::descriptive::outlier::{quantile, trim_iqr};
use hpc_oda::analytics::descriptive::quantile::P2Quantile;
use hpc_oda::analytics::descriptive::stats::{correlation, Welford};
use hpc_oda::analytics::predictive::fft::{fft, ifft, Complex};
use hpc_oda::analytics::predictive::forecast::{Forecaster, Holt, SimpleExp};
use hpc_oda::analytics::prescriptive::pid::Pid;
use hpc_oda::analytics::prescriptive::setpoint::golden_section_min;
use proptest::prelude::*;

proptest! {
    /// Welford matches the naive two-pass computation to high precision.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e4f64..1e4, 1..500)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    /// P² stays within the sample range and lands near the exact quantile
    /// on larger samples.
    #[test]
    fn p2_is_bounded_and_close(xs in prop::collection::vec(-1e3f64..1e3, 50..400)) {
        let mut p = P2Quantile::new(0.5);
        for &x in &xs {
            p.push(x);
        }
        let est = p.value().unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo && est <= hi);
        let exact = quantile(&xs, 0.5).unwrap();
        let spread = (hi - lo).max(1e-9);
        prop_assert!(
            (est - exact).abs() <= 0.25 * spread,
            "p2 {est} vs exact {exact} (spread {spread})"
        );
    }

    /// FFT∘IFFT is the identity (up to float error) for any signal.
    #[test]
    fn fft_round_trip(xs in prop::collection::vec(-1e3f64..1e3, 1..=64)) {
        // Pad to the next power of two.
        let n = xs.len().next_power_of_two();
        let mut buf: Vec<Complex> = xs.iter().map(|&x| (x, 0.0)).collect();
        buf.resize(n, (0.0, 0.0));
        let orig = buf.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in orig.iter().zip(&buf) {
            prop_assert!((a.0 - b.0).abs() < 1e-6 * (1.0 + a.0.abs()));
            prop_assert!(b.1.abs() < 1e-6);
        }
    }

    /// Parseval: signal energy is conserved by the FFT.
    #[test]
    fn fft_parseval(xs in prop::collection::vec(-100f64..100.0, 1..=32)) {
        let n = xs.len().next_power_of_two();
        let mut buf: Vec<Complex> = xs.iter().map(|&x| (x, 0.0)).collect();
        buf.resize(n, (0.0, 0.0));
        let time_energy: f64 = buf.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    /// IQR trimming never removes more than it keeps on unimodal-ish data
    /// and is idempotent-ish: trimming the trimmed data removes nothing
    /// that the fences of the trimmed set accept... we assert the simpler
    /// invariants: output ⊆ input, order preserved.
    #[test]
    fn trim_iqr_is_a_subsequence(xs in prop::collection::vec(-1e3f64..1e3, 4..200)) {
        let out = trim_iqr(&xs, 1.5);
        prop_assert!(out.len() <= xs.len());
        // Subsequence check.
        let mut it = xs.iter();
        for v in &out {
            prop_assert!(it.any(|x| x == v));
        }
    }

    /// Forecasters stay within the data's convex hull on constant-ish
    /// series and never panic on any input.
    #[test]
    fn forecasters_are_total(xs in prop::collection::vec(-1e6f64..1e6, 0..200), h in 1usize..20) {
        let mut se = SimpleExp::new(0.4);
        let mut holt = Holt::new(0.5, 0.3);
        for &x in &xs {
            se.update(x);
            holt.update(x);
        }
        if let Some(f) = se.forecast(h) {
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(f >= lo - 1e-9 && f <= hi + 1e-9, "SES is an average");
        }
        let _ = holt.forecast(h); // must not panic; value may extrapolate
    }

    /// PID output always respects its clamp, whatever the gains and
    /// inputs.
    #[test]
    fn pid_respects_clamp(
        kp in -10f64..10.0,
        ki in -10f64..10.0,
        kd in -10f64..10.0,
        inputs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..100),
    ) {
        let mut pid = Pid::new(kp, ki, kd, -5.0, 5.0);
        for (sp, m) in inputs {
            let out = pid.update(sp, m, 0.5);
            prop_assert!((-5.0..=5.0).contains(&out));
        }
    }

    /// Golden-section finds the minimum of a random parabola within
    /// tolerance.
    #[test]
    fn golden_section_finds_parabola_min(center in -50f64..50.0, scale in 0.1f64..10.0) {
        let opt = golden_section_min(-100.0, 100.0, 1e-4, 200, |x| scale * (x - center).powi(2));
        prop_assert!((opt.knob - center).abs() < 1e-2, "knob {} vs {}", opt.knob, center);
    }

    /// Correlation is symmetric, bounded, and exactly ±1 for affine
    /// relations.
    #[test]
    fn correlation_properties(
        xs in prop::collection::vec(-1e3f64..1e3, 3..100),
        a in prop::sample::select(vec![-2.5f64, -1.0, 0.5, 3.0]),
        b in -10f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        if let Some(r) = correlation(&xs, &ys) {
            prop_assert!((r.abs() - 1.0).abs() < 1e-9, "affine → |r|=1, got {r}");
            prop_assert_eq!(r.signum(), a.signum());
            let r2 = correlation(&ys, &xs).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }
}
