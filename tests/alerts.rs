//! Integration test of the streaming alert path: simulator → telemetry
//! bus → subscription → alert engine, with no store in the loop — the
//! "automated alerts" half of descriptive ODA running the way a live
//! deployment runs it.

use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::alert::{AlertEngine, AlertRule, AlertSeverity, Condition};
use hpc_oda::telemetry::pattern::SensorPattern;
use hpc_oda::telemetry::reading::Timestamp;

#[test]
fn live_bus_subscription_drives_alerts_through_a_fault() {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(33)
        .build();
    // Subscribe to node temperatures *before* anything happens.
    let sub = dc
        .bus()
        .subscription(SensorPattern::new("/hw/*/temp_c"))
        .capacity(100_000)
        .named("alert-engine")
        .subscribe();

    // Rules: critical above 85 °C on every node temperature sensor, with
    // debounce so sampling noise cannot flap.
    let rules: Vec<AlertRule> = (0..dc.node_count())
        .map(|i| {
            AlertRule::new(
                format!("node{i}-hot"),
                dc.registry()
                    .lookup(&format!("/hw/node{i}/temp_c"))
                    .unwrap(),
                Condition::Above(85.0),
                AlertSeverity::Critical,
            )
            .with_debounce(2)
        })
        .collect();
    let mut engine = AlertEngine::new(rules);

    // A fan fails on node 2 while the fleet is under stress load.
    dc.inject_fault(Fault::new(
        FaultKind::FanFailure { node: NodeId(2) },
        Timestamp::from_mins(10),
        Timestamp::from_mins(40),
    ));
    dc.submit_stress_test(dc.node_count() as u32, 3_600.0);
    dc.run_for_hours(1.5);

    // Drain the subscription into the engine, tracking transitions.
    let mut raised_at = None;
    let mut cleared_at = None;
    while let Ok(batch) = sub.rx.try_recv() {
        for r in &batch.readings {
            for ev in engine.observe(batch.sensor, *r) {
                if ev.rule == "node2-hot" {
                    if ev.active && raised_at.is_none() {
                        raised_at = Some(r.ts);
                    }
                    if !ev.active && raised_at.is_some() {
                        cleared_at = Some(r.ts);
                    }
                }
            }
        }
    }
    let raised = raised_at.expect("the failing node must raise its alert");
    assert!(
        raised >= Timestamp::from_mins(10),
        "alert before the fault began: {raised}"
    );
    let cleared = cleared_at.expect("alert must clear once the fan recovers");
    assert!(cleared > Timestamp::from_mins(40), "cleared at {cleared}");
    // Nothing was dropped on the generously-sized subscription.
    assert_eq!(sub.dropped(), 0);
}

#[test]
fn healthy_run_raises_no_critical_alerts() {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(34)
        .build();
    let sub = dc
        .bus()
        .subscription(SensorPattern::new("/hw/*/temp_c"))
        .capacity(100_000)
        .named("alert-engine-healthy")
        .subscribe();
    let rules: Vec<AlertRule> = (0..dc.node_count())
        .map(|i| {
            AlertRule::new(
                format!("node{i}-hot"),
                dc.registry()
                    .lookup(&format!("/hw/node{i}/temp_c"))
                    .unwrap(),
                Condition::Above(85.0),
                AlertSeverity::Critical,
            )
        })
        .collect();
    let mut engine = AlertEngine::new(rules);
    dc.run_for_hours(1.0);
    while let Ok(batch) = sub.rx.try_recv() {
        for r in &batch.readings {
            engine.observe(batch.sensor, *r);
        }
    }
    assert_eq!(engine.fired_total(), 0);
}
