//! Property-based tests of the telemetry substrate: the ring-buffer store
//! against a reference model, and query-layer invariants.

use hpc_oda::telemetry::query::{aggregate_readings, Aggregation, Query, QueryEngine, TimeRange};
use hpc_oda::telemetry::reading::{Reading, Timestamp};
use hpc_oda::telemetry::sensor::SensorId;
use hpc_oda::telemetry::store::{RingBuffer, TimeSeriesStore};
use proptest::prelude::*;

/// Arbitrary valid (monotone-timestamp, finite) reading sequences.
fn arb_series(max_len: usize) -> impl Strategy<Value = Vec<Reading>> {
    prop::collection::vec((0u64..1_000, -1e6f64..1e6), 0..max_len).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(dt, v)| {
                ts += dt;
                Reading::new(Timestamp::from_millis(ts), v)
            })
            .collect()
    })
}

proptest! {
    /// The ring buffer behaves exactly like "a Vec that keeps the last N".
    #[test]
    fn ring_buffer_matches_vec_model(series in arb_series(200), cap in 1usize..64) {
        let mut buf = RingBuffer::new(cap);
        let mut model: Vec<Reading> = Vec::new();
        for r in &series {
            let accepted = buf.push(*r);
            prop_assert!(accepted); // series is valid by construction
            model.push(*r);
            if model.len() > cap {
                model.remove(0);
            }
        }
        prop_assert_eq!(buf.to_vec(), model.clone());
        prop_assert_eq!(buf.len(), model.len());
        prop_assert_eq!(buf.oldest(), model.first().copied());
        prop_assert_eq!(buf.newest(), model.last().copied());
    }

    /// Range queries return exactly the model's filtered slice.
    #[test]
    fn range_query_matches_model(
        series in arb_series(120),
        cap in 8usize..128,
        start in 0u64..60_000,
        width in 0u64..60_000,
    ) {
        let mut buf = RingBuffer::new(cap);
        let mut model: Vec<Reading> = Vec::new();
        for r in &series {
            buf.push(*r);
            model.push(*r);
            if model.len() > cap {
                model.remove(0);
            }
        }
        let (s, e) = (Timestamp::from_millis(start), Timestamp::from_millis(start + width));
        let mut got = Vec::new();
        buf.range_into(s, e, &mut got);
        let expected: Vec<Reading> = model
            .iter()
            .copied()
            .filter(|r| r.ts >= s && r.ts < e)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Out-of-order and non-finite data never lands in the store.
    #[test]
    fn store_rejects_garbage(vals in prop::collection::vec((0u64..100, -10f64..10.0), 1..50)) {
        let store = TimeSeriesStore::with_capacity(128);
        let s = SensorId(0);
        let mut last_ts = None;
        for (ts, v) in vals {
            let accepted = store.insert(s, Reading::new(Timestamp::from_millis(ts), v));
            match last_ts {
                Some(prev) if ts < prev => prop_assert!(!accepted),
                _ => {
                    prop_assert!(accepted);
                    last_ts = Some(ts);
                }
            }
        }
        // NaN is always rejected.
        prop_assert!(!store.insert(s, Reading::new(Timestamp::from_millis(10_000), f64::NAN)));
    }

    /// Aggregation invariants: min ≤ mean ≤ max, quantile monotone,
    /// count exact.
    #[test]
    fn aggregation_invariants(series in arb_series(100)) {
        prop_assume!(!series.is_empty());
        let store = TimeSeriesStore::with_capacity(256);
        let s = SensorId(3);
        for r in &series {
            store.insert(s, *r);
        }
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        let agg = |a: Aggregation| {
            Query::sensors(s).range(all).aggregate(a).run(&q).scalar().unwrap()
        };
        let mean = agg(Aggregation::Mean);
        let min = agg(Aggregation::Min);
        let max = agg(Aggregation::Max);
        // The mean may be served from rollup tiers, whose per-bucket partial
        // sums associate differently than a flat fold — allow the usual
        // n·ε relative slack on top of the absolute epsilon.
        let slack = 1e-9 + min.abs().max(max.abs()) * 1e-12;
        prop_assert!(min <= mean + slack && mean <= max + slack);
        prop_assert_eq!(agg(Aggregation::Count) as usize, series.len());
        let q25 = agg(Aggregation::Quantile(0.25));
        let q75 = agg(Aggregation::Quantile(0.75));
        prop_assert!(q25 <= q75);
        prop_assert!(min <= q25 && q75 <= max);
        // Time-weighted mean also sits within [min, max].
        let twm = agg(Aggregation::TimeWeightedMean);
        prop_assert!(min - 1e-9 <= twm && twm <= max + 1e-9);
    }

    /// Downsampling conserves the reading count and respects bucket bounds.
    #[test]
    fn downsample_conserves_counts(series in arb_series(150), bucket in 1u64..20_000) {
        prop_assume!(!series.is_empty());
        let store = TimeSeriesStore::with_capacity(256);
        let s = SensorId(0);
        for r in &series {
            store.insert(s, *r);
        }
        let q = QueryEngine::new(&store);
        let buckets = Query::sensors(s)
            .downsample(bucket, Aggregation::Mean)
            .run(&q)
            .buckets();
        let total: usize = buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, series.len());
        for w in buckets.windows(2) {
            prop_assert!(w[0].start < w[1].start);
        }
        for b in &buckets {
            prop_assert_eq!(b.start.as_millis() % bucket, 0);
        }
    }

    /// Wrap-around under hostile input: out-of-order, duplicate-timestamp
    /// and non-finite readings against the "Vec that keeps the last N
    /// accepted" model, with exact rejection/eviction accounting.
    #[test]
    fn ring_buffer_survives_out_of_order_and_duplicates(
        raw in prop::collection::vec((0u64..2_000, -1e6f64..1e6, 0u8..10), 0..300),
        cap in 1usize..16,
    ) {
        // Map the selector byte onto hostile values: ~20% of readings are
        // NaN or ±infinity.
        let raw: Vec<(u64, f64)> = raw
            .into_iter()
            .map(|(ts, v, sel)| match sel {
                0 => (ts, f64::NAN),
                1 => (ts, if v < 0.0 { f64::NEG_INFINITY } else { f64::INFINITY }),
                _ => (ts, v),
            })
            .collect();
        let mut buf = RingBuffer::new(cap);
        let mut model: Vec<Reading> = Vec::new();
        let mut evicted = 0u64;
        let mut ooo = 0u64;
        let mut non_finite = 0u64;
        for (ts, v) in raw {
            let r = Reading::new(Timestamp::from_millis(ts), v);
            let accepted = buf.push(r);
            if !v.is_finite() {
                prop_assert!(!accepted);
                non_finite += 1;
            } else if model.last().is_some_and(|last| r.ts < last.ts) {
                // Strictly older than the newest accepted reading: dropped.
                prop_assert!(!accepted);
                ooo += 1;
            } else {
                // Fresh or duplicate timestamp: accepted in arrival order.
                prop_assert!(accepted);
                model.push(r);
                if model.len() > cap {
                    model.remove(0);
                    evicted += 1;
                }
            }
        }
        prop_assert_eq!(buf.to_vec(), model);
        prop_assert_eq!(buf.evicted(), evicted);
        prop_assert_eq!(buf.rejected_out_of_order(), ooo);
        prop_assert_eq!(buf.rejected_non_finite(), non_finite);
        // Whatever survived is non-decreasing in time.
        let kept = buf.to_vec();
        prop_assert!(kept.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    /// A stalled subscriber sheds batches instead of blocking the bus, the
    /// drop counters grow monotonically, and every published batch is
    /// accounted for as either delivered or dropped.
    #[test]
    fn bus_drop_counters_are_monotone_under_stalled_subscriber(
        publishes in 1usize..60,
        buffer in 1usize..8,
    ) {
        use hpc_oda::telemetry::bus::TelemetryBus;
        use hpc_oda::telemetry::pattern::SensorPattern;
        use hpc_oda::telemetry::reading::ReadingBatch;
        use hpc_oda::telemetry::sensor::{SensorKind, SensorRegistry, Unit};

        let registry = SensorRegistry::new();
        let sensor = registry.register("/hw/node0/temp_c", SensorKind::Temperature, Unit::Celsius);
        let bus = TelemetryBus::new(registry);
        // Never drained: fills after `buffer` batches, sheds afterwards.
        let stalled = bus
            .subscription(SensorPattern::new("/hw/**"))
            .capacity(buffer)
            .named("stalled")
            .subscribe();

        let mut last_dropped = 0u64;
        for i in 0..publishes {
            bus.publish(ReadingBatch::single(
                sensor,
                Reading::new(Timestamp::from_millis(i as u64 * 1_000), 25.0),
            ));
            let dropped = stalled.dropped();
            prop_assert!(dropped >= last_dropped, "drop counter went backwards");
            last_dropped = dropped;
            prop_assert_eq!(
                bus.delivered_total() + bus.dropped_total(),
                i as u64 + 1,
                "every batch is delivered or shed"
            );
        }
        let expected_dropped = publishes.saturating_sub(buffer) as u64;
        prop_assert_eq!(stalled.dropped(), expected_dropped);
        prop_assert_eq!(bus.dropped_total(), expected_dropped);
        prop_assert_eq!(bus.delivered_total(), publishes.min(buffer) as u64);
        prop_assert_eq!(bus.published(), publishes as u64);
    }

    /// Rollup-tier answers are *exactly* the raw-scan answers — scalar and
    /// downsampled, for every decomposable aggregation — under hostile
    /// input: out-of-order rejects, NaN bursts, raw-ring eviction and
    /// tier-ring eviction all active at once. Values are dyadic (multiples
    /// of 0.25, bounded magnitude) so tier partial sums are bit-exact and
    /// `prop_assert_eq!` needs no tolerance.
    #[test]
    fn rollup_tier_answers_match_raw_scan(
        raw in prop::collection::vec((0u64..50_000, -4000i32..4000, 0u8..10), 1..300),
        raw_cap in 4usize..64,
        tier_cap in 2usize..32,
    ) {
        use hpc_oda::telemetry::metrics::MetricsRegistry;
        use hpc_oda::telemetry::store::{RollupConfig, RollupTierSpec};

        let rollups = RollupConfig {
            tiers: vec![
                RollupTierSpec { bucket_ms: 1_000, capacity: tier_cap },
                RollupTierSpec { bucket_ms: 5_000, capacity: tier_cap },
            ],
        };
        let store =
            TimeSeriesStore::with_rollups(raw_cap, 1, MetricsRegistry::disabled(), rollups);
        let s = SensorId(0);
        for (ts, v, sel) in raw {
            // ~10% NaN bursts: rejected readings must leave no trace in any
            // tier, or the planner would answer from poisoned summaries.
            let value = if sel == 0 { f64::NAN } else { v as f64 * 0.25 };
            store.insert(s, Reading::new(Timestamp::from_millis(ts), value));
        }
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        for agg in [
            Aggregation::Mean,
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Sum,
            Aggregation::Count,
        ] {
            let planned =
                Query::sensors(s).range(all).aggregate(agg).run(&q).scalar();
            let rescan = Query::sensors(s)
                .range(all)
                .aggregate(agg)
                .raw_scan()
                .run(&q)
                .scalar();
            prop_assert_eq!(planned, rescan, "scalar {:?} diverged", agg);
            for bucket_ms in [1_000u64, 5_000, 10_000] {
                let planned = Query::sensors(s)
                    .range(all)
                    .downsample(bucket_ms, agg)
                    .run(&q)
                    .buckets();
                let rescan = Query::sensors(s)
                    .range(all)
                    .downsample(bucket_ms, agg)
                    .raw_scan()
                    .run(&q)
                    .buckets();
                prop_assert_eq!(
                    &planned, &rescan,
                    "downsample({}) {:?} diverged", bucket_ms, agg
                );
            }
        }
    }

    /// The duplicate-timestamp policy (accept-and-order-stable; see
    /// `RingBuffer::push`) holds all the way up the query stack: streams
    /// dense with same-ts runs are kept in exact arrival order, and every
    /// tier-planned answer is *bit-identical* to the raw scan over them —
    /// scalar and downsampled, for every decomposable aggregation.
    /// Timestamp gaps are drawn from `0..3` ticks so roughly a third of
    /// consecutive readings collide; values are dyadic (multiples of 0.25)
    /// so `prop_assert_eq!` needs no tolerance.
    #[test]
    fn duplicate_timestamps_are_order_stable_and_tier_exact(
        raw in prop::collection::vec((0u64..3, -4000i32..4000), 1..250),
        raw_cap in 8usize..64,
        tier_cap in 2usize..32,
    ) {
        use hpc_oda::telemetry::metrics::MetricsRegistry;
        use hpc_oda::telemetry::store::{RollupConfig, RollupTierSpec};

        let rollups = RollupConfig {
            tiers: vec![
                RollupTierSpec { bucket_ms: 1_000, capacity: tier_cap },
                RollupTierSpec { bucket_ms: 5_000, capacity: tier_cap },
            ],
        };
        let store =
            TimeSeriesStore::with_rollups(raw_cap, 1, MetricsRegistry::disabled(), rollups);
        let s = SensorId(0);
        let mut ts = 0u64;
        let mut model: Vec<Reading> = Vec::new();
        for (gap, v) in raw {
            ts += gap * 250; // gap == 0 → duplicate timestamp
            let r = Reading::new(Timestamp::from_millis(ts), v as f64 * 0.25);
            store.insert(s, r);
            model.push(r);
            if model.len() > raw_cap {
                model.remove(0);
            }
        }
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();

        // Arrival order survives verbatim — same-ts runs are neither merged
        // nor reordered.
        let fetched = Query::sensors(s).range(all).run(&q).readings();
        prop_assert_eq!(fetched, model);

        for agg in [
            Aggregation::Mean,
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Sum,
            Aggregation::Count,
        ] {
            let planned =
                Query::sensors(s).range(all).aggregate(agg).run(&q).scalar();
            let rescan = Query::sensors(s)
                .range(all)
                .aggregate(agg)
                .raw_scan()
                .run(&q)
                .scalar();
            prop_assert_eq!(planned, rescan, "scalar {:?} diverged on dup-ts", agg);
            for bucket_ms in [1_000u64, 5_000] {
                let planned = Query::sensors(s)
                    .range(all)
                    .downsample(bucket_ms, agg)
                    .run(&q)
                    .buckets();
                let rescan = Query::sensors(s)
                    .range(all)
                    .downsample(bucket_ms, agg)
                    .raw_scan()
                    .run(&q)
                    .buckets();
                prop_assert_eq!(
                    &planned, &rescan,
                    "downsample({}) {:?} diverged on dup-ts", bucket_ms, agg
                );
            }
        }
    }

    /// `aggregate_readings` agrees between the slice helper and the engine.
    #[test]
    fn engine_and_slice_aggregation_agree(series in arb_series(80)) {
        prop_assume!(!series.is_empty());
        let store = TimeSeriesStore::with_capacity(128);
        let s = SensorId(0);
        for r in &series {
            store.insert(s, *r);
        }
        let q = QueryEngine::new(&store);
        let fetched = Query::sensors(s).run(&q).readings();
        // Engine aggregation may go through rollup tiers, so Sum/Mean can
        // differ from the flat slice fold by summation-order rounding:
        // bounded by n·ε·Σ|v|.
        let scale: f64 = fetched.iter().map(|r| r.value.abs()).sum();
        let tol = 1e-9 + scale * fetched.len() as f64 * f64::EPSILON;
        for agg in [Aggregation::Mean, Aggregation::Sum, Aggregation::StdDev] {
            let a = Query::sensors(s).aggregate(agg).run(&q).scalar().unwrap();
            let b = aggregate_readings(&fetched, agg).unwrap();
            prop_assert!((a - b).abs() < tol, "{agg:?}: {a} vs {b}");
        }
    }
}

/// A ragged two-sensor alignment leaves NaN holes where one sensor has no
/// data in a bucket; those holes must not poison downstream correlation.
/// The NaN-aware estimators in `analytics` give exactly the answer you get
/// by compacting to the overlapping buckets first.
#[test]
fn ragged_alignment_does_not_poison_downstream_correlation() {
    use hpc_oda::analytics::descriptive::stats::{correlation, spearman};

    let store = TimeSeriesStore::with_capacity(256);
    let (a, b) = (SensorId(0), SensorId(1));
    // Sensor a samples every second for 20 s; sensor b only every other
    // second and only from t=4 s, so the aligned matrix is ragged: b's row
    // is NaN for half its buckets.
    for t in 0..20u64 {
        store.insert(a, Reading::new(Timestamp::from_millis(t * 1_000), t as f64));
        if t >= 4 && t % 2 == 0 {
            store.insert(
                b,
                Reading::new(Timestamp::from_millis(t * 1_000), 3.0 * t as f64 + 1.0),
            );
        }
    }
    let q = QueryEngine::new(&store);
    let (grid, matrix) = Query::sensors([a, b].as_slice())
        .range(TimeRange::all())
        .align(1_000)
        .run(&q)
        .aligned();
    assert_eq!(grid.len(), 20);
    assert!(
        matrix[0].iter().all(|v| v.is_finite()),
        "dense sensor has no holes"
    );
    assert!(
        matrix[1].iter().any(|v| v.is_nan()),
        "ragged sensor must have holes"
    );

    let pearson = correlation(&matrix[0], &matrix[1]).expect("NaN-aware pearson");
    let rho = spearman(&matrix[0], &matrix[1]).expect("NaN-aware spearman");
    assert!(
        pearson.is_finite() && rho.is_finite(),
        "holes poisoned the estimators"
    );
    // b is a perfect affine, monotone function of a on the overlap.
    assert!((pearson - 1.0).abs() < 1e-12, "pearson {pearson}");
    assert!((rho - 1.0).abs() < 1e-12, "spearman {rho}");
    // Same answer as compacting to overlapping buckets by hand.
    let (xs, ys): (Vec<f64>, Vec<f64>) = matrix[0]
        .iter()
        .zip(&matrix[1])
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .unzip();
    assert_eq!(xs.len(), 8, "overlap is the 8 even seconds in 4..=18");
    assert_eq!(correlation(&matrix[0], &matrix[1]), correlation(&xs, &ys));
    assert_eq!(spearman(&matrix[0], &matrix[1]), spearman(&xs, &ys));
}
