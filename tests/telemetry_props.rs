//! Property-based tests of the telemetry substrate: the ring-buffer store
//! against a reference model, and query-layer invariants.

use hpc_oda::telemetry::query::{aggregate_readings, Aggregation, Query, QueryEngine, TimeRange};
use hpc_oda::telemetry::reading::{Reading, Timestamp};
use hpc_oda::telemetry::sensor::SensorId;
use hpc_oda::telemetry::store::{RingBuffer, TimeSeriesStore};
use proptest::prelude::*;

/// Arbitrary valid (monotone-timestamp, finite) reading sequences.
fn arb_series(max_len: usize) -> impl Strategy<Value = Vec<Reading>> {
    prop::collection::vec((0u64..1_000, -1e6f64..1e6), 0..max_len).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(dt, v)| {
                ts += dt;
                Reading::new(Timestamp::from_millis(ts), v)
            })
            .collect()
    })
}

proptest! {
    /// The ring buffer behaves exactly like "a Vec that keeps the last N".
    #[test]
    fn ring_buffer_matches_vec_model(series in arb_series(200), cap in 1usize..64) {
        let mut buf = RingBuffer::new(cap);
        let mut model: Vec<Reading> = Vec::new();
        for r in &series {
            let accepted = buf.push(*r);
            prop_assert!(accepted); // series is valid by construction
            model.push(*r);
            if model.len() > cap {
                model.remove(0);
            }
        }
        prop_assert_eq!(buf.to_vec(), model.clone());
        prop_assert_eq!(buf.len(), model.len());
        prop_assert_eq!(buf.oldest(), model.first().copied());
        prop_assert_eq!(buf.newest(), model.last().copied());
    }

    /// Range queries return exactly the model's filtered slice.
    #[test]
    fn range_query_matches_model(
        series in arb_series(120),
        cap in 8usize..128,
        start in 0u64..60_000,
        width in 0u64..60_000,
    ) {
        let mut buf = RingBuffer::new(cap);
        let mut model: Vec<Reading> = Vec::new();
        for r in &series {
            buf.push(*r);
            model.push(*r);
            if model.len() > cap {
                model.remove(0);
            }
        }
        let (s, e) = (Timestamp::from_millis(start), Timestamp::from_millis(start + width));
        let mut got = Vec::new();
        buf.range_into(s, e, &mut got);
        let expected: Vec<Reading> = model
            .iter()
            .copied()
            .filter(|r| r.ts >= s && r.ts < e)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Out-of-order and non-finite data never lands in the store.
    #[test]
    fn store_rejects_garbage(vals in prop::collection::vec((0u64..100, -10f64..10.0), 1..50)) {
        let store = TimeSeriesStore::with_capacity(128);
        let s = SensorId(0);
        let mut last_ts = None;
        for (ts, v) in vals {
            let accepted = store.insert(s, Reading::new(Timestamp::from_millis(ts), v));
            match last_ts {
                Some(prev) if ts < prev => prop_assert!(!accepted),
                _ => {
                    prop_assert!(accepted);
                    last_ts = Some(ts);
                }
            }
        }
        // NaN is always rejected.
        prop_assert!(!store.insert(s, Reading::new(Timestamp::from_millis(10_000), f64::NAN)));
    }

    /// Aggregation invariants: min ≤ mean ≤ max, quantile monotone,
    /// count exact.
    #[test]
    fn aggregation_invariants(series in arb_series(100)) {
        prop_assume!(!series.is_empty());
        let store = TimeSeriesStore::with_capacity(256);
        let s = SensorId(3);
        for r in &series {
            store.insert(s, *r);
        }
        let q = QueryEngine::new(&store);
        let all = TimeRange::all();
        let agg = |a: Aggregation| {
            Query::sensors(s).range(all).aggregate(a).run(&q).scalar().unwrap()
        };
        let mean = agg(Aggregation::Mean);
        let min = agg(Aggregation::Min);
        let max = agg(Aggregation::Max);
        prop_assert!(min <= mean + 1e-9 && mean <= max + 1e-9);
        prop_assert_eq!(agg(Aggregation::Count) as usize, series.len());
        let q25 = agg(Aggregation::Quantile(0.25));
        let q75 = agg(Aggregation::Quantile(0.75));
        prop_assert!(q25 <= q75);
        prop_assert!(min <= q25 && q75 <= max);
        // Time-weighted mean also sits within [min, max].
        let twm = agg(Aggregation::TimeWeightedMean);
        prop_assert!(min - 1e-9 <= twm && twm <= max + 1e-9);
    }

    /// Downsampling conserves the reading count and respects bucket bounds.
    #[test]
    fn downsample_conserves_counts(series in arb_series(150), bucket in 1u64..20_000) {
        prop_assume!(!series.is_empty());
        let store = TimeSeriesStore::with_capacity(256);
        let s = SensorId(0);
        for r in &series {
            store.insert(s, *r);
        }
        let q = QueryEngine::new(&store);
        let buckets = Query::sensors(s)
            .downsample(bucket, Aggregation::Mean)
            .run(&q)
            .buckets();
        let total: usize = buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, series.len());
        for w in buckets.windows(2) {
            prop_assert!(w[0].start < w[1].start);
        }
        for b in &buckets {
            prop_assert_eq!(b.start.as_millis() % bucket, 0);
        }
    }

    /// Wrap-around under hostile input: out-of-order, duplicate-timestamp
    /// and non-finite readings against the "Vec that keeps the last N
    /// accepted" model, with exact rejection/eviction accounting.
    #[test]
    fn ring_buffer_survives_out_of_order_and_duplicates(
        raw in prop::collection::vec((0u64..2_000, -1e6f64..1e6, 0u8..10), 0..300),
        cap in 1usize..16,
    ) {
        // Map the selector byte onto hostile values: ~20% of readings are
        // NaN or ±infinity.
        let raw: Vec<(u64, f64)> = raw
            .into_iter()
            .map(|(ts, v, sel)| match sel {
                0 => (ts, f64::NAN),
                1 => (ts, if v < 0.0 { f64::NEG_INFINITY } else { f64::INFINITY }),
                _ => (ts, v),
            })
            .collect();
        let mut buf = RingBuffer::new(cap);
        let mut model: Vec<Reading> = Vec::new();
        let mut evicted = 0u64;
        let mut ooo = 0u64;
        let mut non_finite = 0u64;
        for (ts, v) in raw {
            let r = Reading::new(Timestamp::from_millis(ts), v);
            let accepted = buf.push(r);
            if !v.is_finite() {
                prop_assert!(!accepted);
                non_finite += 1;
            } else if model.last().is_some_and(|last| r.ts < last.ts) {
                // Strictly older than the newest accepted reading: dropped.
                prop_assert!(!accepted);
                ooo += 1;
            } else {
                // Fresh or duplicate timestamp: accepted in arrival order.
                prop_assert!(accepted);
                model.push(r);
                if model.len() > cap {
                    model.remove(0);
                    evicted += 1;
                }
            }
        }
        prop_assert_eq!(buf.to_vec(), model);
        prop_assert_eq!(buf.evicted(), evicted);
        prop_assert_eq!(buf.rejected_out_of_order(), ooo);
        prop_assert_eq!(buf.rejected_non_finite(), non_finite);
        // Whatever survived is non-decreasing in time.
        let kept = buf.to_vec();
        prop_assert!(kept.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    /// A stalled subscriber sheds batches instead of blocking the bus, the
    /// drop counters grow monotonically, and every published batch is
    /// accounted for as either delivered or dropped.
    #[test]
    fn bus_drop_counters_are_monotone_under_stalled_subscriber(
        publishes in 1usize..60,
        buffer in 1usize..8,
    ) {
        use hpc_oda::telemetry::bus::TelemetryBus;
        use hpc_oda::telemetry::pattern::SensorPattern;
        use hpc_oda::telemetry::reading::ReadingBatch;
        use hpc_oda::telemetry::sensor::{SensorKind, SensorRegistry, Unit};

        let registry = SensorRegistry::new();
        let sensor = registry.register("/hw/node0/temp_c", SensorKind::Temperature, Unit::Celsius);
        let bus = TelemetryBus::new(registry);
        // Never drained: fills after `buffer` batches, sheds afterwards.
        let stalled = bus
            .subscription(SensorPattern::new("/hw/**"))
            .capacity(buffer)
            .named("stalled")
            .subscribe();

        let mut last_dropped = 0u64;
        for i in 0..publishes {
            bus.publish(ReadingBatch::single(
                sensor,
                Reading::new(Timestamp::from_millis(i as u64 * 1_000), 25.0),
            ));
            let dropped = stalled.dropped();
            prop_assert!(dropped >= last_dropped, "drop counter went backwards");
            last_dropped = dropped;
            prop_assert_eq!(
                bus.delivered_total() + bus.dropped_total(),
                i as u64 + 1,
                "every batch is delivered or shed"
            );
        }
        let expected_dropped = publishes.saturating_sub(buffer) as u64;
        prop_assert_eq!(stalled.dropped(), expected_dropped);
        prop_assert_eq!(bus.dropped_total(), expected_dropped);
        prop_assert_eq!(bus.delivered_total(), publishes.min(buffer) as u64);
        prop_assert_eq!(bus.published(), publishes as u64);
    }

    /// `aggregate_readings` agrees between the slice helper and the engine.
    #[test]
    fn engine_and_slice_aggregation_agree(series in arb_series(80)) {
        prop_assume!(!series.is_empty());
        let store = TimeSeriesStore::with_capacity(128);
        let s = SensorId(0);
        for r in &series {
            store.insert(s, *r);
        }
        let q = QueryEngine::new(&store);
        let fetched = Query::sensors(s).run(&q).readings();
        for agg in [Aggregation::Mean, Aggregation::Sum, Aggregation::StdDev] {
            let a = Query::sensors(s).aggregate(agg).run(&q).scalar().unwrap();
            let b = aggregate_readings(&fetched, agg).unwrap();
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
