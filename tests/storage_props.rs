//! Property-based tests of the storage codecs, segment container and WAL:
//! every encoder round-trips **bit-for-bit** over adversarial inputs (NaN
//! payload bits, ±inf, -0.0, clock-jittered and even non-monotone
//! timestamps), truncated input never panics a decoder, and deterministic
//! compaction produces exactly the buckets an independent raw-rescan fold
//! produces.

use hpc_oda::telemetry::reading::{Reading, Timestamp};
use hpc_oda::telemetry::sensor::SensorId;
use hpc_oda::telemetry::storage::codec::{
    decode_timestamps, decode_value_bits, encode_timestamps, encode_value_bits,
};
use hpc_oda::telemetry::storage::segment::{self, Segment, SegmentBlocks};
use hpc_oda::telemetry::storage::wal;
use hpc_oda::telemetry::store::RollupBucket;
use proptest::prelude::*;

/// Adversarial f64 bit patterns: quiet/signalling NaNs with arbitrary
/// payloads, ±inf, ±0.0, subnormals and ordinary values all arise from
/// uniformly random bits.
fn arb_value_bits(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..max_len)
}

/// Clock-jittered timestamps: a monotone base walk plus occasional signed
/// jitter that may step backwards — the codec's wrapping delta-of-delta
/// must round-trip *any* u64 sequence, ordered or not.
fn arb_jittered_ts(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u64..120_000, -60_000i64..60_000), 0..max_len).prop_map(|steps| {
        let mut ts = 1_700_000_000_000u64;
        steps
            .into_iter()
            .map(|(dt, jitter)| {
                ts = ts.wrapping_add(dt);
                ts.wrapping_add_signed(jitter)
            })
            .collect()
    })
}

/// Valid archive series: strictly increasing timestamps, finite values.
fn arb_series(max_len: usize) -> impl Strategy<Value = Vec<Reading>> {
    prop::collection::vec((1u64..90_000, -1e9f64..1e9), 0..max_len).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(dt, v)| {
                ts += dt;
                Reading::new(Timestamp::from_millis(ts), v)
            })
            .collect()
    })
}

/// The reference fold: group `readings` into `bucket_ms` buckets by a plain
/// linear rescan, mirroring what the online rollup tier computes.
fn rescan_fold(readings: &[Reading], bucket_ms: u64) -> Vec<RollupBucket> {
    let mut out: Vec<RollupBucket> = Vec::new();
    for r in readings {
        let start = Timestamp(r.ts.0 - r.ts.0 % bucket_ms);
        match out.last_mut() {
            Some(b) if b.start == start => {
                b.count += 1;
                b.sum += r.value;
                b.min = b.min.min(r.value);
                b.max = b.max.max(r.value);
                b.last = r.value;
                b.last_ts = r.ts;
            }
            _ => out.push(RollupBucket {
                start,
                count: 1,
                sum: r.value,
                min: r.value,
                max: r.value,
                first: r.value,
                last: r.value,
                first_ts: r.ts,
                last_ts: r.ts,
            }),
        }
    }
    out
}

/// Bit-level digest of a bucket list (floats compared by representation).
fn bucket_bits(buckets: &[RollupBucket]) -> Vec<[u64; 9]> {
    buckets
        .iter()
        .map(|b| {
            [
                b.start.0,
                b.count,
                b.sum.to_bits(),
                b.min.to_bits(),
                b.max.to_bits(),
                b.first.to_bits(),
                b.last.to_bits(),
                b.first_ts.0,
                b.last_ts.0,
            ]
        })
        .collect()
}

proptest! {
    /// Delta-of-delta round-trips any u64 timestamp sequence exactly,
    /// including backwards jitter and wrap-around deltas.
    #[test]
    fn timestamp_codec_roundtrips_jittered_sequences(ts in arb_jittered_ts(300)) {
        let encoded = encode_timestamps(&ts);
        prop_assert_eq!(decode_timestamps(&encoded, ts.len()), Some(ts));
    }

    /// XOR float compression round-trips arbitrary bit patterns —
    /// NaN payloads, ±inf, -0.0, subnormals — bit for bit.
    #[test]
    fn value_codec_roundtrips_adversarial_bits(bits in arb_value_bits(300)) {
        let encoded = encode_value_bits(&bits);
        prop_assert_eq!(decode_value_bits(&encoded, bits.len()), Some(bits));
    }

    /// Truncating an encoded stream anywhere never panics a decoder; it
    /// fails closed (None) or yields exactly the requested count.
    #[test]
    fn truncated_codec_input_fails_closed(
        ts in arb_jittered_ts(100),
        bits in arb_value_bits(100),
        cut_pct in 0.0f64..1.0,
    ) {
        let e1 = encode_timestamps(&ts);
        let cut1 = (e1.len() as f64 * cut_pct) as usize;
        if let Some(v) = decode_timestamps(&e1[..cut1], ts.len()) {
            prop_assert_eq!(v.len(), ts.len());
        }
        let e2 = encode_value_bits(&bits);
        let cut2 = (e2.len() as f64 * cut_pct) as usize;
        if let Some(v) = decode_value_bits(&e2[..cut2], bits.len()) {
            prop_assert_eq!(v.len(), bits.len());
        }
    }

    /// A raw segment encodes and decodes back to identical content, and a
    /// one-byte corruption anywhere is always rejected.
    #[test]
    fn segment_roundtrips_and_detects_corruption(
        a in arb_series(80),
        b in arb_series(80),
        flip_pct in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        prop_assume!(!a.is_empty() || !b.is_empty());
        let sensors = vec![(SensorId(1), a), (SensorId(2), b)];
        let seg = Segment::raw(7, sensors.clone());
        let bytes = segment::encode(&seg);
        let back = segment::decode(&bytes).expect("clean bytes decode");
        prop_assert_eq!(back.seq, 7);
        match back.blocks {
            SegmentBlocks::Raw(got) => prop_assert_eq!(got, sensors),
            SegmentBlocks::Compacted(_) => prop_assert!(false, "raw stays raw"),
        }
        let mut corrupt = bytes.clone();
        let idx = ((corrupt.len() - 1) as f64 * flip_pct) as usize;
        corrupt[idx] ^= 1u8 << flip_bit;
        prop_assert!(segment::decode(&corrupt).is_err(), "bit flip must be detected");
    }

    /// Compacting a raw segment yields exactly the buckets an independent
    /// raw-rescan fold computes — same floats, bit for bit.
    #[test]
    fn compaction_matches_raw_rescan_fold(
        series in arb_series(150),
        bucket_pow in 0u32..8,
    ) {
        let bucket_ms = 1_000u64 << bucket_pow;
        let seg = Segment::raw(1, vec![(SensorId(9), series.clone())]);
        let folded = segment::compact(&seg, bucket_ms);
        let mut got = Vec::new();
        folded.buckets_for(SensorId(9), Timestamp::ZERO, Timestamp::MAX, &mut got);
        prop_assert_eq!(bucket_bits(&got), bucket_bits(&rescan_fold(&series, bucket_ms)));
        // And the compacted container itself round-trips losslessly.
        let back = segment::decode(&segment::encode(&folded)).expect("compacted decodes");
        let mut got2 = Vec::new();
        back.buckets_for(SensorId(9), Timestamp::ZERO, Timestamp::MAX, &mut got2);
        prop_assert_eq!(bucket_bits(&got2), bucket_bits(&got));
    }

    /// WAL streams replay exactly what was appended, and any truncation is
    /// detected as a torn tail with only whole checksummed records kept.
    #[test]
    fn wal_replay_returns_appended_prefix(
        batches in prop::collection::vec(arb_series(20), 0..12),
        cut_pct in 0.0f64..1.0,
    ) {
        let mut bytes = wal::encode_header(3).to_vec();
        let mut boundaries = vec![bytes.len()];
        for (i, batch) in batches.iter().enumerate() {
            bytes.extend_from_slice(&wal::encode_record(SensorId(i as u32), batch));
            boundaries.push(bytes.len());
        }
        // Clean replay: every record comes back in order.
        let clean = wal::replay(&bytes);
        prop_assert_eq!(clean.epoch, Some(3));
        prop_assert!(!clean.torn);
        prop_assert_eq!(clean.records.len(), batches.len());
        for (i, (sensor, got)) in clean.records.iter().enumerate() {
            prop_assert_eq!(*sensor, SensorId(i as u32));
            prop_assert_eq!(got, &batches[i]);
        }
        // Truncated replay: whole-record prefix only, tail flagged torn.
        let cut = wal::WAL_HEADER_LEN
            + ((bytes.len() - wal::WAL_HEADER_LEN) as f64 * cut_pct) as usize;
        let torn = wal::replay(&bytes[..cut]);
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(torn.records.len(), whole);
        prop_assert_eq!(torn.valid_len, boundaries[whole]);
        prop_assert_eq!(torn.torn, cut != boundaries[whole]);
        for (i, (_, got)) in torn.records.iter().enumerate() {
            prop_assert_eq!(got, &batches[i]);
        }
    }
}
