//! Serving-layer integration suite: tenant-quota accounting under burst
//! load and fault regimes, and the cache's bit-equality contract while
//! rollup tiers fold under concurrent writers.
//!
//! Everything runs over [`SimNet`], so admission decisions are functions
//! of the logical clock and the request sequence — the quota tests assert
//! exact determinism by replaying the same seed and comparing whole
//! counter ledgers and status-code sequences.

use hpc_oda::serve::config::{ServingConfig, TenantQuota};
use hpc_oda::serve::net::SimNet;
use hpc_oda::serve::server::Server;
use hpc_oda::serve::tenant::TenantCounters;
use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::bus::TelemetryBus;
use hpc_oda::telemetry::metrics::MetricsRegistry;
use hpc_oda::telemetry::query::{Aggregation, Query, QueryEngine};
use hpc_oda::telemetry::reading::{Reading, ReadingBatch, Timestamp};
use hpc_oda::telemetry::sensor::{SensorKind, SensorRegistry, Unit};
use hpc_oda::telemetry::store::{RollupConfig, TimeSeriesStore};
use std::sync::Arc;

/// (status, lowercased headers, body) of one framed response.
type Response = (u16, Vec<(String, String)>, Vec<u8>);

/// Drives `server` until the connection `raw` was sent on has a complete
/// framed response; returns (status, headers, body).
fn round_trip(net: &Arc<SimNet>, server: &mut Server<SimNet>, raw: &str) -> Response {
    let conn = net.connect();
    net.client_send(conn, raw.as_bytes());
    let mut got: Vec<u8> = Vec::new();
    for _ in 0..4096 {
        server.poll();
        got.extend(net.client_recv(conn));
        if let Some(parsed) = try_parse(&got) {
            net.client_close(conn);
            server.poll();
            return parsed;
        }
    }
    panic!("no complete response after 4096 polls");
}

fn try_parse(raw: &[u8]) -> Option<Response> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = String::from_utf8_lossy(&raw[..head_end - 4]).into_owned();
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")?
        .1
        .parse()
        .ok()?;
    (raw.len() >= head_end + len).then(|| (status, headers, raw[head_end..head_end + len].to_vec()))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn post(tenant: &str, wire: &str) -> String {
    format!(
        "POST /api/v1/query HTTP/1.1\r\nx-tenant: {tenant}\r\ncontent-length: {}\r\n\r\n{wire}",
        wire.len()
    )
}

/// Runs a seeded site under a node-failure fault regime, fires bursty
/// two-tenant query traffic at its serving frontend, and returns the
/// status-code sequence plus both tenants' final counter ledgers.
fn burst_load_run(seed: u64) -> (Vec<u16>, TenantCounters, TenantCounters) {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(seed)
        .metrics(MetricsRegistry::new())
        .serving(
            ServingConfig {
                default_quota: TenantQuota {
                    rate_per_sec: 20.0,
                    burst: 5.0,
                    max_concurrent: 4,
                    max_subscriptions: 2,
                },
                ..ServingConfig::default()
            }
            .with_tenant("dashboard", TenantQuota::unlimited()),
        )
        .build();
    dc.set_fault_schedule(FaultSchedule::new(seed).with(
        TelemetryFaultKind::NodeFailure { node: NodeId(0) },
        Timestamp::from_millis(2 * 60_000),
        Timestamp::from_millis(20 * 60_000),
    ));
    dc.run_ticks(600); // 10 simulated minutes into the fault window

    let net = Arc::new(SimNet::new());
    let mut server = dc.serve(Arc::clone(&net));
    let wire = Query::sensors("/facility/**")
        .aggregate(Aggregation::Mean)
        .to_json();
    let mut codes = Vec::new();
    for burst in 0..8 {
        // Each burst: 10 rapid-fire requests per tenant, then the site
        // advances (more telemetry, more faults) and the clock refills
        // part of the bucket.
        for _ in 0..10 {
            let (status, _, _) = round_trip(&net, &mut server, &post("adhoc", &wire));
            codes.push(status);
            let (status, _, _) = round_trip(&net, &mut server, &post("dashboard", &wire));
            codes.push(status);
        }
        dc.run_ticks(60);
        net.advance(if burst % 2 == 0 {
            100_000_000
        } else {
            400_000_000
        });
    }
    (
        codes,
        server.admission().counters("adhoc"),
        server.admission().counters("dashboard"),
    )
}

#[test]
fn burst_load_quota_accounting_reconciles_and_sheds_fairly() {
    let (codes, adhoc, dashboard) = burst_load_run(42);
    // Every request was answered; the tight tenant shed, the unlimited
    // tenant never did, and both ledgers balance exactly.
    assert_eq!(codes.len(), 160);
    assert!(codes.iter().all(|c| *c == 200 || *c == 429 || *c == 503));
    assert!(adhoc.reconciles(), "{adhoc:?}");
    assert!(dashboard.reconciles(), "{dashboard:?}");
    assert_eq!(adhoc.offered, 80);
    assert_eq!(dashboard.offered, 80);
    assert!(
        adhoc.shed_rate_limited > 0,
        "burst beyond the bucket must shed: {adhoc:?}"
    );
    assert_eq!(dashboard.shed_rate_limited + dashboard.shed_saturated, 0);
    assert_eq!(adhoc.in_flight(), 0, "all slots drained after flush");
    assert_eq!(dashboard.in_flight(), 0);
    // Shed responses match the 429/503 codes one for one.
    let shed_codes = codes.iter().filter(|c| **c != 200).count() as u64;
    assert_eq!(
        adhoc.shed_rate_limited
            + adhoc.shed_saturated
            + dashboard.shed_rate_limited
            + dashboard.shed_saturated,
        shed_codes
    );
}

#[test]
fn burst_load_admission_sequence_is_deterministic_under_seed() {
    let (codes_a, adhoc_a, dash_a) = burst_load_run(7);
    let (codes_b, adhoc_b, dash_b) = burst_load_run(7);
    assert_eq!(codes_a, codes_b, "same seed, same shed decisions");
    assert_eq!(adhoc_a, adhoc_b);
    assert_eq!(dash_a, dash_b);
    // A different seed still reconciles (fault regime differs, ledger
    // invariants don't).
    let (_, adhoc_c, dash_c) = burst_load_run(8);
    assert!(adhoc_c.reconciles() && dash_c.reconciles());
}

#[test]
fn cache_hits_stay_bit_identical_while_rollups_fold_concurrently() {
    // A store with rollup tiers, hammered by four writer threads while the
    // serving loop answers the same aggregate query over and over. Writer
    // bursts are joined between assertion windows, so every bit-equality
    // comparison runs against a quiescent store — but all folding happened
    // on the writer threads, concurrently with the preceding lookups.
    let registry = SensorRegistry::new();
    let sensors: Vec<_> = (0..8)
        .map(|i| {
            registry.register(
                &format!("/conc/node{i}/power"),
                SensorKind::Power,
                Unit::Watts,
            )
        })
        .collect();
    let store = Arc::new(TimeSeriesStore::with_rollups(
        4096,
        16,
        MetricsRegistry::new(),
        RollupConfig::default(),
    ));
    let bus = Arc::new(TelemetryBus::with_store(
        registry.clone(),
        Arc::clone(&store),
    ));

    let net = Arc::new(SimNet::new());
    let mut server = Server::new(
        Arc::clone(&net),
        ServingConfig::default().with_tenant("t", TenantQuota::unlimited()),
        registry.clone(),
        Arc::clone(&store),
    );
    let wire = Query::sensors("/conc/**")
        .aggregate(Aggregation::Mean)
        .to_json();
    let engine = QueryEngine::new(&store).with_registry(registry.clone());

    let mut hits = 0u64;
    let mut invalidation_misses = 0u64;
    for round in 0..30u64 {
        // Concurrent fold phase: four writers push interleaved batches.
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let bus = Arc::clone(&bus);
                let sensors = sensors.clone();
                std::thread::spawn(move || {
                    for k in 0..40u64 {
                        let s = sensors[((w + k) % sensors.len() as u64) as usize];
                        bus.publish(ReadingBatch::single(
                            s,
                            Reading::new(
                                Timestamp::from_millis(round * 40_000 + k * 1000 + w * 7),
                                (round * 31 + k * 13 + w) as f64 * 0.5,
                            ),
                        ));
                    }
                })
            })
            .collect();
        // Queries race the writers: responses must stay well-formed and
        // self-consistent, whatever interleaving happened.
        for _ in 0..5 {
            let (status, headers, _) = round_trip(&net, &mut server, &post("t", &wire));
            assert_eq!(status, 200);
            assert!(header(&headers, "x-result-digest").is_some());
        }
        for h in handles {
            h.join().expect("writer thread");
        }

        // Quiescent window: a miss (writers invalidated) then a hit, and
        // the hit must be byte- and digest-identical to an uncached
        // re-execution of the same canonical query.
        let (_, h1, b1) = round_trip(&net, &mut server, &post("t", &wire));
        if header(&h1, "x-cache") == Some("miss") {
            invalidation_misses += 1;
        }
        let (_, h2, b2) = round_trip(&net, &mut server, &post("t", &wire));
        assert_eq!(header(&h2, "x-cache"), Some("hit"));
        assert_eq!(b1, b2, "round {round}: hit differs from stored body");
        hits += 1;
        let fresh = Query::from_json(&wire)
            .expect("canonical wire form re-parses")
            .run(&engine);
        assert_eq!(
            fresh.to_json().into_bytes(),
            b2,
            "round {round}: cached bytes differ from uncached execution"
        );
        assert_eq!(
            header(&h2, "x-result-digest"),
            Some(format!("{:016x}", fresh.digest()).as_str()),
            "round {round}: digest header differs from uncached digest"
        );
    }
    assert_eq!(hits, 30);
    // Usually all 30 rounds re-miss; a racing query that lands after the
    // final write of a burst legitimately caches the end state, so a few
    // first-probes may hit. The bulk must still be invalidations.
    assert!(
        invalidation_misses >= 20,
        "writer bursts must invalidate between rounds ({invalidation_misses}/30)"
    );
    let stats = server.cache_stats();
    assert!(stats.hits >= 30 && stats.invalidated > 0, "{stats:?}");
}
