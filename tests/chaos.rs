//! Chaos integration suite: one test per telemetry-fault kind, driving the
//! full pipeline (simulator → bus → store → alerts → forecasts) at a fixed
//! seed and asserting *bounded degradation* — the pipeline never panics,
//! non-finite values never become alert evidence, forecasters abstain when
//! most of their input is missing, and replaying the same seed reproduces
//! the degraded run bit for bit.

use hpc_oda::analytics::predictive::forecast::{Forecaster, GapTolerant, Holt};
use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::alert::{AlertEngine, AlertRule, AlertSeverity, Condition};
use hpc_oda::telemetry::reading::Timestamp;

const TICKS: u64 = 1_800; // 30 simulated minutes at 1 s per tick
const SAMPLE_EVERY: u64 = 10;

fn run_site(seed: u64, schedule: Option<FaultSchedule>) -> DataCenter {
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(seed)
        .build();
    if let Some(s) = schedule {
        dc.set_fault_schedule(s);
    }
    dc.run_ticks(TICKS);
    dc
}

fn mins(m: u64) -> Timestamp {
    Timestamp::from_millis(m * 60_000)
}

#[test]
fn sensor_dropout_leaves_gap_but_other_streams_flow() {
    let schedule = FaultSchedule::new(7).with(
        TelemetryFaultKind::SensorDropout {
            pattern: "/hw/node0/temp_c".to_owned(),
        },
        mins(5),
        mins(25),
    );
    let dc = run_site(7, Some(schedule));
    let temp0 = dc.registry().lookup("/hw/node0/temp_c").unwrap();
    let temp1 = dc.registry().lookup("/hw/node1/temp_c").unwrap();

    let during = dc.store().range(temp0, mins(5), mins(25));
    assert!(during.is_empty(), "dropout window must archive nothing");
    assert!(!dc.store().range(temp1, mins(5), mins(25)).is_empty());
    // The gap is visible in the health report.
    let health = dc.store().sensor_health(temp0).unwrap();
    assert!(
        health.max_gap_ms >= 19 * 60_000,
        "gap {} ms",
        health.max_gap_ms
    );
    assert!(dc.telemetry_faults().unwrap().suppressed() > 0);
}

#[test]
fn stuck_at_latches_archived_values() {
    let schedule = FaultSchedule::new(8).with(
        TelemetryFaultKind::StuckAt {
            pattern: "/facility/outside_temp".to_owned(),
        },
        mins(5),
        mins(30),
    );
    let dc = run_site(8, Some(schedule));
    let outside = dc.registry().lookup("/facility/outside_temp").unwrap();
    let stuck: Vec<f64> = dc
        .store()
        .range(outside, mins(6), mins(29))
        .iter()
        .map(|r| r.value)
        .collect();
    assert!(stuck.len() > 10);
    assert!(
        stuck.windows(2).all(|w| w[0] == w[1]),
        "stuck sensor must repeat one value"
    );
    // The clean run varies (weather drifts over 25 minutes).
    let clean = run_site(8, None);
    let varied: Vec<f64> = clean
        .store()
        .range(outside, mins(6), mins(29))
        .iter()
        .map(|r| r.value)
        .collect();
    assert!(varied.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn nan_burst_never_reaches_store_or_alerts() {
    let schedule = FaultSchedule::new(9).with(
        TelemetryFaultKind::NanBurst {
            pattern: "/hw/node0/power_w".to_owned(),
            p: 1.0,
        },
        mins(5),
        mins(25),
    );
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(9)
        .build();
    dc.set_fault_schedule(schedule);
    let power0 = dc.registry().lookup("/hw/node0/power_w").unwrap();
    // A rule any finite power reading violates: if NaN carried alert
    // evidence, the fault window would emit events with NaN readings.
    let mut alerts = AlertEngine::new(vec![AlertRule::new(
        "power-seen",
        power0,
        Condition::Above(-1.0),
        AlertSeverity::Info,
    )]);
    let sub = dc
        .bus()
        .subscription("/hw/node0/power_w")
        .capacity(4_096)
        .named("chaos-alerts")
        .subscribe();
    dc.run_ticks(TICKS);
    while let Ok(batch) = sub.rx.try_recv() {
        for &r in &batch.readings {
            for event in alerts.observe(batch.sensor, r) {
                assert!(
                    event.reading.value.is_finite(),
                    "alert carried a non-finite reading"
                );
            }
        }
    }
    // Every archived sample is finite; the rejections are counted.
    assert!(dc
        .store()
        .last_n(power0, 10_000)
        .iter()
        .all(|r| r.value.is_finite()));
    let health = dc.store().sensor_health(power0).unwrap();
    assert!(health.rejected_non_finite > 0);
}

#[test]
fn spike_raises_false_alerts_that_a_clean_run_does_not() {
    let pue_rule = |dc: &DataCenter| {
        AlertRule::new(
            "pue-implausible",
            dc.registry().lookup("/facility/pue").unwrap(),
            Condition::Outside { lo: 0.5, hi: 3.0 },
            AlertSeverity::Critical,
        )
    };
    let drive = |schedule: Option<FaultSchedule>| -> u64 {
        let mut dc = DataCenter::builder(DataCenterConfig::tiny())
            .seed(11)
            .build();
        if let Some(s) = schedule {
            dc.set_fault_schedule(s);
        }
        let mut alerts = AlertEngine::new(vec![pue_rule(&dc)]);
        let sub = dc
            .bus()
            .subscription("/facility/pue")
            .capacity(4_096)
            .named("chaos-pue")
            .subscribe();
        dc.run_ticks(TICKS);
        let mut raised = 0;
        while let Ok(batch) = sub.rx.try_recv() {
            for &r in &batch.readings {
                raised += alerts
                    .observe(batch.sensor, r)
                    .iter()
                    .filter(|e| e.active)
                    .count() as u64;
            }
        }
        raised
    };
    let spikes = FaultSchedule::new(11).with(
        TelemetryFaultKind::Spike {
            pattern: "/facility/pue".to_owned(),
            magnitude: 50.0,
            p: 0.5,
        },
        mins(5),
        mins(25),
    );
    assert_eq!(drive(None), 0, "clean PUE must stay plausible");
    assert!(drive(Some(spikes)) > 0, "spikes must trip the range rule");
}

#[test]
fn clock_jitter_causes_counted_out_of_order_rejections() {
    let schedule = FaultSchedule::new(12).with(
        TelemetryFaultKind::ClockJitter {
            pattern: "/hw/node0/*".to_owned(),
            max_skew_ms: 30_000,
        },
        mins(5),
        mins(25),
    );
    let dc = run_site(12, Some(schedule));
    let health = dc.store().health_report();
    assert!(
        health.total_rejected() > 0,
        "backward skews must be rejected"
    );
    // Whatever was archived is still strictly time-ordered per sensor.
    let temp0 = dc.registry().lookup("/hw/node0/temp_c").unwrap();
    let series = dc.store().last_n(temp0, 10_000);
    assert!(series.windows(2).all(|w| w[0].ts < w[1].ts));
}

#[test]
fn node_failure_blacks_out_the_node_and_only_the_node() {
    let schedule = FaultSchedule::new(13).with(
        TelemetryFaultKind::NodeFailure { node: NodeId(2) },
        mins(5),
        mins(25),
    );
    let dc = run_site(13, Some(schedule));
    for stream in [
        "/hw/node2/temp_c",
        "/hw/node2/power_w",
        "/sw/node2/sys_mem_gib",
    ] {
        let id = dc.registry().lookup(stream).unwrap();
        assert!(
            dc.store().range(id, mins(5), mins(25)).is_empty(),
            "{stream} must be dark during the failure"
        );
    }
    let other = dc.registry().lookup("/hw/node1/temp_c").unwrap();
    assert!(!dc.store().range(other, mins(5), mins(25)).is_empty());
}

#[test]
fn burst_load_adds_jobs_without_corrupting_telemetry() {
    let schedule = FaultSchedule::new(14).with(
        TelemetryFaultKind::BurstLoad {
            jobs: 6,
            duration_s: 300.0,
        },
        mins(5),
        mins(6),
    );
    let faulty = run_site(14, Some(schedule));
    let clean = run_site(14, None);
    assert!(
        faulty.snapshot().completed > clean.snapshot().completed,
        "burst jobs must run to completion"
    );
    let tf = faulty.telemetry_faults().unwrap();
    assert_eq!(tf.suppressed(), 0);
    assert_eq!(tf.corrupted(), 0);
}

#[test]
fn forecaster_abstains_when_most_of_the_window_is_missing() {
    // Dropout covers ~70% of the run; feed the gap-tolerant forecaster one
    // sample (or NaN) per sampling frame, the way the soak harness does.
    let schedule = FaultSchedule::new(15).with(
        TelemetryFaultKind::SensorDropout {
            pattern: "/facility/power/it_kw".to_owned(),
        },
        mins(8),
        mins(30),
    );
    let mut dc = DataCenter::builder(DataCenterConfig::tiny())
        .seed(15)
        .build();
    dc.set_fault_schedule(schedule);
    let it = dc.registry().lookup("/facility/power/it_kw").unwrap();
    let mut forecaster = GapTolerant::new(Holt::new(0.4, 0.1), 3, 40);
    let sub = dc
        .bus()
        .subscription("/facility/power/it_kw")
        .capacity(64)
        .named("chaos-forecast")
        .subscribe();
    let mut frame = None;
    for tick in 1..=TICKS {
        dc.step();
        while let Ok(batch) = sub.rx.try_recv() {
            frame = batch.readings.last().map(|r| r.value);
        }
        if tick % SAMPLE_EVERY == 0 {
            forecaster.update(frame.take().unwrap_or(f64::NAN));
        }
    }
    assert!(dc.store().sensor_health(it).unwrap().len > 0);
    assert!(
        forecaster.missing_fraction() > 0.5,
        "dropout must dominate the recent window"
    );
    assert_eq!(forecaster.forecast(1), None, "forecaster must abstain");
}

#[test]
fn hybrid_soak_digest_survives_a_mid_run_archive_restart_at_any_worker_count() {
    use hpc_oda::telemetry::storage::BackendKind;
    use oda_bench::chaos::{run_soak, SoakConfig};

    const SOAK_TICKS: u64 = 2_000; // 2 evaluation windows at the default width
    let soak = |workers: usize| SoakConfig::clean(23, SOAK_TICKS).with_workers(workers);
    // The in-memory baseline pins what an uninterrupted volatile archive
    // produces; the durable lanes must reproduce it bit for bit.
    let baseline = run_soak(&soak(1));
    for workers in [1usize, 4] {
        let hybrid = run_soak(&soak(workers).with_backend(BackendKind::Hybrid));
        let restarted = run_soak(
            &soak(workers)
                .with_backend(BackendKind::Hybrid)
                .with_restart_at_window(1),
        );
        assert_eq!(restarted.restarts, 1, "the drill must have fired");
        assert!(
            restarted.recovered_readings > 0,
            "recovery must replay the durable archive"
        );
        assert_eq!(
            hybrid.digest, restarted.digest,
            "workers={workers}: restart-in-the-middle changed the output digest"
        );
        if workers == 1 {
            assert_eq!(
                baseline.digest, hybrid.digest,
                "hybrid backend changed the output digest vs in-memory"
            );
        }
    }
}

#[test]
fn identical_seeds_reproduce_the_degraded_run_exactly() {
    let schedule = || {
        FaultSchedule::new(16)
            .with(
                TelemetryFaultKind::NanBurst {
                    pattern: "/hw/*/power_w".to_owned(),
                    p: 0.4,
                },
                mins(3),
                mins(20),
            )
            .with(
                TelemetryFaultKind::Spike {
                    pattern: "/facility/pue".to_owned(),
                    magnitude: 10.0,
                    p: 0.3,
                },
                mins(6),
                mins(22),
            )
            .with(
                TelemetryFaultKind::SensorDropout {
                    pattern: "/hw/node3/*".to_owned(),
                },
                mins(8),
                mins(18),
            )
    };
    let a = run_site(16, Some(schedule()));
    let b = run_site(16, Some(schedule()));
    let ta = a.telemetry_faults().unwrap();
    let tb = b.telemetry_faults().unwrap();
    assert_eq!(ta.suppressed(), tb.suppressed());
    assert_eq!(ta.corrupted(), tb.corrupted());
    for name in ["/facility/pue", "/hw/node0/power_w", "/hw/node3/temp_c"] {
        let ia = a.registry().lookup(name).unwrap();
        let ib = b.registry().lookup(name).unwrap();
        assert_eq!(
            a.store().last_n(ia, 10_000),
            b.store().last_n(ib, 10_000),
            "series {name} must replay identically"
        );
    }
    // And all three fault kinds were concurrently active mid-run.
    assert!(ta.active_at(mins(10)).len() >= 3);
}
