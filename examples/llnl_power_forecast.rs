//! The LLNL utility-notification scenario (paper §V-C, Abdulla et al.):
//! Fourier analysis of historical site power finds periodic spike
//! patterns; extrapolating them forecasts the ±threshold power swings the
//! utility must be notified about.
//!
//! ```text
//! cargo run --release --example llnl_power_forecast
//! ```

use hpc_oda::analytics::descriptive::dashboard::sparkline;
use hpc_oda::analytics::predictive::fft::{dominant_periods, predicted_swings};
use hpc_oda::analytics::predictive::harmonic::HarmonicModel;
use hpc_oda::sim::prelude::*;

fn main() {
    // Six days of 15-minute site power samples: a small simulated site,
    // smoothed to model the aggregate of a large one, plus the periodic
    // operational loads whose patterns the LLNL analysis discovered.
    let days = 6.0;
    let mut dc = DataCenter::builder(DataCenterConfig::small())
        .seed(5)
        .build();
    let buckets = (days * 96.0) as usize;
    let ticks_per_bucket = 900_000 / dc.config().tick_ms;
    let mut raw = Vec::with_capacity(buckets);
    for _ in 0..buckets {
        let mut acc = 0.0;
        for _ in 0..ticks_per_bucket {
            dc.step();
            acc += dc.snapshot().total_power_kw;
        }
        raw.push(acc / ticks_per_bucket as f64);
    }
    let trace: Vec<f64> = (0..buckets)
        .map(|b| {
            let lo = b.saturating_sub(4);
            let hi = (b + 5).min(buckets);
            let base = raw[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            let hour = (b as f64 * 0.25) % 24.0;
            let mut v = base;
            if (2.0..2.75).contains(&hour) {
                v += base * 0.5; // nightly backup window
            }
            if (b % 24) < 2 {
                v += base * 0.2; // 6-hourly scrub pulse
            }
            v
        })
        .collect();

    println!("site power, day 1 (96 × 15-min buckets):");
    println!("  {}", sparkline(&trace[..96]));

    // Step 1 (diagnostic): what periods dominate the spectrum?
    println!("\ndominant periods in the power spectrum:");
    for (period_samples, power) in dominant_periods(&trace, 4) {
        println!(
            "  {:>6.1} samples = {:>5.1} h   (spectral power {:.0})",
            period_samples,
            period_samples * 0.25,
            power
        );
    }

    // Step 2 (predictive): harmonic fit at the daily fundamental, forecast
    // the last day, and flag notification-worthy swings.
    let split = buckets - 96;
    let model = HarmonicModel::fit(&trace[..split], 96.0, 40).expect("five days of history");
    let forecast = model.forecast(96);
    let mean = trace.iter().sum::<f64>() / trace.len() as f64;
    let threshold = mean * 0.12;
    let predicted = predicted_swings(&forecast, threshold, 2);
    let actual = predicted_swings(&trace[split..], threshold, 2);

    println!("\nforecast of the final day vs truth:");
    println!("  truth     {}", sparkline(&trace[split..]));
    println!("  forecast  {}", sparkline(&forecast));
    println!("\nnotification rule: swing > {threshold:.2} kW within 30 min (scaled 750 kW/15 min)");
    println!("  actual events    at buckets {actual:?}");
    println!("  predicted events at buckets {predicted:?}");
    let hits = actual
        .iter()
        .filter(|&&a| predicted.iter().any(|&p| p.abs_diff(a) <= 2))
        .count();
    println!(
        "  anticipated {hits}/{} events ahead of time — enough to notify the utility",
        actual.len()
    );
}
