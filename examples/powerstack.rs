//! A Powerstack-style system (paper §V-B, Fig. 3, Wu et al.): cross-pillar
//! power management — predictive techniques informing prescriptive control
//! of hardware knobs, scheduling, and application settings at once.
//!
//! The example composes four of the reference cells into one pipeline,
//! runs it against a live site, applies the prescriptions, and reports the
//! power-management outcome against an uncontrolled twin.
//!
//! ```text
//! cargo run --release --example powerstack
//! ```

use hpc_oda::core::analytics_type::AnalyticsType;
use hpc_oda::core::capability::{Artifact, CapabilityContext};
use hpc_oda::core::cells::predictive::HardwareForecaster;
use hpc_oda::core::cells::prescriptive::{AppAutoTuner, DvfsTuner, SchedulerTuner};
use hpc_oda::core::grid::GridFootprint;
use hpc_oda::core::pipeline::StagedPipeline;
use hpc_oda::core::systems;
use hpc_oda::sim::prelude::*;
use hpc_oda::sim::scheduler::placement::{CoolingAware, FirstFit, PackRacks, PowerAware};
use hpc_oda::telemetry::query::TimeRange;
use hpc_oda::telemetry::reading::Timestamp;
use std::sync::Arc;

fn apply_prescriptions(dc: &mut DataCenter, artifacts: &[&Artifact]) -> Vec<String> {
    let mut applied = Vec::new();
    for a in artifacts {
        if let Artifact::Prescription {
            action,
            setting,
            automatable: true,
            ..
        } = a
        {
            if let Some(node_part) = action.strip_suffix("/freq_ghz") {
                if let (Some(idx), Ok(f)) = (
                    node_part
                        .strip_prefix("node")
                        .and_then(|s| s.parse::<u32>().ok()),
                    setting.parse::<f64>(),
                ) {
                    dc.set_node_freq(NodeId(idx), f);
                    applied.push(format!("{action}={setting}"));
                }
            } else if action == "placement_policy" {
                let policy: Box<dyn PlacementPolicy> = match setting.as_str() {
                    "cooling-aware" => Box::new(CoolingAware),
                    "pack-racks" => Box::new(PackRacks),
                    "power-aware" => Box::new(PowerAware),
                    _ => Box::new(FirstFit),
                };
                dc.set_placement_policy(policy);
                applied.push(format!("placement={setting}"));
            }
        }
    }
    applied
}

fn main() {
    println!("Powerstack-style cross-pillar power management\n");
    let blueprint = systems::powerstack();
    println!("{}\n", blueprint.render());

    // Controlled site: the pipeline runs hourly and its prescriptions are
    // applied. Uncontrolled twin: same seed, no ODA.
    let mut controlled = DataCenter::builder(DataCenterConfig::small())
        .seed(99)
        .build();
    let mut twin = DataCenter::builder(DataCenterConfig::small())
        .seed(99)
        .build();

    let mut pipeline = StagedPipeline::new()
        .with_stage(
            AnalyticsType::Predictive,
            Box::new(HardwareForecaster::new()),
        )
        .with_stage(AnalyticsType::Prescriptive, Box::new(DvfsTuner::new()))
        .with_stage(AnalyticsType::Prescriptive, Box::new(SchedulerTuner::new()))
        .with_stage(AnalyticsType::Prescriptive, Box::new(AppAutoTuner::new()));

    // The composed system's own grid footprint:
    let mut footprint = GridFootprint::EMPTY;
    for f in [
        HardwareForecaster::new().footprint_of(),
        DvfsTuner::new().footprint_of(),
        SchedulerTuner::new().footprint_of(),
        AppAutoTuner::new().footprint_of(),
    ] {
        footprint = footprint.union(f);
    }
    println!("our composition's footprint:\n{}", footprint.render());

    println!("hour   controlled IT kWh   twin IT kWh   applied");
    for hour in 1..=10 {
        controlled.run_for_hours(1.0);
        twin.run_for_hours(1.0);
        let ctx = CapabilityContext::new(
            Arc::clone(controlled.store()),
            controlled.registry().clone(),
            TimeRange::new(Timestamp::ZERO, controlled.now() + 1),
            controlled.now(),
        );
        let run = pipeline.run(ctx);
        let applied = apply_prescriptions(&mut controlled, &run.artifacts());
        println!(
            "{hour:>4}   {:>15.2}   {:>11.2}   {} actions",
            controlled.snapshot().it_energy_kwh,
            twin.snapshot().it_energy_kwh,
            applied.len(),
        );
    }
    let c = controlled.snapshot();
    let t = twin.snapshot();
    let work = |dc: &DataCenter| -> f64 {
        dc.finished_jobs()
            .iter()
            .filter(|r| r.state == JobState::Completed)
            .map(|r| r.work_node_seconds)
            .sum()
    };
    let (wc, wt) = (work(&controlled), work(&twin));
    println!(
        "\nresult: IT energy {:.2} vs {:.2} kWh ({:+.1}%); completed work {:.0} vs {:.0} node·s \
         ({:+.1}%); energy per kilonode·s {:.3} vs {:.3}",
        c.it_energy_kwh,
        t.it_energy_kwh,
        (c.it_energy_kwh / t.it_energy_kwh - 1.0) * 100.0,
        wc,
        wt,
        (wc / wt - 1.0) * 100.0,
        c.it_energy_kwh / (wc / 1_000.0),
        t.it_energy_kwh / (wt / 1_000.0),
    );
}

/// Local helper: expose a capability's footprint without consuming it.
trait FootprintOf {
    fn footprint_of(&self) -> GridFootprint;
}

impl<T: hpc_oda::core::capability::Capability> FootprintOf for T {
    fn footprint_of(&self) -> GridFootprint {
        self.footprint()
    }
}
