//! §V-A in miniature: one node, one ramping workload, two governors.
//!
//! The fleet-scale version of this comparison is experiment E5
//! (`cargo run -p oda-bench --bin proactive`); this example zooms into a
//! single node so the *mechanism* is visible. A governor's decision is
//! applied during the **next** control interval — that is the physical
//! reality every DVFS loop lives with — so the reactive governor's clock
//! always trails the workload by one interval, while the proactive
//! governor's trend forecast closes the gap on every ramp.
//!
//! ```text
//! cargo run --release --example proactive_vs_reactive
//! ```

use hpc_oda::analytics::predictive::forecast::Holt;
use hpc_oda::analytics::prescriptive::dvfs::{DvfsGovernor, FreqPolicy, GovernorMode};

fn main() {
    // A triangle-wave workload: utilization ramps up over 12 intervals,
    // back down over 12 — the phase structure of real HPC codes
    // alternating compute and I/O.
    let utilization: Vec<f64> = (0..96)
        .map(|i| {
            let x = (i % 24) as f64;
            if x < 12.0 {
                x / 12.0
            } else {
                2.0 - x / 12.0
            }
        })
        .collect();

    let policy = FreqPolicy::default_for_range(1.2, 3.0);
    let mut reactive = DvfsGovernor::new(
        policy,
        GovernorMode::Reactive,
        Box::new(Holt::new(0.9, 0.9)),
    );
    let mut proactive = DvfsGovernor::new(
        policy,
        GovernorMode::Proactive,
        Box::new(Holt::new(0.9, 0.9)),
    );

    // Decisions apply to the NEXT interval.
    let mut applied_r = 3.0f64;
    let mut applied_p = 3.0f64;
    let mut deficit_r = 0.0f64;
    let mut deficit_p = 0.0f64;
    println!("t    util   ideal GHz   reactive(applied)   proactive(applied)");
    for (t, &u) in utilization.iter().enumerate() {
        let ideal = policy.frequency_for(u);
        // Clock deficit: how far below the ideal clock the node actually
        // ran this interval (performance loss on up-ramps).
        deficit_r += (ideal - applied_r).max(0.0);
        deficit_p += (ideal - applied_p).max(0.0);
        if (24..36).contains(&t) {
            println!("{t:>3}  {u:<6.2} {ideal:<11.2} {applied_r:<19.2} {applied_p:<18.2}");
        }
        applied_r = reactive.decide(u);
        applied_p = proactive.decide(u);
    }
    println!("\ncumulative clock deficit while ramping (GHz·intervals):");
    println!("  reactive:  {deficit_r:.2}");
    println!("  proactive: {deficit_p:.2}");
    assert!(deficit_p < deficit_r, "proactive must lead on ramps");
    println!(
        "\nOn every up-ramp the reactive governor is one interval late with the\n\
         clock; the proactive governor's Holt forecast extrapolates the ramp and\n\
         closes most of that gap — §V-A's predictive + prescriptive combination."
    );
}
