//! The deployment story in one file: replay a standard-format workload
//! trace on the simulated site, run the ODA runtime's periodic
//! monitor→analyse→actuate passes against it, and export the evidence.
//!
//! Demonstrates the three adoption-facing APIs:
//! * `oda_sim::swf` — Standard Workload Format import/replay,
//! * `oda_core::runtime` — the closed-loop `OdaRuntime` + `ControlPlane`,
//! * `oda_telemetry::export` — CSV export of the archive.
//!
//! ```text
//! cargo run --release --example oda_runtime
//! ```

use hpc_oda::core::analytics_type::AnalyticsType;
use hpc_oda::core::cells;
use hpc_oda::core::runtime::{OdaRuntime, SimControlPlane};
use hpc_oda::sim::prelude::*;
use hpc_oda::sim::swf;
use hpc_oda::telemetry::export::to_csv_wide;
use hpc_oda::telemetry::query::TimeRange;
use std::sync::Arc;

/// A small SWF trace (the archive format of Feitelson's Parallel
/// Workloads Archive): job#, submit, wait, runtime, procs, ..., req
/// procs, req time, ..., status, user, ..., executable#.
const TRACE: &str = "\
; demo trace, SWF fields
1     60 -1 1800 4 -1 -1 4 3600 -1 1 11 -1 0 -1 -1 -1 -1
2    300 -1  900 2 -1 -1 2 1800 -1 1 12 -1 1 -1 -1 -1 -1
3    600 -1 2400 8 -1 -1 8 4800 -1 1 13 -1 2 -1 -1 -1 -1
4   1800 -1 1200 1 -1 -1 1 2400 -1 1 11 -1 3 -1 -1 -1 -1
5   3600 -1 1800 4 -1 -1 4 3600 -1 1 12 -1 0 -1 -1 -1 -1
6   5400 -1  600 2 -1 -1 2 1200 -1 1 14 -1 1 -1 -1 -1 -1
";

fn main() {
    // A quiet site: the replayed trace is the whole workload.
    let mut cfg = DataCenterConfig::small();
    cfg.workload.mean_interarrival_s = 1e9;
    let mut dc = DataCenter::builder(cfg).seed(77).build();

    let trace = swf::parse_swf(TRACE);
    println!("parsed {} jobs from the SWF trace", trace.len());

    // The runtime: forecasting feeding cooling control, DVFS, and the
    // scheduler tuner — audit-logged, autopilot on.
    let mut runtime = OdaRuntime::new(2 * 3_600_000)
        .with_capability(
            AnalyticsType::Diagnostic,
            Box::new(cells::diagnostic::InfraAnomalyDetector::new()),
        )
        .with_capability(
            AnalyticsType::Predictive,
            Box::new(cells::predictive::InfraForecaster::new()),
        )
        .with_capability(
            AnalyticsType::Prescriptive,
            Box::new(cells::prescriptive::CoolingOptimizer::new()),
        )
        .with_capability(
            AnalyticsType::Prescriptive,
            Box::new(cells::prescriptive::DvfsTuner::new()),
        );

    // Replay hour by hour, one runtime pass per hour; the Replayer keeps
    // its position in the trace across slices.
    let mut replayer = swf::Replayer::new(trace);
    println!("\nhour  applied  deferred  diagnoses  setpoint  IT kWh");
    for hour in 1..=4 {
        replayer.advance(&mut dc, 1.0);
        let report = runtime.pass(
            Arc::clone(dc.store()),
            dc.registry().clone(),
            dc.now(),
            &mut SimControlPlane { dc: &mut dc },
        );
        let snap = dc.snapshot();
        println!(
            "{hour:>4}  {:>7}  {:>8}  {:>9}  {:>8.1}  {:>6.2}",
            report.applied, report.deferred, report.diagnoses, snap.setpoint_c, snap.it_energy_kwh
        );
    }
    assert_eq!(replayer.remaining(), 0, "whole trace submitted");

    // The audit log is the deployable system's memory of what it did.
    println!("\naudit log (last 8 entries):");
    for rec in runtime.audit_log().iter().rev().take(8).rev() {
        println!(
            "  [{}] {:<18} {} := {}  ({:?})",
            rec.at, rec.source, rec.action, rec.setting, rec.outcome
        );
    }

    // Export an hour of facility telemetry for offline tooling.
    let sensors = [
        dc.registry().lookup("/facility/power/it_kw").unwrap(),
        dc.registry().lookup("/facility/pue").unwrap(),
        dc.registry().lookup("/facility/outside_temp").unwrap(),
    ];
    let csv = to_csv_wide(
        dc.store(),
        dc.registry(),
        &sensors,
        TimeRange::new(dc.now() - 3_600_000, dc.now() + 1),
        300_000,
    );
    println!("\nCSV export of the last hour (5-min buckets):\n{csv}");

    // And the accounting goes back out as SWF.
    let swf_out = swf::export_swf(dc.finished_jobs());
    println!("SWF re-export of the session's accounting:\n{swf_out}");
}
