//! Quickstart: stand up a simulated HPC site, let it run, and read it
//! through the ODA framework.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hpc_oda::core::capability::{Artifact, Capability, CapabilityContext};
use hpc_oda::core::cells::descriptive::{FacilityDashboard, HardwareDashboard, SchedulerDashboard};
use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::query::TimeRange;
use hpc_oda::telemetry::reading::Timestamp;
use std::sync::Arc;

fn main() {
    // 1. A small simulated data center: 4 racks × 8 nodes, with weather,
    //    cooling plant, scheduler and a synthetic user workload.
    let mut dc = DataCenter::builder(DataCenterConfig::small())
        .seed(2024)
        .build();

    // 2. Let it operate for six simulated hours. Telemetry for every
    //    modelled quantity lands in the archive automatically.
    println!("running 6 simulated hours of operations...");
    dc.run_for_hours(6.0);

    // 3. Point capabilities at the telemetry, exactly as a real ODA stack
    //    would read a monitoring database.
    let ctx = CapabilityContext::new(
        Arc::clone(dc.store()),
        dc.registry().clone(),
        TimeRange::new(Timestamp::ZERO, dc.now() + 1),
        dc.now(),
    );

    let mut facility = FacilityDashboard::new();
    let mut hardware = HardwareDashboard::new();
    let mut sched = SchedulerDashboard::new();
    sched.set_records(dc.finished_jobs().to_vec());

    for capability in [
        &mut facility as &mut dyn Capability,
        &mut hardware,
        &mut sched,
    ] {
        println!("== {} ==", capability.name());
        for artifact in capability.execute(&ctx) {
            match artifact {
                Artifact::Report { title, body } => {
                    println!("-- {title} --\n{body}");
                }
                Artifact::Kpi { name, value } => println!("KPI {name} = {value:.3}"),
                other => println!("{other:?}"),
            }
        }
        println!();
    }

    // 4. The snapshot is the ground truth the dashboards should agree with.
    let snap = dc.snapshot();
    println!(
        "ground truth: PUE {:.3} | IT {:.1} kW | cooling {:.1} kW | {} jobs done ({} killed)",
        snap.pue, snap.it_power_kw, snap.cooling_power_kw, snap.completed, snap.killed
    );
}
