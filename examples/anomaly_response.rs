//! The ENI anomaly-response scenario (paper §V-A, Fig. 3, Bortot et al.):
//! a *diagnostic* component identifies an infrastructure anomaly, a
//! *prescriptive* component responds — both inside the Building
//! Infrastructure pillar, but requiring two different disciplines.
//!
//! A cooling-plant degradation is injected mid-run; the staged pipeline
//! detects it from the plant's specific power and prescribes a response,
//! which the control plane applies. The example prints the KPI trajectory
//! so the detection → response → relief sequence is visible.
//!
//! ```text
//! cargo run --release --example anomaly_response
//! ```

use hpc_oda::analytics::prescriptive::recommend::{recommend, Diagnosis};
use hpc_oda::core::analytics_type::AnalyticsType;
use hpc_oda::core::capability::{Artifact, CapabilityContext};
use hpc_oda::core::cells::diagnostic::InfraAnomalyDetector;
use hpc_oda::core::cells::prescriptive::CoolingOptimizer;
use hpc_oda::core::pipeline::StagedPipeline;
use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::query::TimeRange;
use hpc_oda::telemetry::reading::Timestamp;
use std::sync::Arc;

fn main() {
    let mut dc = DataCenter::builder(DataCenterConfig::small())
        .seed(17)
        .build();
    // The plant degrades (fouled heat exchanger) three hours in.
    dc.inject_fault(Fault::new(
        FaultKind::CoolingDegradation { factor: 2.5 },
        Timestamp::from_hours(3),
        Timestamp::from_hours(48),
    ));

    let mut pipeline = StagedPipeline::new()
        .with_stage(
            AnalyticsType::Diagnostic,
            Box::new(InfraAnomalyDetector::new()),
        )
        .with_stage(
            AnalyticsType::Prescriptive,
            Box::new(CoolingOptimizer::new()),
        );

    println!("hour   PUE    cooling kW   setpoint   events");
    let mut responded = false;
    for hour in 1..=8 {
        dc.run_for_hours(1.0);
        let ctx = CapabilityContext::new(
            Arc::clone(dc.store()),
            dc.registry().clone(),
            TimeRange::new(Timestamp::ZERO, dc.now() + 1),
            dc.now(),
        );
        let run = pipeline.run(ctx);
        let mut events = Vec::new();
        for artifact in run.artifacts() {
            match artifact {
                Artifact::Diagnosis {
                    kind,
                    subject,
                    severity,
                    ..
                } => {
                    events.push(format!("DETECTED {kind} on {subject} (sev {severity:.2})"));
                    // Operators also get ranked recommendations.
                    let recs = recommend(&[Diagnosis {
                        kind: kind.clone(),
                        subject: subject.clone(),
                        severity: *severity,
                    }]);
                    events.push(format!("RECOMMEND: {}", recs[0].action));
                }
                Artifact::Prescription {
                    action,
                    setting,
                    automatable,
                    ..
                } => {
                    // The control plane applies automatable prescriptions.
                    // Once the anomaly response fired, the conservative
                    // setting is latched until the plant is serviced —
                    // normal operation must not silently override it.
                    if *automatable && action == "cooling_setpoint_c" && !responded {
                        if let Ok(sp) = setting.parse::<f64>() {
                            dc.set_cooling_setpoint(sp);
                        }
                    }
                    if action == "service_ticket" && !responded {
                        events.push(format!("RESPONSE latched: {setting}"));
                        responded = true;
                    }
                }
                _ => {}
            }
        }
        let snap = dc.snapshot();
        println!(
            "{hour:>4}   {:<6.3} {:<12.2} {:<10.1} {}",
            snap.pue,
            snap.cooling_power_kw,
            snap.setpoint_c,
            events.join(" | ")
        );
    }
    println!(
        "\nThe diagnostic stage needed data-science expertise; the prescriptive stage\n\
         needed plant knowledge and control access — the two-discipline fusion §V-A\n\
         identifies as the cost of multi-type ODA."
    );
}
