//! What-if scheduler simulation — the Predictive × System-Software cell
//! the paper cites as "Simulating HPC systems and schedulers \[49\]–\[51\]"
//! (AccaSim, Batsim, Alea).
//!
//! The question those simulators answer: *before* changing the production
//! scheduler, what would each candidate policy have done with our
//! workload? Here `oda-sim` itself plays the simulator: the identical
//! workload (same seed) is replayed under every placement policy and the
//! resulting KPIs are compared. The winner becomes a prescription for the
//! real system.
//!
//! ```text
//! cargo run --release --example policy_whatif
//! ```

use hpc_oda::sim::prelude::*;
use hpc_oda::sim::scheduler::placement::{CoolingAware, FirstFit, PackRacks, PowerAware};

struct Outcome {
    policy: &'static str,
    utility_kwh: f64,
    mean_slowdown: f64,
    completed: u64,
    killed: u64,
    max_temp: f64,
}

type PolicyCtor = fn() -> Box<dyn PlacementPolicy>;

fn replay(policy_name: &'static str, make: PolicyCtor, seed: u64) -> Outcome {
    let mut cfg = DataCenterConfig::small();
    // A thermally heterogeneous room and a busier queue make placement
    // choices consequential.
    cfg.max_rack_inlet_offset_c = 6.0;
    cfg.workload.mean_interarrival_s = 60.0;
    let mut dc = DataCenter::builder(cfg).seed(seed).build();
    dc.set_placement_policy(make());
    let mut max_temp = 0.0f64;
    for _ in 0..8 {
        dc.run_for_hours(1.0);
        max_temp = max_temp.max(dc.snapshot().max_node_temp_c);
    }
    let snap = dc.snapshot();
    let stats = dc.scheduler().stats();
    let finished = (stats.completed + stats.killed).max(1);
    Outcome {
        policy: policy_name,
        utility_kwh: snap.utility_energy_kwh,
        mean_slowdown: stats.total_bounded_slowdown / finished as f64,
        completed: stats.completed,
        killed: stats.killed,
        max_temp,
    }
}

fn main() {
    println!("What-if replay: identical 8 h workload under four placement policies\n");
    let candidates: [(&'static str, PolicyCtor); 4] = [
        ("first-fit", || Box::new(FirstFit)),
        ("cooling-aware", || Box::new(CoolingAware)),
        ("pack-racks", || Box::new(PackRacks)),
        ("power-aware", || Box::new(PowerAware)),
    ];
    let seed = 31;
    let mut outcomes: Vec<Outcome> = candidates
        .iter()
        .map(|(name, make)| replay(name, *make, seed))
        .collect();

    println!(
        "{:<15} {:>12} {:>10} {:>6} {:>7} {:>10}",
        "policy", "utility kWh", "slowdown", "done", "killed", "peak °C"
    );
    println!("{}", "-".repeat(66));
    for o in &outcomes {
        println!(
            "{:<15} {:>12.2} {:>10.2} {:>6} {:>7} {:>10.1}",
            o.policy, o.utility_kwh, o.mean_slowdown, o.completed, o.killed, o.max_temp
        );
    }

    // The prescription: pick by energy, break ties by slowdown — the
    // "identify optimal scheduling policies in function of a site's
    // workload" use the cited simulators serve.
    outcomes.sort_by(|a, b| {
        a.utility_kwh
            .total_cmp(&b.utility_kwh)
            .then(a.mean_slowdown.total_cmp(&b.mean_slowdown))
    });
    println!(
        "\nprescription: adopt '{}' ({:.2} kWh, slowdown {:.2})",
        outcomes[0].policy, outcomes[0].utility_kwh, outcomes[0].mean_slowdown
    );
}
