//! A tour of the conceptual framework itself: the four pillars (Fig. 1),
//! the four types (Fig. 2), the 4×4 grid with Table I, the Fig. 3 complex
//! systems, and a live staged pipeline run over a simulated site.
//!
//! ```text
//! cargo run --release --example framework_tour
//! ```

use hpc_oda::core::analytics_type::AnalyticsType;
use hpc_oda::core::capability::CapabilityContext;
use hpc_oda::core::cells;
use hpc_oda::core::pillar::Pillar;
use hpc_oda::core::pipeline::StagedPipeline;
use hpc_oda::core::registry::CapabilityRegistry;
use hpc_oda::core::survey;
use hpc_oda::core::systems;
use hpc_oda::sim::prelude::*;
use hpc_oda::telemetry::query::TimeRange;
use hpc_oda::telemetry::reading::Timestamp;
use std::sync::Arc;

fn main() {
    // ----- Figure 1: the four pillars -----------------------------------
    println!("FIGURE 1 — the four pillars of energy-efficient HPC\n");
    for p in Pillar::ALL {
        println!(
            "  {:<24} telemetry domain /{:<9} {}",
            p.name(),
            p.telemetry_domain(),
            p.definition()
        );
    }

    // ----- Figure 2: the four types --------------------------------------
    println!("\nFIGURE 2 — the four types of data analytics (hindsight → foresight)\n");
    for t in AnalyticsType::ALL {
        println!(
            "  {:<13} {:<45} {}",
            t.name(),
            t.question(),
            if t.is_foresight() {
                "foresight"
            } else {
                "hindsight"
            }
        );
    }

    // ----- Table I: the survey corpus ------------------------------------
    println!("\nTABLE I — surveyed ODA use cases classified on the grid\n");
    println!("{}", survey::render_table1());
    let stats = survey::pillar_stats();
    println!(
        "survey statistics: {} distinct cited works; {} single-pillar, {} multi-pillar, {} multi-type",
        stats.total, stats.single_pillar, stats.multi_pillar, stats.multi_type
    );

    // ----- Figure 3: complex systems mapped on the grid ------------------
    println!("\nFIGURE 3 — complex ODA systems\n");
    for system in systems::figure3_systems() {
        println!("{}\n", system.render());
    }

    // ----- The grid, executable: 16 cells over a live simulation ---------
    println!("RUNNING THE GRID — all sixteen reference capabilities on a simulated site\n");
    let mut dc = DataCenter::builder(DataCenterConfig::small())
        .seed(7)
        .build();
    dc.run_for_hours(3.0);

    let mut registry = CapabilityRegistry::new();
    for c in cells::all_sixteen() {
        registry.register(c);
    }
    let coverage = registry.coverage();
    println!(
        "registered {} capabilities; union footprint covers {}/16 cells ({} gaps)\n{}",
        registry.len(),
        coverage.union.count(),
        coverage.gaps.len(),
        coverage.union.render()
    );

    let ctx = CapabilityContext::new(
        Arc::clone(dc.store()),
        dc.registry().clone(),
        TimeRange::new(Timestamp::ZERO, dc.now() + 1),
        dc.now(),
    );
    for (name, artifacts) in registry.execute_all(&ctx) {
        println!("  {:<26} → {:2} artifacts", name, artifacts.len());
    }

    // ----- A staged pipeline: descriptive → ... → prescriptive -----------
    println!("\nSTAGED PIPELINE — §V-A wiring, predictive output feeding prescriptive\n");
    let mut pipeline = StagedPipeline::new()
        .with_stage(
            AnalyticsType::Descriptive,
            Box::new(cells::descriptive::FacilityDashboard::new()),
        )
        .with_stage(
            AnalyticsType::Diagnostic,
            Box::new(cells::diagnostic::InfraAnomalyDetector::new()),
        )
        .with_stage(
            AnalyticsType::Predictive,
            Box::new(cells::predictive::InfraForecaster::new()),
        )
        .with_stage(
            AnalyticsType::Prescriptive,
            Box::new(cells::prescriptive::CoolingOptimizer::new()),
        );
    let ctx = CapabilityContext::new(
        Arc::clone(dc.store()),
        dc.registry().clone(),
        TimeRange::new(Timestamp::ZERO, dc.now() + 1),
        dc.now(),
    );
    let run = pipeline.run(ctx);
    for (stage, name, artifacts) in &run.stages {
        println!("  [{stage}] {name}: {} artifacts", artifacts.len());
        for a in artifacts.iter().take(3) {
            println!("      {a:?}");
        }
    }
}
