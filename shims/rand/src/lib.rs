//! Shim for `rand` 0.8: the subset the simulation engine uses.
//!
//! `SmallRng` here is xoshiro256++ seeded via splitmix64 — a different
//! (but high-quality, deterministic) stream than rand 0.8's SmallRng.
//! The workspace only relies on statistical properties and same-seed
//! reproducibility, never on exact draw sequences.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding by a single `u64`, the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small, fast PRNG: xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; splitmix64 of any
            // seed never yields four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable "from the standard distribution" via `rng.gen::<T>()`.
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `rng.gen_range(..)`.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Rejection-free bounded integer draw (Lemire-style multiply-shift).
#[inline]
fn bounded_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_f64_in_range_and_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&x));
            let y = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&y));
            let z = rng.gen_range(10u64..20);
            assert!((10..20).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
