//! Shim for `criterion`: runs each benchmark in a simple timed loop and
//! prints mean wall-clock ns/iter — no statistical analysis, plots, or
//! baselines. Invoked without `--bench` (e.g. by `cargo test`, which runs
//! `harness = false` bench targets), every benchmark executes exactly one
//! iteration so suites double as smoke tests.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; anything else (notably test mode)
        // gets the one-shot quick mode.
        let quick = !std::env::args().any(|a| a == "--bench");
        Criterion { quick }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.quick, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.criterion.quick, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.criterion.quick,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    quick: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, accumulating iterations until ~200ms of samples
    /// (quick mode: a single call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.quick {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters += 1;
            return;
        }
        // One warm-up call, untimed.
        black_box(f());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 1_000_000 {
            black_box(f());
            iters += 1;
        }
        self.elapsed += start.elapsed();
        self.iters += iters.max(1);
    }

    /// Like [`Bencher::iter`], but runs `setup` before each timed call and
    /// passes its output to the routine; only the routine is timed.
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if self.quick {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            return;
        }
        // One warm-up call, untimed.
        black_box(f(setup()));
        let budget = Duration::from_millis(200);
        let deadline = Instant::now() + budget;
        let mut iters = 0u64;
        while Instant::now() < deadline && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.elapsed += start.elapsed();
            iters += 1;
        }
        self.iters += iters.max(1);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, quick: bool, mut f: F) {
    let mut b = Bencher {
        quick,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("bench: {name:<52} {ns:>14.1} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench: {name:<52} (no measurement)");
    }
}

/// Expands to a function running each registered benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` invoking every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_quick() {
        benches();
    }
}
