//! Shim for `proptest`: the subset this workspace's property suites use.
//!
//! Differences from real proptest, on purpose:
//! - sampling is plain pseudo-random (no bias toward edge cases) and there
//!   is **no shrinking** — a failing case prints its sampled inputs instead;
//! - the per-test RNG seed is derived from the test's name, so runs are
//!   fully deterministic and independent of declaration order.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// RNG handed to strategies; deterministic per test name.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }
}

#[doc(hidden)]
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name keeps each test's stream stable and distinct.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng(SmallRng::seed_from_u64(h))
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_int_strategies!(i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 40.0 - 20.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection/sample strategy constructors, reachable as `prop::...`.
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi - self.size.lo + 1;
                let len = self.size.lo + rng.below(span);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        use super::super::{Strategy, TestRng};

        pub struct Select<T> {
            items: Vec<T>,
        }

        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select: empty choice set");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len())].clone()
            }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition. Expands to an early return from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `fn name()` that samples the strategies `cases` times and runs
/// the body; a panicking case reports its sampled inputs before propagating.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let case_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    move || { $body },
                ));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest shim: {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        case_inputs
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -5i64..=5, z in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.5..2.0).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_size(xs in prop::collection::vec(0u8..=255, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
        }

        #[test]
        fn select_draws_members(a in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!([1, 2, 3].contains(&a));
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_applies(fp in any::<u16>().prop_map(|x| x & 0xff)) {
            prop_assert!(fp <= 0xff);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        let mut c = super::test_rng("y");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
