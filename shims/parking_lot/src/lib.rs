//! Shim for `parking_lot`: the subset used by this workspace, backed by
//! `std::sync` primitives. Guards are returned directly (no `Result`);
//! poisoning is ignored, matching parking_lot semantics.

#![forbid(unsafe_code)]

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
