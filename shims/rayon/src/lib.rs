//! Shim for `rayon`: `par_iter().map(..).collect()/sum()` over slices,
//! the only shapes the workspace uses. Work is fanned out in contiguous
//! chunks with `std::thread::scope`, preserving input order; small
//! inputs run inline to avoid thread-spawn overhead.

#![forbid(unsafe_code)]

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Inputs below this length are processed on the calling thread.
const PARALLEL_THRESHOLD: usize = 64;

pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_chunked(self.items, &self.f).into_iter().collect()
    }

    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        run_chunked(self.items, &self.f).into_iter().sum()
    }
}

fn run_chunked<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(16);
    if items.len() < PARALLEL_THRESHOLD || threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order_small_and_large() {
        for n in [0usize, 5, 63, 64, 1000] {
            let xs: Vec<u64> = (0..n as u64).collect();
            let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
            assert_eq!(doubled, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sum_matches_sequential() {
        let xs: Vec<u32> = (0..10_000).collect();
        let s: u64 = xs.par_iter().map(|&x| x as u64).sum();
        assert_eq!(s, xs.iter().map(|&x| x as u64).sum::<u64>());
    }
}
