//! Shim for `serde_json`: renders the shim-serde [`Value`] model as JSON
//! (compact and pretty), plus a `json!` macro for flat object/array
//! literals. Output formatting matches real serde_json where the
//! workspace can observe it: 2-space pretty indentation, floats always
//! carry a decimal point or exponent, non-finite floats become `null`.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into the [`Value`] model.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON with 2-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

#[doc(hidden)]
pub fn __to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a flat JSON-ish literal. Values are arbitrary
/// serializable expressions; nested containers should themselves be
/// expressions (arrays work directly, nested maps via another `json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__to_value(&$elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::__to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::__to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `Display` expands extreme magnitudes to full decimal digit strings;
    // serde_json (via ryu) switches to exponent notation instead.
    let s = if x != 0.0 && (x.abs() >= 1e16 || x.abs() < 1e-5) {
        format!("{x:e}")
    } else {
        x.to_string()
    };
    out.push_str(&s);
    // serde_json always marks floats as such.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = json!({
            "name": "node0",
            "power": 215.5,
            "count": 3u32,
            "tags": ["a", "b"],
            "gone": f64::NAN,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"node0","power":215.5,"count":3,"tags":["a","b"],"gone":null}"#
        );
    }

    #[test]
    fn pretty_rendering_matches_serde_json_shape() {
        let v = json!({ "a": 1u32, "b": [true, false] });
        let expect = "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    false\n  ]\n}";
        assert_eq!(to_string_pretty(&v).unwrap(), expect);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&1e300f64).unwrap(), "1e300");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
