//! Shim for `serde_json`: renders the shim-serde [`Value`] model as JSON
//! (compact and pretty), parses JSON text back into [`Value`] via
//! [`from_str`], plus a `json!` macro for flat object/array literals.
//! Output formatting matches real serde_json where the workspace can
//! observe it: 2-space pretty indentation, floats always carry a decimal
//! point or exponent, non-finite floats become `null`. The parser accepts
//! exactly RFC 8259 JSON (no comments, no trailing commas) and keeps
//! integers exact (`I64`/`U64`) where they fit, falling back to `F64`.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into the [`Value`] model.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON with 2-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

#[doc(hidden)]
pub fn __to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Parses one JSON document from `s` into the [`Value`] model.
///
/// Strict RFC 8259: a single top-level value, no trailing garbage, no
/// comments, no trailing commas. Integers that fit `i64`/`u64` stay exact;
/// everything else numeric becomes `F64`. Nesting is bounded (128 levels)
/// so adversarial input cannot overflow the stack.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON document",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!(
            "{msg} at byte {} of JSON document",
            self.pos
        )))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Value> {
        if self.depth >= MAX_DEPTH {
            return self.err("JSON nested too deeply");
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.pos += 1; // '['
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                break;
            }
            if !self.eat(b',') {
                return self.err("expected `,` or `]` in array");
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn object(&mut self) -> Result<Value> {
        self.pos += 1; // '{'
        self.depth += 1;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected string key in object");
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return self.err("expected `:` after object key");
            }
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            if !self.eat(b',') {
                return self.err("expected `,` or `}` in object");
            }
        }
        self.depth -= 1;
        Ok(Value::Object(entries))
    }

    fn string(&mut self) -> Result<String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the unescaped run in one slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            match std::str::from_utf8(&self.bytes[start..self.pos]) {
                Ok(run) => out.push_str(run),
                Err(_) => return self.err("invalid UTF-8 in string"),
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return self.err("unpaired UTF-16 surrogate");
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                            continue; // hex4 advanced past the escape
                        }
                        _ => return self.err("invalid escape sequence"),
                    }
                    self.pos += 1;
                }
                Some(_) => return self.err("unescaped control character in string"),
                None => return self.err("unterminated string"),
            }
        }
    }

    /// Reads exactly four hex digits at the cursor, advancing past them.
    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return self.err("expected four hex digits"),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.eat(b'-');
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return self.err("expected digit in number");
        }
        // Leading zero may not be followed by more digits (RFC 8259).
        if self.eat(b'0') {
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return self.err("leading zero in number");
            }
        } else {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return self.err("expected digit after decimal point");
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return self.err("expected digit in exponent");
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return self.err("invalid number"),
        };
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::F64(x)),
            _ => self.err("number out of range"),
        }
    }
}

/// Builds a [`Value`] from a flat JSON-ish literal. Values are arbitrary
/// serializable expressions; nested containers should themselves be
/// expressions (arrays work directly, nested maps via another `json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__to_value(&$elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::__to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::__to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `Display` expands extreme magnitudes to full decimal digit strings;
    // serde_json (via ryu) switches to exponent notation instead.
    let s = if x != 0.0 && (x.abs() >= 1e16 || x.abs() < 1e-5) {
        format!("{x:e}")
    } else {
        x.to_string()
    };
    out.push_str(&s);
    // serde_json always marks floats as such.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = json!({
            "name": "node0",
            "power": 215.5,
            "count": 3u32,
            "tags": ["a", "b"],
            "gone": f64::NAN,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"node0","power":215.5,"count":3,"tags":["a","b"],"gone":null}"#
        );
    }

    #[test]
    fn pretty_rendering_matches_serde_json_shape() {
        let v = json!({ "a": 1u32, "b": [true, false] });
        let expect = "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    false\n  ]\n}";
        assert_eq!(to_string_pretty(&v).unwrap(), expect);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&1e300f64).unwrap(), "1e300");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let v = json!({
            "name": "node0",
            "power": 215.5,
            "count": 3u32,
            "neg": -7i64,
            "tags": ["a", "b"],
            "nested": json!({ "ok": true, "none": Value::Null }),
        });
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = from_str(r#""a\"b\\c\n\t\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("a\"b\\c\n\tA😀".to_string()));
    }

    #[test]
    fn parse_numbers_keep_integer_exactness() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
        assert_eq!(
            from_str("-9223372036854775808").unwrap(),
            Value::I64(i64::MIN)
        );
        assert_eq!(from_str("0.25").unwrap(), Value::F64(0.25));
        assert_eq!(from_str("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "01",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
            "{a:1}",
            "nan",
            "--1",
            "1.e3",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed JSON: {bad:?}");
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&ok).is_ok());
    }
}
