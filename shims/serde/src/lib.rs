//! Shim for `serde`: serialization is modelled as conversion to a JSON-like
//! [`Value`] tree (rendered by the `serde_json` shim). There is no
//! `Serializer`/`Deserializer` visitor machinery and no `#[serde(...)]`
//! attribute support — the workspace uses neither. `Deserialize` is a
//! marker trait so `#[derive(Deserialize)]` keeps compiling.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// JSON-shaped data model. Object entries preserve insertion order so
/// derived output is deterministic (field declaration order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All finite numbers; integers keep exact representation separately.
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait: the shim supports deriving it but not actually decoding.
pub trait Deserialize {}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // serde_json serializes non-finite floats as null.
            Value::Null
        }
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}
