//! Shim for `serde_derive`: derives the shim-serde `Serialize` (convert to
//! `serde::Value`) and marker `Deserialize` traits by parsing the item's
//! token stream directly — no `syn`/`quote`, so it builds with zero
//! dependencies.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields, tuple/newtype structs, unit structs
//! - enums with unit, tuple/newtype, and struct variants (externally
//!   tagged, matching real serde's default representation)
//! - type parameters without bounds (e.g. `CapabilityGrid<T>`)
//!
//! `#[serde(...)]` attributes are not interpreted (none exist in-tree).

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match Item::parse(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    item.serialize_impl()
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match Item::parse(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    item.deserialize_impl()
        .parse()
        .expect("generated Deserialize impl must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error must parse")
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut pos = 0usize;
        skip_attrs_and_vis(&tokens, &mut pos);

        let keyword = expect_ident(&tokens, &mut pos)?;
        let is_enum = match keyword.as_str() {
            "struct" => false,
            "enum" => true,
            other => return Err(format!("serde shim derive: unsupported item `{other}`")),
        };
        let name = expect_ident(&tokens, &mut pos)?;
        let generics = parse_generics(&tokens, &mut pos)?;
        skip_where_clause(&tokens, &mut pos);

        let body = if is_enum {
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Enum(parse_variants(g.stream())?)
                }
                _ => return Err("serde shim derive: enum body not found".into()),
            }
        } else {
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                _ => return Err("serde shim derive: struct body not found".into()),
            }
        };

        Ok(Item {
            name,
            generics,
            body,
        })
    }

    fn impl_header(&self, trait_name: &str) -> (String, String) {
        if self.generics.is_empty() {
            (String::new(), String::new())
        } else {
            let bounded: Vec<String> = self
                .generics
                .iter()
                .map(|g| format!("{g}: ::serde::{trait_name}"))
                .collect();
            (
                format!("<{}>", bounded.join(", ")),
                format!("<{}>", self.generics.join(", ")),
            )
        }
    }

    fn deserialize_impl(&self) -> String {
        let (bounds, args) = self.impl_header("Deserialize");
        format!(
            "impl{bounds} ::serde::Deserialize for {}{args} {{}}",
            self.name
        )
    }

    fn serialize_impl(&self) -> String {
        let (bounds, args) = self.impl_header("Serialize");
        let name = &self.name;
        let body = match &self.body {
            Body::Unit => "::serde::Value::Null".to_string(),
            // serde's newtype-struct representation: just the inner value.
            Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            }
            Body::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            Body::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.shape {
                            VariantShape::Unit => format!(
                                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                            ),
                            VariantShape::Tuple(1) => format!(
                                "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_value(f0))]),"
                            ),
                            VariantShape::Tuple(n) => {
                                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Array(::std::vec![{}]))]),",
                                    binds.join(", "),
                                    elems.join(", ")
                                )
                            }
                            VariantShape::Named(fields) => {
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Object(::std::vec![{}]))]),",
                                    fields.join(", "),
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(" "))
            }
        };
        format!(
            "impl{bounds} ::serde::Serialize for {name}{args} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
        )
    }
}

/// Skips outer attributes (`#[...]`, incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!(
            "serde shim derive: expected identifier, found {other:?}"
        )),
    }
}

/// Parses `<A, B, ...>` into the list of type-parameter names. Lifetimes
/// and const generics are rejected; bounds after `:` are skipped.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *pos += 1,
        _ => return Ok(params),
    }
    let mut depth = 1usize;
    let mut expecting_param = true;
    while depth > 0 {
        let tok = tokens
            .get(*pos)
            .ok_or("serde shim derive: unterminated generics")?;
        *pos += 1;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                return Err("serde shim derive: lifetime generics unsupported".into())
            }
            TokenTree::Ident(id) if depth == 1 && expecting_param => {
                let s = id.to_string();
                if s == "const" {
                    return Err("serde shim derive: const generics unsupported".into());
                }
                params.push(s);
                expecting_param = false;
            }
            _ => {}
        }
    }
    Ok(params)
}

fn skip_where_clause(tokens: &[TokenTree], pos: &mut usize) {
    if !matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return;
    }
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => return,
            TokenTree::Punct(p) if p.as_char() == ';' => return,
            _ => *pos += 1,
        }
    }
}

/// Parses `{ field: Type, ... }` field names, skipping attrs/visibility
/// and type tokens (angle-bracket aware; delimiter groups are atomic).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let fname = expect_ident(&tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{fname}`, found {other:?}"
                ))
            }
        }
        fields.push(fname);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        while let Some(tok) = tokens.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    Ok(fields)
}

/// Counts comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0usize;
    let mut saw_trailing_comma = false;
    for tok in &tokens {
        saw_trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_trailing_comma = true;
            }
            _ => {}
        }
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let vname = expect_ident(&tokens, &mut pos)?;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while let Some(tok) = tokens.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    pos += 1;
                    break;
                }
                _ => pos += 1,
            }
        }
        variants.push(Variant { name: vname, shape });
    }
    Ok(variants)
}
