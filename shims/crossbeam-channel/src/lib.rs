//! Shim for `crossbeam-channel`: a bounded MPMC channel built on a
//! `Mutex<VecDeque>` + two condvars. Implements the subset used by the
//! telemetry bus: `bounded`, non-blocking `try_send`/`try_recv`,
//! blocking `send`/`recv`/`recv_timeout`, `len`, and disconnect
//! semantics on drop of the last peer.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::Acquire) == 0
    }
}

/// Creates a bounded channel with room for `cap` in-flight messages.
/// `cap == 0` is treated as capacity 1 (this shim has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

pub struct Sender<T>(Arc<Shared<T>>);

impl<T> Sender<T> {
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        if self.0.disconnected_rx() {
            return Err(TrySendError::Disconnected(msg));
        }
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.0.cap {
            return Err(TrySendError::Full(msg));
        }
        q.push_back(msg);
        drop(q);
        self.0.not_empty.notify_one();
        Ok(())
    }

    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.0.disconnected_rx() {
                return Err(SendError(msg));
            }
            if q.len() < self.0.cap {
                q.push_back(msg);
                drop(q);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            let (guard, timeout) = self
                .0
                .not_full
                .wait_timeout(q, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
            let _ = timeout;
        }
    }

    pub fn len(&self) -> usize {
        self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::AcqRel);
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Receiver<T> {
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        match q.pop_front() {
            Some(v) => {
                drop(q);
                self.0.not_full.notify_one();
                Ok(v)
            }
            None if self.0.disconnected_tx() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.disconnected_tx() {
                return Err(RecvError);
            }
            q = self
                .0
                .not_empty
                .wait_timeout(q, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            q = self
                .0
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    pub fn len(&self) -> usize {
        self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.0.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.0.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded::<u32>(4);
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = bounded(8);
        let h = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Ok(v) = rx.recv_timeout(Duration::from_secs(5)) {
                got.push(v);
            }
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
