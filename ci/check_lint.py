#!/usr/bin/env python3
"""Schema gate for the odalint report.

Usage: check_lint.py LINT_report.json

`odalint` already exits nonzero on violations; this script is the second
half of the CI stage: it proves the report the run produced is the
well-formed `odalint-report/v2` document downstream tooling consumes, and
re-asserts the clean invariant from the report itself (defence in depth if
the exit code is ever swallowed by a pipeline).

v2 adds the `concurrency` section (lock-order graph + channel inventory)
produced by the cross-procedural analysis; a v1 report here means the
concurrency pass silently stopped running, which this gate treats as a
hard regression.
"""

import json
import sys

SCHEMA = "odalint-report/v2"

VIOLATION_KEYS = {"rule", "file", "line", "col", "message"}
ALLOWED_KEYS = {"rule", "file", "line", "justification"}
INVENTORY_KEYS = {"file", "line", "col", "safety_comment"}
SUMMARY_KEYS = {"files_scanned", "violations", "allowed", "unsafe_blocks"}
EDGE_KEYS = {"from", "to", "file", "line", "via"}
CHANNEL_KEYS = {"file", "line", "ctor", "bounded", "capacity"}


def fail(msg):
    print(f"check_lint: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_concurrency(report):
    conc = report["concurrency"]
    if set(conc) != {"lock_order_edges", "channels"}:
        fail(f"concurrency keys {sorted(conc)} != "
             "['channels', 'lock_order_edges']")

    edges = conc["lock_order_edges"]
    for entry in edges:
        if set(entry) != EDGE_KEYS:
            fail(f"lock_order_edges entry keys {sorted(entry)} != "
                 f"{sorted(EDGE_KEYS)}")
    keys = [(e["from"], e["to"]) for e in edges]
    if keys != sorted(keys):
        fail("lock_order_edges are not sorted by (from, to); "
             "the report is not canonical")
    if len(keys) != len(set(keys)):
        fail("duplicate (from, to) pair in lock_order_edges")

    channels = conc["channels"]
    for entry in channels:
        if set(entry) != CHANNEL_KEYS:
            fail(f"channels entry keys {sorted(entry)} != "
                 f"{sorted(CHANNEL_KEYS)}")
    # The workspace genuinely creates channels (cluster shard mailboxes,
    # serving fan-out); an empty inventory means the channel scan broke,
    # not that the channels went away.
    if not channels:
        fail("channel inventory is empty: the channel-topology scan "
             "found nothing in a workspace known to create channels")
    return len(edges), len(channels)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_lint.py LINT_report.json")
    try:
        with open(sys.argv[1]) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    schema = report.get("schema")
    if schema == "odalint-report/v1":
        fail("report regressed to odalint-report/v1: the concurrency "
             "analysis did not run")
    if schema != SCHEMA:
        fail(f"schema is {schema!r}, expected {SCHEMA!r}")
    for key in ("tool", "summary", "rules", "violations", "allowed",
                "allowlist", "unsafe_inventory", "concurrency"):
        if key not in report:
            fail(f"missing top-level key {key!r}")

    summary = report["summary"]
    if set(summary) != SUMMARY_KEYS:
        fail(f"summary keys {sorted(summary)} != {sorted(SUMMARY_KEYS)}")
    for section, keys in (("violations", VIOLATION_KEYS),
                          ("allowed", ALLOWED_KEYS),
                          ("unsafe_inventory", INVENTORY_KEYS)):
        for entry in report[section]:
            if set(entry) != keys:
                fail(f"{section} entry keys {sorted(entry)} != {sorted(keys)}")
    if summary["violations"] != len(report["violations"]):
        fail("summary.violations disagrees with the violations list")
    if summary["allowed"] != len(report["allowed"]):
        fail("summary.allowed disagrees with the allowed list")
    if not report["rules"]:
        fail("empty rule catalogue")
    edge_count, channel_count = check_concurrency(report)

    if summary["violations"] != 0:
        for v in report["violations"]:
            print(f"  {v['file']}:{v['line']}:{v['col']}: {v['rule']}: "
                  f"{v['message']}", file=sys.stderr)
        fail(f"{summary['violations']} unallowed violation(s)")

    print(f"check_lint: OK ({summary['files_scanned']} files, "
          f"{summary['allowed']} allowed, "
          f"{summary['unsafe_blocks']} unsafe block(s), "
          f"{edge_count} lock-order edge(s), "
          f"{channel_count} channel(s))")


if __name__ == "__main__":
    main()
