#!/usr/bin/env python3
"""Schema gate for the odalint report.

Usage: check_lint.py LINT_report.json

`odalint` already exits nonzero on violations; this script is the second
half of the CI stage: it proves the report the run produced is the
well-formed `odalint-report/v1` document downstream tooling consumes, and
re-asserts the clean invariant from the report itself (defence in depth if
the exit code is ever swallowed by a pipeline).
"""

import json
import sys

SCHEMA = "odalint-report/v1"

VIOLATION_KEYS = {"rule", "file", "line", "col", "message"}
ALLOWED_KEYS = {"rule", "file", "line", "justification"}
INVENTORY_KEYS = {"file", "line", "col", "safety_comment"}
SUMMARY_KEYS = {"files_scanned", "violations", "allowed", "unsafe_blocks"}


def fail(msg):
    print(f"check_lint: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_lint.py LINT_report.json")
    try:
        with open(sys.argv[1]) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if report.get("schema") != SCHEMA:
        fail(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("tool", "summary", "rules", "violations", "allowed",
                "allowlist", "unsafe_inventory"):
        if key not in report:
            fail(f"missing top-level key {key!r}")

    summary = report["summary"]
    if set(summary) != SUMMARY_KEYS:
        fail(f"summary keys {sorted(summary)} != {sorted(SUMMARY_KEYS)}")
    for section, keys in (("violations", VIOLATION_KEYS),
                          ("allowed", ALLOWED_KEYS),
                          ("unsafe_inventory", INVENTORY_KEYS)):
        for entry in report[section]:
            if set(entry) != keys:
                fail(f"{section} entry keys {sorted(entry)} != {sorted(keys)}")
    if summary["violations"] != len(report["violations"]):
        fail("summary.violations disagrees with the violations list")
    if summary["allowed"] != len(report["allowed"]):
        fail("summary.allowed disagrees with the allowed list")
    if not report["rules"]:
        fail("empty rule catalogue")

    if summary["violations"] != 0:
        for v in report["violations"]:
            print(f"  {v['file']}:{v['line']}:{v['col']}: {v['rule']}: "
                  f"{v['message']}", file=sys.stderr)
        fail(f"{summary['violations']} unallowed violation(s)")

    print(f"check_lint: OK ({summary['files_scanned']} files, "
          f"{summary['allowed']} allowed, "
          f"{summary['unsafe_blocks']} unsafe block(s))")


if __name__ == "__main__":
    main()
