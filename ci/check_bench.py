#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_*.json against its committed
baseline and fail on structural violations or out-of-band regressions.

Usage: check_bench.py CURRENT.json BASELINE.json

Two classes of numeric check, chosen per key:

* **ratio** — hardware-independent ratios (scan reduction, speedup). These
  must not fall more than TOLERANCE (20%) below the committed baseline;
  being *better* than baseline never fails (it prints a refresh hint).
* **latency** — nanosecond/throughput measurements that scale with the
  runner. CI machines vary wildly, so these only gate on *catastrophic*
  regressions (CATASTROPHIC_X = 5x worse than baseline).

Structural invariants (outputs_equal, tier hits, speedup floors) encode the
acceptance criteria of the benches themselves and are absolute — they fail
regardless of what the baseline recorded.
"""

import json
import sys

TOLERANCE = 0.20  # ratio metrics may be up to 20% below baseline
CATASTROPHIC_X = 5.0  # latency/throughput metrics may be up to 5x worse

# Per-bench key classification. "higher" keys are better when larger,
# "lower" keys better when smaller.
CHECKS = {
    "ingest": {
        "ratio_higher": ["longwin_scan_reduction_x"],
        "latency_lower": [
            "query_p50_ns",
            "query_p99_ns",
            "publish_p50_ns",
            "publish_p99_ns",
            "longwin_tiered_p50_ns",
            "longwin_tiered_p99_ns",
        ],
        "latency_higher": ["throughput_rps"],
    },
    "scale": {
        "ratio_higher": [
            "speedup_x_2",
            "speedup_x_4",
            "speedup_x_8",
            "shard_speedup_x_2",
            "shard_speedup_x_4",
            "shard_speedup_x_8",
        ],
        "latency_lower": [
            "pass_p50_ns_1",
            "pass_p50_ns_2",
            "pass_p50_ns_4",
            "pass_p50_ns_8",
        ],
        "latency_higher": [
            "shard_rps_1",
            "shard_rps_2",
            "shard_rps_4",
            "shard_rps_8",
        ],
    },
    "serving": {
        "ratio_higher": ["cache_hit_rate"],
        "latency_lower": ["query_p50_ns", "query_p99_ns"],
        "latency_higher": ["throughput_rps"],
    },
    "storage": {
        "ratio_higher": [],
        "latency_lower": [
            "inmemory_longwin_p50_ns",
            "inmemory_longwin_p99_ns",
            "persistent_longwin_p50_ns",
            "persistent_longwin_p99_ns",
            "hybrid_longwin_p50_ns",
            "hybrid_longwin_p99_ns",
            "persistent_recovery_ns",
            "hybrid_recovery_ns",
        ],
        "latency_higher": [
            "inmemory_ingest_rps",
            "persistent_ingest_rps",
            "hybrid_ingest_rps",
        ],
    },
}


def structural(bench, cur, fail):
    """Absolute invariants — the bench's own acceptance criteria."""
    if bench == "ingest":
        if not cur["throughput_rps"] > 0:
            fail("throughput_rps must be positive")
        if not cur["readings_total"] > 0:
            fail("readings_total must be positive")
        if not cur["longwin_tier_hits"] > 0:
            fail("planner never tier-hit a long-window query")
        if cur["longwin_scan_reduction_x"] < 5.0:
            fail(
                "long-window scan reduction %.1fx below the 5x floor"
                % cur["longwin_scan_reduction_x"]
            )
        if cur["longwin_tiered_p99_ns"] > cur["longwin_raw_p99_ns"]:
            fail(
                "tiered long-window p99 (%d ns) slower than the raw rescan it "
                "replaces (%d ns)"
                % (cur["longwin_tiered_p99_ns"], cur["longwin_raw_p99_ns"])
            )
    elif bench == "scale":
        if cur["outputs_equal"] is not True:
            fail("parallel scheduler output diverged from the serial baseline")
        if cur["speedup_x_4"] < 2.5:
            fail(
                "speedup at 4 workers is %.2fx, below the 2.5x floor"
                % cur["speedup_x_4"]
            )
        for point in cur.get("points", []):
            if not point["pass_p50_ns"] > 0:
                fail("pass_p50_ns must be positive at workers=%d" % point["workers"])
        if cur.get("shard_digests_equal") is not True:
            fail("sharded query digests diverged from the single-shard baseline")
        if cur.get("shard_scaling_x", 0.0) < 1.5:
            fail(
                "ingest speedup at 4 shards is %.2fx, below the 1.5x floor"
                % cur.get("shard_scaling_x", 0.0)
            )
        for point in cur.get("shard_points", []):
            if not point["ingest_rps"] > 0:
                fail("ingest_rps must be positive at shards=%d" % point["shards"])
    elif bench == "serving":
        if cur["cache_equal"] is not True:
            fail("a cached result was not bit-identical to uncached execution")
        if cur["sheds_reconcile"] is not True:
            fail("admission ledger does not reconcile (offered != admitted + shed)")
        if not cur["verified_hits"] > 0:
            fail("the cache bit-equality gate never sampled a hit")
        if cur["responses_200"] + cur["responses_shed"] != cur["requests_total"]:
            fail("responses (200 + shed) do not account for every request")
        if not cur["responses_shed"] > 0:
            fail("the tight adhoc quota shed nothing — admission is not engaging")
        if not 0.0 < cur["shed_rate"] < 0.5:
            fail("shed rate %.3f outside the expected (0, 0.5) band" % cur["shed_rate"])
        if cur["cache_hit_rate"] < 0.3:
            fail(
                "cache hit rate %.3f below the 0.3 floor for this traffic mix"
                % cur["cache_hit_rate"]
            )
        if cur["query_p99_ns"] > 50_000_000:
            fail(
                "query p99 %.1f ms breaches the 50 ms serving SLO"
                % (cur["query_p99_ns"] / 1e6)
            )
        if not cur["frames_delivered"] > 0:
            fail("fan-out delivered no frames to subscribers")
        if not cur["frames_shed"] > 0:
            fail("over-buffer bursts shed no frames — backpressure is not engaging")
    elif bench == "storage":
        if not cur["readings_total"] > 0:
            fail("readings_total must be positive")
        if sorted(cur.get("backends", [])) != ["hybrid", "inmemory", "persistent"]:
            fail("storage bench must report all three backends")
        for k in ("inmemory", "persistent", "hybrid"):
            if cur.get("%s_recovered_ok" % k) is not True:
                fail("%s backend failed its recovery contract" % k)
            if not cur.get("%s_ingest_rps" % k, 0) > 0:
                fail("%s_ingest_rps must be positive" % k)
        for k in ("persistent", "hybrid"):
            if cur.get("%s_durable_len" % k) != cur["readings_total"]:
                fail("%s backend did not persist the whole workload" % k)
            if cur.get("%s_recovered_readings" % k) != cur["readings_total"]:
                fail("%s backend did not recover the whole workload" % k)
            if not cur.get("%s_recovery_ns" % k, 0) > 0:
                fail("%s_recovery_ns must be positive" % k)
        if cur.get("inmemory_recovered_readings") != 0:
            fail("in-memory backend must recover nothing across a restart")
        if cur.get("inmemory_durable_len") != 0:
            fail("in-memory backend must persist nothing")


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        cur = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)

    failures = []

    def fail(msg):
        failures.append(msg)

    bench = cur.get("bench")
    if bench not in CHECKS:
        fail("unknown bench kind: %r" % bench)
    elif base.get("bench") != bench:
        fail(
            "baseline is for bench %r, current run is %r" % (base.get("bench"), bench)
        )
    else:
        structural(bench, cur, fail)
        checks = CHECKS[bench]

        def both(key):
            if key not in cur:
                fail("current report missing key: %s" % key)
                return None
            if key not in base:
                fail("baseline missing key: %s" % key)
                return None
            return cur[key], base[key]

        for key in checks["ratio_higher"]:
            pair = both(key)
            if pair is None:
                continue
            c, b = pair
            floor = b * (1.0 - TOLERANCE)
            if c < floor:
                fail(
                    "%s regressed: %.3f vs baseline %.3f (floor %.3f, -%d%%)"
                    % (key, c, b, floor, TOLERANCE * 100)
                )
            elif c > b * (1.0 + TOLERANCE):
                print(
                    "note: %s improved well past baseline (%.3f vs %.3f) — "
                    "consider refreshing ci/baselines/" % (key, c, b)
                )

        for key in checks["latency_lower"]:
            pair = both(key)
            if pair is None:
                continue
            c, b = pair
            if b > 0 and c > b * CATASTROPHIC_X:
                fail(
                    "%s catastrophically regressed: %d vs baseline %d (>%.0fx)"
                    % (key, c, b, CATASTROPHIC_X)
                )

        for key in checks["latency_higher"]:
            pair = both(key)
            if pair is None:
                continue
            c, b = pair
            if b > 0 and c < b / CATASTROPHIC_X:
                fail(
                    "%s catastrophically regressed: %.1f vs baseline %.1f (<1/%.0fx)"
                    % (key, c, b, CATASTROPHIC_X)
                )

    if failures:
        for msg in failures:
            print("check_bench FAIL [%s]: %s" % (sys.argv[1], msg), file=sys.stderr)
        return 1

    if bench == "ingest":
        print(
            "check_bench OK [%s]: %.0f readings/s, metrics overhead %.1f%%, "
            "long-window scan reduction %.0fx"
            % (
                sys.argv[1],
                cur["throughput_rps"],
                cur["metrics_overhead_pct"],
                cur["longwin_scan_reduction_x"],
            )
        )
    elif bench == "serving":
        print(
            "check_bench OK [%s]: %.0f req/s, p99 %.2f ms, cache hit rate "
            "%.0f%%, shed rate %.0f%% (reconciled), %d subscribers fanned out"
            % (
                sys.argv[1],
                cur["throughput_rps"],
                cur["query_p99_ns"] / 1e6,
                cur["cache_hit_rate"] * 100,
                cur["shed_rate"] * 100,
                cur["subscribers"],
            )
        )
    elif bench == "storage":
        print(
            "check_bench OK [%s]: ingest %.0f/%.0f/%.0f readings/s "
            "(inmemory/persistent/hybrid), recovery %.1f ms persistent / "
            "%.1f ms hybrid, all backends recovered bit-identical"
            % (
                sys.argv[1],
                cur["inmemory_ingest_rps"],
                cur["persistent_ingest_rps"],
                cur["hybrid_ingest_rps"],
                cur["persistent_recovery_ns"] / 1e6,
                cur["hybrid_recovery_ns"] / 1e6,
            )
        )
    else:
        print(
            "check_bench OK [%s]: speedup %.2fx @2 / %.2fx @4 / %.2fx @8 workers, "
            "shard ingest %.2fx @4 shards, outputs and shard digests "
            "bit-identical (host parallelism %d)"
            % (
                sys.argv[1],
                cur["speedup_x_2"],
                cur["speedup_x_4"],
                cur["speedup_x_8"],
                cur["shard_scaling_x"],
                cur["host_parallelism"],
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
